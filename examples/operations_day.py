#!/usr/bin/env python
"""One operation day of the archive, end to end.

Everything the site runs concurrently, in one simulation:

* users submit archive jobs through the day (Poisson arrivals);
* an ILM policy (written in GPFS policy-rule text) migrates aged data
  to tape every few hours, with co-location per stream;
* HSM punches premigrated files whenever the fast pool crosses 80%;
* the trash sweep reaps deleted files synchronously every 6 hours;
* a tape drive fails at midday and is repaired two hours later;
* a utilisation dashboard (PeriodicSampler) watches the trunk, the
  drives and the fast pool throughout.

Run:  python examples/operations_day.py   (takes ~half a minute)
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import (
    PeriodicSampler,
    drive_busy_probe,
    link_utilization_probe,
    pool_occupancy_probe,
)
from repro.pftool import PftoolConfig
from repro.sim import Environment, RandomStreams
from repro.tapesim import TapeSpec
from repro.workloads import JobSpec
from repro.workloads.generators import materialize_job

MB = 1_000_000
GB = 1_000_000_000
HOUR = 3600.0
DAY = 24 * HOUR
N_JOBS = 10


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=6, n_disk_servers=3, n_tape_drives=6, n_scratch_tapes=64,
            tape_spec=TapeSpec(), fast_pool_tb=0.5,  # small pool: pressure!
        ),
    )
    rng = RandomStreams(20090704).stream("opsday")
    log: list[str] = []

    def say(msg: str) -> None:
        log.append(f"[{env.now / HOUR:5.1f}h] {msg}")

    dashboard = PeriodicSampler(
        env,
        {
            "trunk": link_utilization_probe(system.topology.fabric, "site-trunk"),
            "drives": drive_busy_probe(system.library),
            "fast-pool": pool_occupancy_probe(system.archive_fs, "fast"),
        },
        interval=600.0,
    )

    # --- users archiving through the day --------------------------------
    completed = []

    def user_job(k: int, start: float):
        yield env.timeout(start)
        files = int(rng.integers(20, 80))
        mean = float(rng.choice([8 * MB, 64 * MB, 256 * MB]))
        job = JobSpec(k, files, int(files * mean))
        materialize_job(system.scratch_fs, job, f"/runs/j{k:02d}")
        cfg = PftoolConfig(num_workers=int(rng.integers(4, 10)),
                           num_readdir=1, num_tapeprocs=2)
        stats = yield system.archive(f"/runs/j{k:02d}", f"/arc/j{k:02d}", cfg).done
        completed.append(stats)
        say(f"job {k:2d}: {stats.files_copied} files at "
            f"{stats.data_rate / MB:6.0f} MB/s")

    t = 0.0
    for k in range(N_JOBS):
        t += float(rng.exponential(1.2 * HOUR))
        env.process(user_job(k, t))

    # --- ILM migration every 4 hours (policy text, co-located streams) --
    def ilm_cron():
        while env.now < DAY:
            yield env.timeout(4 * HOUR)
            _, reports = yield system.apply_policy_text(
                "RULE 'age-out' MIGRATE FROM POOL 'fast' TO POOL 'hsm' "
                "WHERE MODIFICATION_AGE > 1 HOURS AND FILE_SIZE > 1 MB"
            )
            for r in reports:
                say(f"ILM migrated {r.files} files / {r.bytes / GB:.1f} GB "
                    f"(skew {r.skew:.0f}s)")
            # pool still hot? punch premigrated data instantly
            if system.archive_fs.pool_occupancy("fast") > 0.8:
                punched = system.hsm.punch_until("fast", 0.5)
                say(f"pool pressure: punched {len(punched)} premigrated files")

    env.process(ilm_cron())

    # --- trash sweep every 6 hours ----------------------------------------
    def sweep_cron():
        while env.now < DAY:
            yield env.timeout(6 * HOUR)
            n = yield system.sweep_trash(min_age=HOUR)
            if n:
                say(f"trash sweep: {n} synchronous deletes")

    env.process(sweep_cron())

    # --- a user fat-fingers a delete, then undeletes ----------------------
    def oops():
        yield env.timeout(7 * HOUR)
        victims = [
            p for p, n in system.archive_fs.walk("/arc")
            if n.is_file and not p.startswith("/arc/j00/.")
        ][:3]
        for v in victims:
            system.user_delete(v, user="carol")
        say(f"carol deleted {len(victims)} files (to trashcan)")
        yield env.timeout(HOUR)
        if victims and system.undelete(victims[0]):
            say(f"carol undeleted {victims[0]}")

    env.process(oops())

    # --- midday drive failure ---------------------------------------------
    def hardware_trouble():
        yield env.timeout(12 * HOUR)
        system.library.fail_drive("drv02")
        say("drv02 FAILED (CE called)")
        yield env.timeout(2 * HOUR)
        system.library.repair_drive("drv02")
        say("drv02 repaired")

    env.process(hardware_trouble())

    env.run(until=DAY)
    dashboard.stop()
    env.run()

    print("\n".join(log))
    print(f"\n=== end of day ===")
    print(f"jobs completed: {len(completed)} / {N_JOBS}")
    gb = sum(s.bytes_copied for s in completed) / GB
    print(f"data archived:  {gb:.1f} GB")
    print(f"on tape:        {system.library.bytes_on_tape / GB:.1f} GB "
          f"({system.library.total_mounts} mounts)")
    print(f"fast pool:      {system.archive_fs.pool_occupancy('fast') * 100:.0f}% "
          f"(peak {dashboard.peak('fast-pool') * 100:.0f}%)")
    print(f"trunk peak:     {dashboard.peak('trunk') * 100:.0f}% utilised")
    print(f"drives peak:    {dashboard.peak('drives') * 100:.0f}% busy")


if __name__ == "__main__":
    main()
