#!/usr/bin/env python
"""Trashcan + synchronous delete vs reconciliation (§4.2.6-§4.2.7).

Life of a deleted archive file:

1. the user's ``rm`` (in the jail) renames the file into the trashcan;
2. oops — ``undelete`` brings one back;
3. the administrative sweep synchronously deletes the remainder from
   the file system AND TSM (via the GPFS file id + indexed TSM object
   id) — no orphans on tape;
4. a reconcile pass then confirms there is nothing to clean up, and a
   deliberately orphaned file shows what reconcile costs when you skip
   the trashcan discipline.

Run:  python examples/trashcan_lifecycle.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.hsm import ReconcileAgent
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )

    def seed():
        system.archive_fs.mkdir("/proj", parents=True)
        for i in range(8):
            yield system.archive_fs.write_file("fta0", f"/proj/f{i}", 10 * MB)

    env.run(env.process(seed()))
    env.run(system.migrate_to_tape())
    print(f"8 files archived and migrated; "
          f"{len(system.tsm.objects)} objects on tape")

    # 1. user deletes three files
    for i in range(3):
        system.user_delete(f"/proj/f{i}", user="alice")
    print(f"alice rm'd 3 files -> trashcan holds {len(system.trashcan)}")

    # 2. one of them was a mistake
    system.undelete("/proj/f0")
    print(f"undelete /proj/f0 -> trashcan holds {len(system.trashcan)}, "
          f"file is back: {system.archive_fs.exists('/proj/f0')}")

    # 3. the sweep reaps the rest, synchronously on both sides
    n = env.run(system.sweep_trash())
    print(f"sweep deleted {n} files from disk AND tape "
          f"({len(system.tsm.objects)} objects remain)")

    # 4. reconcile confirms zero orphans...
    agent = ReconcileAgent(env, system.archive_fs, system.tsm)
    report = env.run(agent.run(delete_orphans=False))
    print(f"reconcile: {report.orphans_found} orphans "
          f"(walked {report.files_walked} entries in {report.duration:.1f}s)")

    # ...but a raw unlink (bypassing the trashcan) re-creates the problem
    env.run(system.archive_fs.unlink_op("/proj/f3"))
    report = env.run(agent.run())
    print(f"after a raw unlink, reconcile found+deleted "
          f"{report.orphans_deleted} orphan in {report.duration:.1f}s — "
          f"the cost the trashcan design avoids")


if __name__ == "__main__":
    main()
