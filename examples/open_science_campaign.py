#!/usr/bin/env python
"""Open Science campaign: archive jobs + ILM migration to tape.

Replays a slice of the Roadrunner Open Science workload (the population
behind Figures 8-11): several jobs with very different file-size mixes
are archived through PFTool, then the ILM policy engine selects
candidates and the size-balanced parallel migrator (§4.2.4) streams them
to tape across the FTA cluster, co-located per migration stream.

Run:  python examples/open_science_campaign.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import render_series
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import generate_open_science_trace
from repro.workloads.generators import materialize_job

MB = 1_000_000
GB = 1_000_000_000
N_JOBS = 6
MAX_FILES = 60


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=6, n_disk_servers=3, n_tape_drives=6, n_scratch_tapes=32,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )
    trace = generate_open_science_trace(seed=2009)
    cfg = PftoolConfig(num_workers=12, num_readdir=2, num_tapeprocs=0)

    print("replaying", N_JOBS, "jobs from the 62-job Open Science trace")
    rates = []
    for k, job in enumerate(trace.jobs[:N_JOBS]):
        sj = job.scaled(MAX_FILES)
        materialize_job(system.scratch_fs, sj, f"/jobs/j{k}")
        stats = env.run(system.archive(f"/jobs/j{k}", f"/arc/j{k}", cfg).done)
        rates.append(stats.data_rate / MB)
        print(
            f"  job {k}: {sj.n_files:4d} files, mean "
            f"{sj.mean_size / MB:8.1f} MB -> {stats.data_rate / MB:7.0f} MB/s"
        )
    print()
    print(render_series("per-job archive rate", rates, unit=" MB/s"))

    # ILM: everything older than 'now - 0' with no tape copy migrates.
    print("\nrunning the LIST policy + size-balanced parallel migration...")
    report = env.run(system.migrate_to_tape())
    print(f"  migrated {report.files} files / {report.bytes / GB:.1f} GB "
          f"in {report.duration:.0f}s across {len(report.assignment)} nodes")
    print(f"  per-node completion skew: {report.skew:.1f}s")
    for node, (files, nbytes) in sorted(report.assignment.items()):
        print(f"    {node}: {files:5d} files {nbytes / GB:8.1f} GB")

    mounted = sum(1 for d in system.library.drives if d.loaded)
    print(f"\n  tape state: {system.library.total_mounts} mounts, "
          f"{mounted} volumes still mounted, "
          f"{system.library.bytes_on_tape / GB:.1f} GB on tape")
    print(f"  archive disk now holds "
          f"{system.archive_fs.pool('fast').used_bytes / GB:.1f} GB "
          f"(stubs freed the rest)")


if __name__ == "__main__":
    main()
