#!/usr/bin/env python
"""Tape-ordered recall: the §4.1.2/§4.2.5 optimisation, demonstrated.

Archives a set of mid-size files, migrates them to tape in shuffled
order (so tape layout differs from namespace order), then retrieves the
tree twice through PFTool: once with TapeCQ ordering on (sorted by
volume + tape sequence id from the exported index DB) and once off.

Watch the drive seek seconds: ordered recall reads each tape front to
back; unordered recall locates all over the reel.

Run:  python examples/tape_recall_ordering.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment, RandomStreams
from repro.tapesim import TapeSpec
from repro.workloads import small_file_flood

MB = 1_000_000
N_FILES = 60


def run_retrieve(ordered: bool) -> tuple[float, float]:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
            recall_routing="sticky",
        ),
    )
    paths = small_file_flood(system.archive_fs, "/cold", N_FILES, 30 * MB)
    rng = RandomStreams(11).stream("shuffle")
    shuffled = [paths[i] for i in rng.permutation(N_FILES)]
    env.run(system.hsm.migrate("fta0", shuffled))
    env.run(system.exporter.run_once())  # refresh the MySQL-substitute

    cfg = PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=2,
        stat_batch=N_FILES, tape_ordering=ordered,
    )
    t0 = env.now
    stats = env.run(system.retrieve("/cold", "/back", cfg).done)
    assert stats.tape_files_restored == N_FILES
    return env.now - t0, system.library.total_seek_seconds


def main() -> None:
    t_ord, seek_ord = run_retrieve(True)
    t_rnd, seek_rnd = run_retrieve(False)
    print(f"{N_FILES} x 30 MB files recalled from tape")
    print(f"  tape-ordered: {t_ord:7.1f}s  (drive seek time {seek_ord:7.1f}s)")
    print(f"  unordered:    {t_rnd:7.1f}s  (drive seek time {seek_rnd:7.1f}s)")
    print(f"  -> ordering is {t_rnd / t_ord:.1f}x faster, "
          f"{seek_rnd / max(seek_ord, 0.1):.0f}x less seeking")


if __name__ == "__main__":
    main()
