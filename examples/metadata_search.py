#!/usr/bin/env python
"""Multi-dimensional metadata search (§7 future work, implemented).

The jail bans ``grep`` because content scans recall tape (§4.2.3) —
but what users usually grep for is *metadata*: "alice's checkpoint
files over 100 MB from this campaign that are already on tape".  The
catalogue answers those questions from an indexed scan of the archive
namespace without touching a single cartridge.

Run:  python examples/metadata_search.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.search import MetadataCatalog, Query
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )

    def seed():
        for user, sizes in (("alice", [500, 600, 2]), ("bob", [50, 1200])):
            system.archive_fs.mkdir(f"/proj/{user}", parents=True)
            for i, mb in enumerate(sizes):
                name = f"ckpt_{i:03d}.h5" if mb > 10 else f"notes_{i}.txt"
                yield system.archive_fs.write_file(
                    "fta0", f"/proj/{user}/{name}", mb * MB, uid=user
                )

    env.run(env.process(seed()))
    # move the big stuff to tape so states differ
    env.run(system.migrate_to_tape(
        where=lambda p, i, now: i.size >= 400 * MB
    ))

    catalog = MetadataCatalog(env, system.archive_fs)
    n = env.run(catalog.build())
    print(f"catalogue built over {n} files "
          f"(scan charged at the paper's 1M inodes / 10 min)")
    catalog.tag("/proj/alice/ckpt_000.h5", "campaign:openscience", "keep")

    queries = [
        ("alice's checkpoints over 100 MB",
         Query(owner="alice", size_min=100 * MB, name_glob="ckpt_*")),
        ("everything already on tape",
         Query(hsm_state="migrated")),
        ("tagged 'keep'",
         Query(tag="keep")),
        ("small text files anywhere",
         Query(size_max=10 * MB, name_glob="*.txt")),
    ]
    for title, q in queries:
        hits = env.run(catalog.search(q))
        print(f"\n{title}: {len(hits)} hit(s)")
        for h in hits:
            print(f"   {h.path:<30} {h.size/MB:8.0f} MB  {h.owner:<6} "
                  f"{h.hsm_state}{'  ' + ','.join(h.tags) if h.tags else ''}")
    print(f"\nbytes recalled from tape to answer all of this: 0")


if __name__ == "__main__":
    main()
