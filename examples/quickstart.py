#!/usr/bin/env python
"""Quickstart: build the archive site, archive a tree, verify, list.

This walks the three jail commands the paper gives users (§4.1.3):

* ``pfcp``  — parallel copy scratch -> archive,
* ``pfcm``  — parallel byte-content compare,
* ``pfls``  — parallel listing of the archive namespace,

on a reduced-scale site (4 FTA nodes, 4 tape drives) so it runs in a
couple of seconds.

Run:  python examples/quickstart.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4,
            n_disk_servers=2,
            n_tape_drives=4,
            n_scratch_tapes=16,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )

    # A science campaign left results on the scratch file system.
    def seed():
        system.scratch_fs.mkdir("/campaign/run0", parents=True)
        system.scratch_fs.mkdir("/campaign/run1", parents=True)
        for run in range(2):
            for i in range(8):
                yield system.scratch_fs.write_file(
                    "scratch", f"/campaign/run{run}/out{i:02d}.dat", 25 * MB
                )
        yield system.scratch_fs.write_file("scratch", "/campaign/README", 2000)

    env.run(env.process(seed()))
    print(f"[t={env.now:8.1f}s] scratch holds "
          f"{system.scratch_fs.namespace.n_files} files")

    # The user only sees jail-approved commands:
    system.jail.check("pfcp /campaign /archive/campaign")

    cfg = PftoolConfig(num_workers=8, num_readdir=1, num_tapeprocs=2)

    # pfcp: parallel tree walk + copy
    stats = env.run(system.archive("/campaign", "/archive/campaign", cfg).done)
    print(f"[t={env.now:8.1f}s] {stats.report()}")

    # pfcm: verify the copy byte-for-byte
    cmp_stats = env.run(
        system.compare("/campaign", "/archive/campaign", cfg).done
    )
    print(f"[t={env.now:8.1f}s] compare: {cmp_stats.files_compared} files, "
          f"{cmp_stats.compare_mismatches} mismatches")

    # pfls: list what the archive now holds
    ls = env.run(system.list_archive("/archive/campaign", cfg).done)
    print(f"[t={env.now:8.1f}s] pfls saw {ls.files_seen} files:")
    for line in ls.output_lines:
        if line.startswith("/archive/"):
            print("   ", line)

    # and grep is not welcome here (§4.2.3)
    try:
        system.jail.check("grep -r secret /archive")
    except PermissionError as exc:
        print(f"jail: {exc}")


if __name__ == "__main__":
    main()
