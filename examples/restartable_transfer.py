#!/usr/bin/env python
"""Restartable chunked transfer (§4.5): surviving a mid-copy outage.

"Occasionally, a network or other problem will stop a file transfer...
What about restarting a 40 Terabyte file, we don't want to start it from
the beginning."  PFTool marks chunks good as they land; a restarted
pfcp re-sends only the missing ones.

This example copies a large chunked file, kills the job partway through
(simulated outage), restarts with ``restart=True``, and shows the
skipped-vs-resent byte accounting.

Run:  python examples/restartable_transfer.py
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec
from repro.workloads import huge_file_campaign

GB = 1_000_000_000
FILE_SIZE = 48 * GB
CHUNK = 2 * GB


def main() -> None:
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=6, n_disk_servers=3, n_tape_drives=1, n_scratch_tapes=4,
            tape_spec=TapeSpec(load_time=5.0, unload_time=5.0),
        ),
    )
    huge_file_campaign(system.scratch_fs, "/big", 1, FILE_SIZE)

    def cfg(restart):
        return PftoolConfig(
            num_workers=6, num_readdir=1, num_tapeprocs=0,
            chunk_threshold=4 * GB, copy_chunk_size=CHUNK, restart=restart,
        )

    job = system.archive("/big", "/arc", cfg(restart=False))

    def outage():
        yield env.timeout(15.0)
        job.cancel("network outage between scratch and archive")

    env.process(outage())
    stats1 = env.run(job.done)
    print(f"first attempt: ABORTED after {stats1.duration:.0f}s with "
          f"{stats1.chunks_copied}/{FILE_SIZE // CHUNK} chunks done "
          f"({stats1.bytes_copied / GB:.0f} GB landed)")

    job2 = system.archive("/big", "/arc", cfg(restart=True))
    stats2 = env.run(job2.done)
    print(f"restart: finished in {stats2.duration:.0f}s — skipped "
          f"{stats2.bytes_skipped / GB:.0f} GB of known-good chunks, "
          f"re-sent only {stats2.bytes_copied / GB:.0f} GB")

    node = system.archive_fs.lookup("/arc/huge000.h5")
    print(f"archive now holds the complete {node.size / GB:.0f} GB file")
    assert stats2.bytes_skipped >= stats1.bytes_copied * 0.99


if __name__ == "__main__":
    main()
