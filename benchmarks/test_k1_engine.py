"""K1 — simulation-engine fast path (kernel/netsim/resources hot loops).

Not a paper figure: this bench guards the *engine* itself.  PR 3 made
fair-share re-allocation incremental (per-component solves instead of
recompute-everything), store queues O(1) (deques + tombstone lazy
cancellation) and message delivery process-free (pooled kernel timers).
The contract is that none of this may change simulated results: every
scenario in :mod:`repro.perf` emits machine-independent *headline*
numbers which must equal the committed golden file
``benchmarks/results/BENCH_kernel.json`` bit-for-bit (modulo float
tolerance); wall-clock and events/sec are trajectory data.

``benchmarks/results/BENCH_kernel.baseline.json`` preserves the
pre-optimisation run of the identical scenarios for the speedup record
(fabric_churn 5.5x, fabric_sparse 4.4x wall; both >=3x events/sec).
"""

import json
import pathlib

from repro.perf import compare_headlines, run_suite

from _common import run_once, write_report

GOLDEN = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"


def test_k1_engine_suite(benchmark):
    report = run_once(benchmark, run_suite)

    golden = json.loads(GOLDEN.read_text())
    drift = compare_headlines(report, golden)
    assert not drift, "simulated headline drift vs golden:\n" + "\n".join(drift)

    lines = ["K1  engine microbenchmarks (headline-checked vs golden)"]
    for name, m in report["scenarios"].items():
        lines.append(
            f"  {name:16s} {m['wall_s']:8.3f}s {m['events']:>8} events "
            f"{m['events_per_s']:>8}/s  recomputes {m['rate_recomputes']}"
        )
        benchmark.extra_info[f"{name}_events_per_s"] = m["events_per_s"]
    text = "\n".join(lines)
    print("\n" + text)
    write_report("K1", text)

    # the optimisation floor this PR claims: fabric-heavy scenarios keep
    # their solver counts down (0 solves when nothing shares a link)
    assert report["scenarios"]["fabric_sparse"]["rate_recomputes"] == 0
    assert report["scenarios"]["store_churn"]["rate_recomputes"] == 0
