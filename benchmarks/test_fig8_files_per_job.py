"""FIG8 — number of files archived per job (paper Figure 8).

The paper reports, over 62 production jobs: min 1 file/job, max
2,920,088 files/job, mean 167,491 files/job, plotted on a log10 scale.
This bench regenerates the calibrated trace and reproduces the series.
"""

import numpy as np

from repro.metrics import comparison_table, render_series
from repro.workloads import PAPER_62_JOBS, generate_open_science_trace

from _common import run_once, write_report


def test_fig8_files_per_job(benchmark):
    trace = run_once(benchmark, lambda: generate_open_science_trace(seed=2009))
    files = trace.files_per_job()

    rows = [
        ("files/job min", PAPER_62_JOBS["files_min"], float(files.min())),
        ("files/job max", PAPER_62_JOBS["files_max"], float(files.max())),
        ("files/job mean", PAPER_62_JOBS["files_mean"], float(files.mean())),
    ]
    table = comparison_table(rows)
    series = render_series("Figure 8: files archived per job", files, log10=True)
    report = f"{series}\n\n{table}"
    print("\n" + report)
    write_report("FIG8", report)

    benchmark.extra_info["files_mean"] = float(files.mean())
    benchmark.extra_info["files_max"] = int(files.max())

    assert files.min() == PAPER_62_JOBS["files_min"]
    assert files.max() == PAPER_62_JOBS["files_max"]
    assert abs(files.mean() / PAPER_62_JOBS["files_mean"] - 1) < 0.05
    # log10 spread covers the paper's six decades
    assert np.log10(files.max()) - np.log10(max(files.min(), 1)) >= 6
