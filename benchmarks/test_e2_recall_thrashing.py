"""E2 — recall thrashing across LAN-free nodes (§6.2).

Paper: the HSM recall daemon assigns each recall to *some* machine with
no tape affinity; with LAN-free I/O the tape rewinds and re-verifies its
label every time consecutive requests come from different machines — "a
massive performance hit even though the tape is not physically
dismounted".  The asked-for fix: route all recalls for one tape to one
machine.

Bench: recall a tape's worth of files under (a) naive round-robin
routing, (b) sticky per-volume routing, and (c) naive routing on drives
with the handoff penalty disabled (quantifying the penalty itself).
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.sim import Environment
from repro.workloads import small_file_flood

from _common import MB, run_once, small_tape_spec, write_report

N_FILES = 80
SIZE = 25 * MB


def _run_one(routing, handoff_penalty):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=6, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=small_tape_spec(), recall_routing=routing,
            handoff_penalty=handoff_penalty,
        ),
    )
    paths = small_file_flood(system.archive_fs, "/cold", N_FILES, SIZE)
    env.run(system.hsm.migrate("fta0", paths))
    t0 = env.now
    env.run(system.hsm.recall_many(paths))
    return {
        "duration": env.now - t0,
        "handoffs": system.library.total_handoff_rewinds,
        "verifies": system.library.total_label_verifies,
        "rate": N_FILES * SIZE / (env.now - t0),
    }


def _run():
    naive = _run_one("naive", True)
    sticky = _run_one("sticky", True)
    no_penalty = _run_one("naive", False)
    return naive, sticky, no_penalty


def test_e2_recall_thrashing(benchmark):
    naive, sticky, no_penalty = run_once(benchmark, _run)

    rows = [
        ("naive recall MB/s", 0.0, naive["rate"] / MB),
        ("sticky recall MB/s", 0.0, sticky["rate"] / MB),
        ("sticky/naive speedup", 2.0, sticky["rate"] / naive["rate"]),
        ("naive handoff rewinds", float(N_FILES) * 0.8, float(naive["handoffs"])),
        ("sticky handoff rewinds", 1.0, float(sticky["handoffs"])),
    ]
    table = comparison_table(rows)
    report = (
        "E2  LAN-free recall thrashing (§6.2)\n"
        f"  naive:      {naive['duration']:.0f}s, {naive['handoffs']} handoff rewinds\n"
        f"  sticky:     {sticky['duration']:.0f}s, {sticky['handoffs']} handoff rewinds\n"
        f"  no-penalty: {no_penalty['duration']:.0f}s (drive fix, naive routing)\n\n"
        f"{table}"
    )
    print("\n" + report)
    write_report("E2", report)
    benchmark.extra_info["naive_s"] = naive["duration"]
    benchmark.extra_info["sticky_s"] = sticky["duration"]

    # the paper's qualitative claims, quantified
    assert naive["handoffs"] > N_FILES / 2  # nearly every recall thrashes
    assert sticky["handoffs"] <= 4
    assert naive["duration"] > 1.5 * sticky["duration"]  # massive hit
    # sticky routing recovers what the drive-level fix would give
    assert sticky["duration"] < 1.3 * no_penalty["duration"]
