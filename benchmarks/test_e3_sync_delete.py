"""E3 — synchronous delete vs reconcile tree-walk (§4.2.6, §6.3).

Paper: reconciliation "does a directory tree-walk and compares each file
one by one rather than take advantage of the GPFS metadata system.  For
an archive with tens to hundreds of millions of files, the overhead is
unacceptable."  The trashcan + synchronous deleter remove orphans with
cost proportional to the *deletions*, not the namespace.

Bench: a 20,000-file archive namespace with 1% of files deleted.
Measured: simulated time of (a) trashcan sweep with synchronous delete,
(b) a full reconcile pass finding the same orphans.  The paper's claim
is the scaling shape: reconcile ~ O(namespace), sync-delete ~ O(deletes).
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.hsm import ReconcileAgent
from repro.metrics import comparison_table
from repro.sim import Environment
from repro.workloads import small_file_flood

from _common import MB, run_once, small_tape_spec, write_report

N_FILES = 20_000
DELETE_FRACTION = 0.01


def _build():
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=64,
            tape_spec=small_tape_spec(),
        ),
    )
    paths = small_file_flood(system.archive_fs, "/data", N_FILES, 2 * MB)
    # give every file a tape copy cheaply: register objects directly
    # (migrating 20k files through the drives is not what E3 measures)
    session = system.tsm.open_session("fta0")
    for i in range(0, N_FILES, 2000):
        batch = [(p, 2 * MB) for p in paths[i : i + 2000]]
        receipts = None

        def _store(b=batch):
            return system.tsm.store_objects(session, "archive", b)

        receipts = env.run(_store())
        for r in receipts:
            system.archive_fs.mark_premigrated(r.path, r.object_id)
    env.run(system.exporter.run_once())
    return env, system, paths


def _run():
    # --- synchronous delete path -----------------------------------------
    env, system, paths = _build()
    victims = paths[:: int(1 / DELETE_FRACTION)][: int(N_FILES * DELETE_FRACTION)]
    for p in victims:
        system.user_delete(p)
    t0 = env.now
    n = env.run(system.sweep_trash())
    sync_time = env.now - t0
    assert n == len(victims)

    # --- reconcile path ----------------------------------------------------
    env2, system2, paths2 = _build()
    victims2 = paths2[:: int(1 / DELETE_FRACTION)][: int(N_FILES * DELETE_FRACTION)]
    for p in victims2:
        # plain unlink: leaves tape orphans, forcing reconciliation
        env2.run(system2.archive_fs.unlink_op(p))
    agent = ReconcileAgent(env2, system2.archive_fs, system2.tsm)
    t0 = env2.now
    report = env2.run(agent.run())
    reconcile_time = env2.now - t0
    assert report.orphans_deleted == len(victims2)
    return sync_time, reconcile_time, len(victims), report


def test_e3_sync_delete_vs_reconcile(benchmark):
    sync_time, reconcile_time, n_deleted, report = run_once(benchmark, _run)

    rows = [
        ("sync-delete seconds", float(n_deleted) * 0.05, sync_time),
        ("reconcile seconds", N_FILES * 0.006, reconcile_time),
        ("reconcile/sync ratio", 25.0, reconcile_time / sync_time),
    ]
    table = comparison_table(rows)
    report_text = (
        "E3  synchronous delete vs reconciliation (§4.2.6)\n"
        f"  namespace={N_FILES} files, deleted={n_deleted}\n"
        f"  sync-delete sweep: {sync_time:.1f}s "
        f"(O(deletes))\n"
        f"  reconcile: {reconcile_time:.1f}s walking "
        f"{report.files_walked} fs entries + {report.tsm_objects_checked} "
        f"TSM objects (O(namespace))\n\n{table}"
    )
    print("\n" + report_text)
    write_report("E3", report_text)
    benchmark.extra_info["sync_s"] = sync_time
    benchmark.extra_info["reconcile_s"] = reconcile_time

    assert reconcile_time > 10 * sync_time  # the 'unacceptable' gap
    assert report.files_walked >= N_FILES - n_deleted
