"""FIG11 — average file size archived per job (paper Figure 11).

Paper: min 4 KB/file, max 4,220 MB/file, mean 596 MB/file across the 62
jobs — the spread that demonstrates the diversity of the Open Science
projects' data characteristics.
"""

from repro.metrics import comparison_table, render_series
from repro.workloads import PAPER_62_JOBS, generate_open_science_trace

from _common import MB, run_once, write_report


def test_fig11_avg_file_size_per_job(benchmark):
    trace = run_once(benchmark, lambda: generate_open_science_trace(seed=2009))
    mb = trace.mean_size_per_job() / MB

    rows = [
        ("avg size/job min MB", PAPER_62_JOBS["mean_size_min"] / MB, float(mb.min())),
        ("avg size/job max MB", PAPER_62_JOBS["mean_size_max"] / MB, float(mb.max())),
        ("avg size/job mean MB", PAPER_62_JOBS["mean_size_mean"] / MB, float(mb.mean())),
    ]
    table = comparison_table(rows)
    series = render_series(
        "Figure 11: average file size per job", mb, unit=" MB", log10=True
    )
    report = f"{series}\n\n{table}"
    print("\n" + report)
    write_report("FIG11", report)
    benchmark.extra_info["avg_size_mean_mb"] = float(mb.mean())

    assert abs(mb.min() * MB / PAPER_62_JOBS["mean_size_min"] - 1) < 0.02
    assert abs(mb.max() * MB / PAPER_62_JOBS["mean_size_max"] - 1) < 0.02
    assert abs(mb.mean() * MB / PAPER_62_JOBS["mean_size_mean"] - 1) < 0.10
