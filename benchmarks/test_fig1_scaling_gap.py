"""FIG1 — the parallel-file-system vs archive scaling gap (paper Figure 1).

Figure 1 is the DOE ASC Kiviat diagram: "parallel file systems scaling
performance at an order of magnitude faster than parallel archives" —
the motivating observation.  Quantified here: aggregate disk-to-disk
parallel file system bandwidth vs end-to-end tape-archive bandwidth as
the mover count scales 1..8, on the same site.

The PFS curve scales with the fabric; the classic archive curve (one
LAN-attached mover through the TSM server, the pre-COTS deployment)
stays flat — an order-of-magnitude gap at scale, which is exactly the
gap the paper's LAN-free parallel archive closes.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.baselines import SerialArchiver
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import huge_file_campaign

from _common import GB, MB, run_once, small_tape_spec, write_report

SCALES = (1, 2, 4, 8)
PER_MOVER_FILES = 4
FILE_SIZE = 4 * GB


def _pfs_bandwidth(n_movers):
    """Disk-to-disk parallel copy bandwidth with n movers."""
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=8, n_disk_servers=5, n_tape_drives=1,
                      n_scratch_tapes=4, tape_spec=small_tape_spec()),
    )
    huge_file_campaign(
        system.scratch_fs, "/d", n_movers * PER_MOVER_FILES, FILE_SIZE
    )
    cfg = PftoolConfig(num_workers=n_movers, num_readdir=1, num_tapeprocs=0,
                       chunk_threshold=10**18, copy_batch=1)
    stats = env.run(system.archive("/d", "/a", cfg).done)
    return stats.data_rate


def _archive_bandwidth_classic(n_movers):
    """The classic (non-parallel) archive path: every stream relays
    through the single TSM server over the LAN, then to tape."""
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=8, n_disk_servers=5, n_tape_drives=8,
                      n_scratch_tapes=16, tape_spec=small_tape_spec()),
    )
    # the pre-COTS archive server generation had GigE-class connectivity;
    # every stream relays through this one NIC
    fab = system.topology.fabric
    fab.links["nic-tsm"].capacity = 125 * MB
    fab.links["nic-tsm:rev"].capacity = 125 * MB
    paths = huge_file_campaign(
        system.archive_fs, "/d", n_movers * 2, FILE_SIZE
    )
    sessions = [
        system.tsm.open_session(f"fta{i}", lan_free=False)
        for i in range(n_movers)
    ]
    t0 = env.now
    evs = []
    for i, sess in enumerate(sessions):
        batch = [(p, FILE_SIZE) for p in paths[i * 2 : i * 2 + 2]]
        evs.append(sess.store_many("archive", batch, collocation_group=f"g{i}"))

    def waiter():
        for ev in evs:
            yield ev

    env.run(env.process(waiter()))
    total = n_movers * 2 * FILE_SIZE
    return total / (env.now - t0)


def _run():
    pfs = {n: _pfs_bandwidth(n) for n in SCALES}
    arc = {n: _archive_bandwidth_classic(n) for n in SCALES}
    return pfs, arc


def test_fig1_scaling_gap(benchmark):
    pfs, arc = run_once(benchmark, _run)
    pfs_scaling = pfs[8] / pfs[1]
    arc_scaling = arc[8] / arc[1]
    gap_at_8 = pfs[8] / arc[8]

    lines = "\n".join(
        f"  {n} movers: PFS {pfs[n]/MB:7.0f} MB/s   classic archive "
        f"{arc[n]/MB:6.0f} MB/s" for n in SCALES
    )
    rows = [
        ("PFS scaling 1->8", 6.0, pfs_scaling),
        ("classic archive scaling 1->8", 1.2, arc_scaling),
        ("PFS/archive gap @8", 10.0, gap_at_8),
    ]
    table = comparison_table(rows)
    report = f"FIG1  PFS vs classic-archive bandwidth scaling\n{lines}\n\n{table}"
    print("\n" + report)
    write_report("FIG1", report)
    benchmark.extra_info["gap_at_8"] = gap_at_8

    # the Kiviat's qualitative claim: PFS scales ~an order of magnitude
    # faster than the (server-bottlenecked) archive
    assert pfs_scaling > 3.0
    assert arc_scaling < 2.0
    assert gap_at_8 > 5.0
