"""A6 — multiple TSM servers (§6.4's limitation, quantified).

Paper: "Having a single TSM server creates a single point of failure...
and a limitation when we need to scale beyond what a single TSM server
can provide... native support for multiple TSM servers would be
beneficial to maintain a single namespace."

Bench: a metadata-heavy store burst (many small objects; the server's
transaction engine is the bottleneck, as it is at hundreds of millions
of files) against 1, 2 and 4 sharded servers.
"""

from repro.sim import Environment
from repro.metrics import comparison_table
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import ShardedTsmStore, TsmServer

from _common import MB, run_once, small_tape_spec, write_report

N_OBJECTS = 240
OBJ_SIZE = 1 * MB
TXN_TIME = 0.1  # a loaded TSM 5.5 DB at hundreds of millions of objects


def _store_burst(n_servers):
    env = Environment()
    servers = []
    for _ in range(n_servers):
        lib = TapeLibrary(env, n_drives=4, spec=small_tape_spec(),
                          n_scratch=16, robot_exchange=3.0)
        servers.append(TsmServer(env, lib, txn_time=TXN_TIME))
    store = ShardedTsmStore(env, servers)
    sess = store.open_session("fta0")
    items = [(f"/d/f{i:05d}", OBJ_SIZE) for i in range(N_OBJECTS)]
    t0 = env.now
    env.run(store.store_objects(sess, "fs", items))
    return env.now - t0


def _run():
    return {n: _store_burst(n) for n in (1, 2, 4)}


def test_a6_multi_tsm_server_scaling(benchmark):
    times = run_once(benchmark, _run)
    tput = {n: N_OBJECTS / t for n, t in times.items()}

    rows = [
        ("1-server objects/s", 1 / TXN_TIME, tput[1]),
        ("2-server speedup", 2.0, tput[2] / tput[1]),
        ("4-server speedup", 4.0, tput[4] / tput[1]),
    ]
    table = comparison_table(rows)
    lines = "\n".join(
        f"  {n} server(s): {times[n]:7.1f}s  ({tput[n]:5.1f} objects/s)"
        for n in (1, 2, 4)
    )
    report = (
        f"A6  multi-TSM-server scaling ({N_OBJECTS} x {OBJ_SIZE/MB:.0f} MB "
        f"objects, {TXN_TIME*1000:.0f} ms txns)\n{lines}\n\n{table}"
    )
    print("\n" + report)
    write_report("A6", report)
    benchmark.extra_info["speedup_4"] = tput[4] / tput[1]

    # the single server is txn-bound; shards relieve it near-linearly
    assert tput[1] <= 1 / TXN_TIME * 1.2
    assert tput[2] / tput[1] > 1.5
    assert tput[4] / tput[1] > 2.5
