"""A4 — restartable file transfer (§4.5).

Paper: "What about restarting a 40 Terabyte file, we don't want to start
it from the beginning... we mark regular file chunks or FUSE file chunks
as good or bad so that we don't have to re-send known good chunks.  This
is a unique incremental parallel archive feature."

Bench: copy a 64 GB chunked file; kill the job partway; restart with
(a) chunk-restart (the paper's feature) and (b) from-scratch re-copy.
Measured: bytes re-sent and time to complete after the fault.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import huge_file_campaign

from _common import GB, run_once, small_tape_spec, write_report

FILE_SIZE = 64 * GB
CHUNK = 2 * GB
FAULT_AT = 20.0  # seconds into the transfer


def _build():
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=6, n_disk_servers=3, n_tape_drives=1,
                      n_scratch_tapes=4, tape_spec=small_tape_spec()),
    )
    huge_file_campaign(system.scratch_fs, "/big", 1, FILE_SIZE)
    return env, system


def _cfg(restart):
    return PftoolConfig(
        num_workers=8, num_readdir=1, num_tapeprocs=0,
        chunk_threshold=4 * GB, copy_chunk_size=CHUNK,
        fuse_threshold=10**18, restart=restart,
    )


def _interrupted_then(resume_with_restart):
    env, system = _build()
    job = system.archive("/big", "/a", _cfg(restart=False))

    def fault():
        yield env.timeout(FAULT_AT)
        job.cancel("simulated network outage")

    env.process(fault())
    stats1 = env.run(job.done)
    assert stats1.aborted
    done_chunks = stats1.chunks_copied

    t0 = env.now
    job2 = system.archive("/big", "/a", _cfg(restart=resume_with_restart))
    stats2 = env.run(job2.done)
    assert not stats2.aborted
    assert stats2.files_copied == 1
    return {
        "chunks_before_fault": done_chunks,
        "resume_seconds": env.now - t0,
        "bytes_resent": stats2.bytes_copied,
        "bytes_skipped": stats2.bytes_skipped,
    }


def _run():
    return (
        _interrupted_then(resume_with_restart=True),
        _interrupted_then(resume_with_restart=False),
    )


def test_a4_restartable_transfer(benchmark):
    with_restart, full_recopy = run_once(benchmark, _run)

    rows = [
        ("resent GB (chunk restart)", 0.0, with_restart["bytes_resent"] / GB),
        ("resent GB (full recopy)", FILE_SIZE / GB, full_recopy["bytes_resent"] / GB),
        ("resume time ratio", 2.0,
         full_recopy["resume_seconds"] / with_restart["resume_seconds"]),
    ]
    table = comparison_table(rows)
    report = (
        f"A4  restartable transfer ({FILE_SIZE/GB:.0f} GB file, fault at "
        f"{FAULT_AT:.0f}s, {with_restart['chunks_before_fault']} chunks done)\n"
        f"  chunk-restart: resume {with_restart['resume_seconds']:6.1f}s, "
        f"resent {with_restart['bytes_resent']/GB:5.1f} GB, "
        f"skipped {with_restart['bytes_skipped']/GB:5.1f} GB\n"
        f"  full recopy:   resume {full_recopy['resume_seconds']:6.1f}s, "
        f"resent {full_recopy['bytes_resent']/GB:5.1f} GB\n\n{table}"
    )
    print("\n" + report)
    write_report("A4", report)
    benchmark.extra_info["resent_gb"] = with_restart["bytes_resent"] / GB

    assert with_restart["chunks_before_fault"] > 0
    # the known-good chunks were not re-sent
    assert (
        with_restart["bytes_skipped"]
        >= with_restart["chunks_before_fault"] * CHUNK * 0.99
    )
    assert with_restart["bytes_resent"] < full_recopy["bytes_resent"]
    assert with_restart["resume_seconds"] < full_recopy["resume_seconds"]
