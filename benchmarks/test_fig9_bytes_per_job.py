"""FIG9 — amount of data archived per job (paper Figure 9).

Paper: min 4 GB/job, max 32,593 GB/job, mean 2,442 GB/job (log10 plot).
"""

import numpy as np

from repro.metrics import comparison_table, render_series
from repro.workloads import PAPER_62_JOBS, generate_open_science_trace

from _common import GB, run_once, write_report


def test_fig9_bytes_per_job(benchmark):
    trace = run_once(benchmark, lambda: generate_open_science_trace(seed=2009))
    gb = trace.bytes_per_job() / GB

    rows = [
        ("GB/job min", PAPER_62_JOBS["bytes_min"] / GB, float(gb.min())),
        ("GB/job max", PAPER_62_JOBS["bytes_max"] / GB, float(gb.max())),
        ("GB/job mean", PAPER_62_JOBS["bytes_mean"] / GB, float(gb.mean())),
        ("total archived TB", 62 * PAPER_62_JOBS["bytes_mean"] / 1e12,
         float(gb.sum() * GB / 1e12)),
    ]
    table = comparison_table(rows)
    series = render_series("Figure 9: GB archived per job", gb, unit=" GB",
                           log10=True)
    report = f"{series}\n\n{table}"
    print("\n" + report)
    write_report("FIG9", report)
    benchmark.extra_info["gb_mean"] = float(gb.mean())

    assert gb.min() * GB == PAPER_62_JOBS["bytes_min"]
    assert gb.max() * GB == PAPER_62_JOBS["bytes_max"]
    assert abs(gb.mean() * GB / PAPER_62_JOBS["bytes_mean"] - 1) < 0.05
    # the paper's "over four petabytes within six months" is consistent
    # with ~150 TB over the 18 monitored operation days
    assert 100 < gb.sum() / 1000 < 200  # TB
