"""A7 — the grass-files problem (§7 future work), solved and measured.

Paper: "We plan to ... provide an efficient solution for archiving very
large number of small files in parallel (i.e. very large number grass
files parallel copy problem)."

Bench: archive 600 x 64 KB files (a) file-by-file, (b) with PFTool's
tar-pipe packing (one container object per batch), then migrate both
trees to tape on one drive.  Packing wins twice: fewer metadata ops and
data streams on the disk copy, and one tape transaction per container
instead of one per file.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import small_file_flood

from _common import MB, run_once, small_tape_spec, write_report

N_FILES = 600
SIZE = 64_000  # 64 KB grass files


def _run_mode(pack):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=2, n_tape_drives=1,
                      n_scratch_tapes=8, tape_spec=small_tape_spec()),
    )

    def seed():
        system.scratch_fs.mkdir("/grass", parents=True)
        for i in range(N_FILES):
            yield system.scratch_fs.write_file(
                "scratch", f"/grass/g{i:05d}", SIZE
            )

    env.run(env.process(seed()))
    cfg = PftoolConfig(num_workers=8, num_readdir=1, num_tapeprocs=0,
                       copy_batch=32, tar_pipe=pack)
    stats = env.run(system.archive("/grass", "/a", cfg).done)
    assert stats.files_copied == N_FILES
    copy_s = stats.duration

    bh0 = system.library.total_backhitches
    t0 = env.now
    report = env.run(system.migrate_to_tape())
    migrate_s = env.now - t0
    transactions = system.library.total_backhitches - bh0
    return copy_s, migrate_s, transactions


def _run():
    return _run_mode(False), _run_mode(True)


def test_a7_grass_files_packing(benchmark):
    (copy_plain, mig_plain, tx_plain), (copy_pack, mig_pack, tx_pack) = (
        run_once(benchmark, _run)
    )

    rows = [
        ("copy speedup (packed)", 2.0, copy_plain / copy_pack),
        ("migrate speedup (packed)", 10.0, mig_plain / mig_pack),
        ("tape transactions plain", float(N_FILES), float(tx_plain)),
        ("tape transactions packed", float(N_FILES // 32 + 1), float(tx_pack)),
    ]
    table = comparison_table(rows)
    report = (
        f"A7  grass files ({N_FILES} x {SIZE/1000:.0f} KB)\n"
        f"  plain:  copy {copy_plain:6.1f}s  migrate {mig_plain:7.1f}s "
        f"({tx_plain} tape transactions)\n"
        f"  packed: copy {copy_pack:6.1f}s  migrate {mig_pack:7.1f}s "
        f"({tx_pack} tape transactions)\n\n{table}"
    )
    print("\n" + report)
    write_report("A7", report)
    benchmark.extra_info["migrate_speedup"] = mig_plain / mig_pack

    assert copy_pack < copy_plain
    assert tx_pack <= N_FILES // 32 + 2
    assert tx_plain >= N_FILES * 0.9
    assert mig_pack < mig_plain / 5  # the §6.1 collapse, avoided end-to-end
