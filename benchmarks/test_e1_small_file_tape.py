"""E1 — small-file tape performance collapse and the aggregation fix (§6.1).

Paper: migrating millions of 8 MB files ran at ~4 MB/s per drive instead
of the ~100 MB/s achieved with large files on LTO-4 — one HSM
transaction per file stops the drive after every file.  TSM's backup
client aggregates small files into larger objects; migration lacked it.

Bench: migrate (a) 8 MB files one-transaction-per-file, (b) the same
files with aggregation, (c) 1 GB files — measuring per-drive streaming
rate on one drive, as the paper's observation is per-drive.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.sim import Environment
from repro.workloads import small_file_flood, huge_file_campaign

from _common import GB, MB, run_once, small_tape_spec, write_report

N_SMALL = 120
SMALL = 8 * MB
N_LARGE = 6
LARGE = 2 * GB


def _one_drive_site():
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=2, n_disk_servers=2, n_tape_drives=1, n_scratch_tapes=8,
            tape_spec=small_tape_spec(),
        ),
    )
    return env, system


def _migrate_rate(paths_factory, aggregate, warmup=2):
    """Steady-state per-drive migration rate.

    A warmup batch mounts the output volume first (lazy dismount keeps it
    on the drive), so the measured window is pure streaming — matching
    the paper's per-drive rate observations.
    """
    env, system = _one_drive_site()
    paths = paths_factory(system)
    drive = system.library.drives[0]
    env.run(system.hsm.migrate("fta0", paths[:warmup], aggregate=aggregate))
    t0 = env.now
    bytes0 = drive.bytes_written
    bh0 = drive.backhitches
    env.run(system.hsm.migrate("fta0", paths[warmup:], aggregate=aggregate))
    duration = env.now - t0
    return (drive.bytes_written - bytes0) / duration, drive.backhitches - bh0


def _run():
    per_file_rate, bh_per_file = _migrate_rate(
        lambda s: small_file_flood(s.archive_fs, "/flood", N_SMALL, SMALL),
        aggregate=False,
        warmup=4,
    )
    agg_rate, bh_agg = _migrate_rate(
        lambda s: small_file_flood(s.archive_fs, "/flood", N_SMALL, SMALL),
        aggregate=True,
        warmup=4,
    )
    large_rate, _ = _migrate_rate(
        lambda s: huge_file_campaign(s.archive_fs, "/big", N_LARGE, LARGE),
        aggregate=False,
        warmup=2,
    )
    return per_file_rate, agg_rate, large_rate, bh_per_file, bh_agg


def test_e1_small_file_tape_collapse(benchmark):
    per_file, agg, large, bh_pf, bh_agg = run_once(benchmark, _run)

    rows = [
        ("8MB files, per-file MB/s", 4.0, per_file / MB),
        ("large files MB/s", 100.0, large / MB),
        ("collapse factor", 100.0 / 4.0, large / per_file),
        ("8MB files, aggregated MB/s", 100.0, agg / MB),
    ]
    table = comparison_table(rows)
    report = (
        f"E1  small-file tape performance (§6.1)\n"
        f"  backhitches: per-file={bh_pf}  aggregated={bh_agg}\n\n{table}"
    )
    print("\n" + report)
    write_report("E1", report)
    benchmark.extra_info["small_mbps"] = per_file / MB
    benchmark.extra_info["large_mbps"] = large / MB

    # paper's shape: ~25x collapse, aggregation restores streaming speed
    assert per_file / MB < 8.0  # collapsed (paper: 4 MB/s)
    assert large / MB > 60.0  # healthy streaming (paper: ~100 MB/s)
    assert large / per_file > 10.0  # order-of-magnitude gap
    assert agg / per_file > 5.0  # aggregation recovers most of it
    assert bh_agg < bh_pf / 10
