"""Shared helpers for the paper-reproduction benchmarks.

Every bench:

* builds the paper-scale site (or a stated reduction, documented in
  EXPERIMENTS.md),
* runs the simulation once inside ``benchmark.pedantic`` (wall-clock of
  the simulation run is what pytest-benchmark reports),
* prints a paper-vs-measured comparison table and appends it to
  ``benchmarks/results/<exp>.txt`` so EXPERIMENTS.md has durable
  artifacts,
* stores headline numbers in ``benchmark.extra_info``.
"""

from __future__ import annotations

import pathlib

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.tapesim import TapeSpec

MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def paper_site(env: Environment, **over) -> ParallelArchiveSystem:
    """The full Figure-7 deployment (10 FTA, 5 NSD, 24 LTO-4, 2x10GigE)."""
    params = ArchiveParams(**over)
    return ParallelArchiveSystem(env, params)


def small_tape_spec() -> TapeSpec:
    """LTO-4 timing with milder mount costs for reduced-scale benches."""
    return TapeSpec(
        native_rate=120e6, load_time=10.0, unload_time=10.0, rewind_full=40.0,
        seek_base=1.0, locate_rate=10e9, label_verify=5.0, backhitch=1.93,
        capacity=800 * GB,
    )


def pftool_cfg(**over) -> PftoolConfig:
    kw = dict(num_workers=16, num_readdir=2, num_tapeprocs=6,
              stat_batch=32, copy_batch=8)
    kw.update(over)
    return PftoolConfig(**kw)


def seed_scratch_tree(env, system, layout: dict) -> None:
    """Instantaneous scratch setup (pre-existing data, not billed)."""
    from repro.workloads.generators import _instant_create

    for path, size in layout.items():
        parent = path.rsplit("/", 1)[0] or "/"
        system.scratch_fs.mkdir(parent, parents=True)
        _instant_create(system.scratch_fs, "setup", path, size, 0xBE << 20)


def write_report(exp_id: str, text: str) -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{exp_id}.txt"
    path.write_text(text + "\n")
    return path


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark and return its value."""
    box = {}

    def _call():
        box["result"] = fn()

    benchmark.pedantic(_call, rounds=1, iterations=1)
    return box["result"]
