"""S1 — archive-as-a-service: the multi-tenant scheduler flood.

Not a paper figure: the paper's site ran PFTool jobs ad hoc (§4.1.2);
S1 benchmarks the service layer built on top of it (ROADMAP item 1).
12 weighted tenants burst 1400 tiny archive jobs at one
:class:`~repro.scheduler.ArchiveService`; admission control caps the
FTA pool at 16 active jobs while stride fair-share picks dispatch
order, so >1000 jobs sit queued at the peak.

Checked contract:

* the service sustains >=1000 concurrent jobs from >=10 tenants;
* post-warmup fair-share deviation stays bounded — asserted over the
  ``sched:fairshare_dev`` trace counter, not service internals;
* every submission completes and every preloaded byte lands
  (conservation through the scheduler layer);
* the run is byte-identical across same-seed repeats (dispatch order
  and headline), and matches the committed golden in
  ``benchmarks/results/BENCH_kernel.json``.
"""

import json
import pathlib

from repro.perf import compare_headlines
from repro.scheduler.scenario import S1Params, run_s1
from repro.trace import Tracer, tracing
from repro.trace.assertions import TraceAssertions

from _common import run_once, write_report

GOLDEN = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"

#: post-warmup bound on the fair-share deviation (measured 0.036 at the
#: S1 default seed; the bound leaves headroom without hiding regressions)
DEVIATION_BOUND = 0.05


def test_s1_scheduler_flood(benchmark):
    params = S1Params()
    tracer = Tracer()

    def run():
        with tracing(tracer):
            return run_s1(params)

    result = run_once(benchmark, run)
    service = result["service"]
    headline = result["headline"]

    # scale floor: >=1000 concurrent jobs from >=10 tenants
    assert headline["tenants"] >= 10
    assert headline["peak_in_flight"] >= 1000

    # conservation through the scheduler: every submission completed and
    # every preloaded byte arrived on the archive side
    assert headline["completed"] == headline["submitted"] == params.n_jobs
    assert headline["bytes_copied"] == headline["bytes_preloaded"]

    # fairness, asserted over the emitted trace, not service internals:
    # the dispatch-time deviation counter stays bounded after warmup
    ta = TraceAssertions(tracer)
    dev_events = ta.select("sched:fairshare_dev", ph="C")
    assert len(dev_events) == len(service.dispatch_log)
    tail = [
        ev["args"]["sched:fairshare_dev"]
        for ev in dev_events[params.warmup_dispatches:]
    ]
    worst = max(tail)
    assert worst <= DEVIATION_BOUND, (
        f"fair-share deviation {worst} exceeded bound {DEVIATION_BOUND}"
    )
    # one dispatch instant per dispatched job, one completion per ticket
    assert len(ta.select("sched:dispatch", ph="i")) == params.n_jobs
    assert len(ta.select("sched:complete", ph="i")) == params.n_jobs

    # golden check: the s1_scheduler entry in BENCH_kernel.json
    golden = json.loads(GOLDEN.read_text())
    mine = {"scenarios": {"s1_scheduler": {"headline": headline}}}
    want = {"scenarios": {
        "s1_scheduler": golden["scenarios"]["s1_scheduler"],
    }}
    drift = compare_headlines(mine, want)
    assert not drift, "S1 headline drift vs golden:\n" + "\n".join(drift)

    text = "\n".join([
        "S1  archive-as-a-service scheduler flood",
        f"  tenants          {headline['tenants']}",
        f"  jobs             {headline['submitted']}",
        f"  peak in flight   {headline['peak_in_flight']}",
        f"  bytes copied     {headline['bytes_copied']}",
        f"  max deviation    {headline['max_deviation']}"
        f" (bound {DEVIATION_BOUND})",
        f"  end time         {headline['end_time']}s",
    ])
    print("\n" + text)
    write_report("S1", text)
    benchmark.extra_info["peak_in_flight"] = headline["peak_in_flight"]
    benchmark.extra_info["max_deviation"] = headline["max_deviation"]


def test_s1_same_seed_byte_identical(benchmark):
    """Two same-seed runs agree on dispatch order and headline, byte for
    byte — the determinism witness for the whole scheduler stack."""
    params = S1Params(n_jobs=250)

    def both():
        return run_s1(params), run_s1(params)

    a, b = run_once(benchmark, both)
    assert a["service"].dispatch_log == b["service"].dispatch_log
    assert (
        json.dumps(a["headline"], sort_keys=True)
        == json.dumps(b["headline"], sort_keys=True)
    )
    assert a["service"].summary() == b["service"].summary()
