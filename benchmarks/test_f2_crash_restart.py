"""F2 — crash-restart overhead: journal resume vs restart from scratch.

A multi-hour archive job that dies mid-flight must not start over
(§4.1.1 restartability).  Three runs of the same archive workload:

* **clean** — uncrashed baseline;
* **journal resume** — the Manager is killed halfway, then the job is
  resumed from its :class:`~repro.recovery.journal.JobJournal`: whole
  files and chunk ranges recorded complete are never re-copied, so the
  only duplicated work is chunks in flight at the kill;
* **scratch restart** — same crash, but the operator simply runs the
  job again from the beginning (no restart logic, no journal): every
  byte is copied twice.

Measured: wall-clock of each recovery path and the bytes it copied.
The journal path must never redo journalled work — its re-copy stays
within the un-journalled remainder plus one in-flight chunk per worker
— while the scratch path pays the full workload again.
"""


from repro.faults import CrashFault, classify_failure
from repro.metrics import comparison_table
from repro.recovery import JobJournal
from repro.sim import Environment

from _common import MB, paper_site, pftool_cfg, run_once, seed_scratch_tree, write_report

N_SMALL = 16
SMALL_SIZE = 40 * MB
N_LARGE = 6
LARGE_SIZE = 400 * MB
CHUNK = 16 * MB
TOTAL = N_SMALL * SMALL_SIZE + N_LARGE * LARGE_SIZE


def _layout():
    files = {f"/data/small/f{i:02d}": SMALL_SIZE for i in range(N_SMALL)}
    files.update({f"/data/large/g{i}": LARGE_SIZE for i in range(N_LARGE)})
    return files


def _build():
    env = Environment()
    system = paper_site(env, n_fta=6, n_disk_servers=3, n_tape_drives=2,
                        n_scratch_tapes=8)
    seed_scratch_tree(env, system, _layout())
    return env, system


def _cfg():
    return pftool_cfg(
        num_workers=8, num_tapeprocs=2,
        chunk_threshold=4 * CHUNK, copy_chunk_size=CHUNK,
        watchdog_interval=30.0, stall_timeout=240.0,
    )


def _crashed_run(crash_at, journalled):
    """Archive, kill the Manager at *crash_at*, recover one of two ways.

    Returns (recovery wall-clock, crashed-run stats, recovery stats).
    """
    env, system = _build()
    journal = JobJournal(env)
    job = system.archive("/data", "/arch", _cfg(), journal=journal)
    env.call_later(crash_at, job.crash)
    try:
        env.run(job.done)
    except CrashFault as exc:
        assert classify_failure(exc) == "crash"
    env.run()  # drain torn I/O
    t_crash = env.now

    if journalled:
        rjob = system.resume_job(journal, _cfg())
    else:
        rjob = system.archive("/data", "/arch", _cfg())
    stats2 = env.run(rjob.done)
    assert not stats2.aborted
    return env.now - t_crash, job.stats, stats2


def _run():
    env, system = _build()
    clean = env.run(system.archive("/data", "/arch", _cfg()).done)
    crash_at = 0.5 * clean.duration
    resume = _crashed_run(crash_at, True)
    scratch = _crashed_run(crash_at, False)
    return clean, crash_at, resume, scratch


def test_f2_crash_restart_overhead(benchmark):
    clean, crash_at, resume, scratch = run_once(benchmark, _run)
    resume_wall, crashed_stats, resume_stats = resume
    scratch_wall, _, scratch_stats = scratch

    cfg = _cfg()
    remaining = TOTAL - crashed_stats.bytes_copied
    rows = [
        ("recovery copied MB (journal)", remaining / MB,
         resume_stats.bytes_copied / MB),
        ("recovery copied MB (scratch rerun)", TOTAL / MB,
         scratch_stats.bytes_copied / MB),
        ("recovery wall-clock ratio", 0.5, resume_wall / scratch_wall),
    ]
    table = comparison_table(rows)
    report = (
        f"F2  crash restart ({N_SMALL} x {SMALL_SIZE/MB:.0f} MB + "
        f"{N_LARGE} x {LARGE_SIZE/MB:.0f} MB archive, Manager killed at "
        f"t={crash_at:.1f}s of {clean.duration:.1f}s, "
        f"{crashed_stats.bytes_copied / MB:.0f} MB journalled before the "
        f"crash)\n"
        f"  journal resume:  {resume_wall:7.1f}s  "
        f"copied {resume_stats.bytes_copied / MB:7.1f} MB  "
        f"(journal skipped {resume_stats.journal_chunks_skipped} chunks / "
        f"{resume_stats.journal_bytes_skipped / MB:.0f} MB, "
        f"{resume_stats.files_skipped} files)\n"
        f"  scratch rerun:   {scratch_wall:7.1f}s  "
        f"copied {scratch_stats.bytes_copied / MB:7.1f} MB\n\n{table}"
    )
    print("\n" + report)
    write_report("F2", report)
    benchmark.extra_info["resume_copied_mb"] = resume_stats.bytes_copied / MB
    benchmark.extra_info["scratch_copied_mb"] = scratch_stats.bytes_copied / MB
    benchmark.extra_info["wall_ratio"] = resume_wall / scratch_wall

    # the journal frontier is honoured: the resume never redoes
    # journalled work — at most the un-journalled remainder plus one
    # in-flight chunk per worker — while the rerun pays everything again
    assert resume_stats.bytes_copied <= remaining + cfg.num_workers * CHUNK
    assert resume_stats.journal_chunks_skipped > 0
    assert resume_stats.bytes_copied < scratch_stats.bytes_copied
    assert scratch_stats.bytes_copied == TOTAL
    assert resume_wall < scratch_wall
