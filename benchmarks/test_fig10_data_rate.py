"""FIG10 — per-job archive data rate (paper Figure 10).

Paper: over the 62 jobs, rates range 73 MB/s .. 1,868 MB/s with an
average of ~575 MB/s; the best jobs reach ~75% of the 2x10GigE trunk,
and the whole system is ~8x faster than a ~70 MB/s non-parallel
archiver.  The paper attributes the spread to "file size, number of
files archived, and overall system run-time status (bandwidth sharing
and machine sharing among multiple users)".

Reproduction: replay the calibrated 62-job trace through the full
simulated site with the operational realities the paper names —
overlapping jobs (Poisson arrivals) and per-job tunable variation
(users launched with different process counts).  Jobs are downscaled to
<=150 files each (mean file size preserved; rates are intensive).  The
serial baseline reproduces the ~70 MB/s comparator.
"""

import numpy as np

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.baselines import SerialArchiver
from repro.metrics import comparison_table, render_series
from repro.pftool import PftoolConfig
from repro.sim import Environment, RandomStreams
from repro.workloads import PAPER_62_JOBS, generate_open_science_trace
from repro.workloads.generators import materialize_job

from _common import MB, GB, run_once, write_report

MAX_FILES = 150
MEAN_INTERARRIVAL = 60.0  # seconds between job submissions


def _background_load(env, system, rng, stop):
    """Other users of the shared site (the paper's 'bandwidth sharing and
    machine sharing among multiple users'): bursts of competing traffic
    between the scratch system and the FTA/LAN side."""
    fab = system.topology.fabric
    nodes = system.topology.fta_nodes
    while not stop["flag"]:
        n_flows = int(rng.integers(2, 6))
        evs = [
            fab.transfer(
                "scratch",
                nodes[int(rng.integers(0, len(nodes)))],
                float(rng.exponential(40 * GB)),
                weight=float(rng.uniform(1.0, 5.0)),
                tag="background",
            )
            for _ in range(n_flows)
        ]
        for ev in evs:
            yield ev
        # brief lull between bursts
        yield env.timeout(float(rng.exponential(6.0)))


def _run_trace():
    env = Environment()
    system = ParallelArchiveSystem(env, ArchiveParams())
    trace = generate_open_science_trace(seed=2009)
    rng = RandomStreams(2009).stream("fig10")
    rates: list[float] = []
    stop = {"flag": False}
    env.process(
        _background_load(env, system, RandomStreams(2009).stream("bg"), stop)
    )

    remaining = {"jobs": len(trace.jobs)}
    all_done = env.event()

    def one_job(k, job, start):
        yield env.timeout(start)
        sj = job.scaled(MAX_FILES)
        materialize_job(system.scratch_fs, sj, f"/jobs/j{k:02d}")
        workers = int(rng.integers(4, 17))
        cfg = PftoolConfig(
            num_workers=workers, num_readdir=2, num_tapeprocs=0,
            stat_batch=32, copy_batch=8,
        )
        stats = yield system.archive(f"/jobs/j{k:02d}", f"/arc/j{k:02d}", cfg).done
        if stats.bytes_copied:
            rates.append(stats.data_rate)
        remaining["jobs"] -= 1
        if remaining["jobs"] == 0:
            all_done.succeed(None)

    start = 0.0
    for k, job in enumerate(trace.jobs):
        start += float(rng.exponential(MEAN_INTERARRIVAL))
        env.process(one_job(k, job, start))
    env.run(until=all_done)
    stop["flag"] = True
    env.run()  # drain in-flight background bursts before the quiet baseline

    # serial comparator on a representative mid-size-file tree (quiet
    # system, mirroring vendor-quoted single-stream numbers)
    mid = min(
        range(len(trace.jobs)),
        key=lambda k: abs(trace.jobs[k].mean_size - 500 * MB),
    )
    mover = SerialArchiver.attach_mover(system)
    serial = SerialArchiver(
        env, system.scratch_fs, system.archive_fs, mover
    )
    sres = env.run(serial.archive_tree(f"/jobs/j{mid:02d}", "/serial"))
    return np.array(rates), sres.rate


def test_fig10_per_job_data_rate(benchmark):
    rates, serial_rate = run_once(benchmark, _run_trace)
    mbps = rates / MB
    P = PAPER_62_JOBS

    rows = [
        ("rate min MB/s", P["rate_min"] / MB, float(mbps.min())),
        ("rate max MB/s", P["rate_max"] / MB, float(mbps.max())),
        ("rate mean MB/s", P["rate_mean"] / MB, float(mbps.mean())),
        ("serial baseline MB/s", 70.0, serial_rate / MB),
        ("parallel/serial speedup", 575.0 / 70.0,
         float(mbps.mean()) / (serial_rate / MB)),
        ("peak trunk utilisation", 0.75, float(mbps.max()) / 2500.0),
    ]
    table = comparison_table(rows)
    series = render_series("Figure 10: data rate per job (MB/s)", mbps,
                           unit=" MB/s")
    report = f"{series}\n\n{table}"
    print("\n" + report)
    write_report("FIG10", report)
    benchmark.extra_info["rate_mean_mbps"] = float(mbps.mean())
    benchmark.extra_info["serial_mbps"] = serial_rate / MB

    assert len(mbps) == 62
    # shape assertions: who wins and by roughly what factor
    assert mbps.max() <= 2500.0  # never exceeds the 2x10GigE trunk
    assert mbps.max() >= 1000.0  # big jobs approach the trunk
    assert mbps.min() <= 200.0  # small-file jobs collapse
    assert 250.0 <= mbps.mean() <= 1200.0  # same regime as the paper's 575
    assert 40.0 <= serial_rate / MB <= 100.0  # the ~70 MB/s comparator
    assert mbps.mean() / (serial_rate / MB) > 4  # parallel wins by ~an order
