"""M1/M2/M3 — metadata plane at archive scale (not a paper figure).

The paper's site holds ~10^8 archived files; its restore optimisation
(§4.1.2) and reconcile chore (§4.4) are both catalog-bound.  These
benches drive the sharded tape index through a full-catalog recall sort
(M1), a cached locate storm plus the streaming sort (M2), and an
orphan-purge reconcile sweep (M3), then extrapolate the measured
files/sec to the paper's population.

Correctness gates, enforced here:

* M* headline numbers (counts, CRC-32 order checksums, simulated end
  times) match the committed golden ``BENCH_kernel.json`` —
  population-keyed, so the check only applies at the default tier;
* re-running a scenario with the same seed is byte-identical (the
  synthetic index generator is arithmetic hashing, no RNG state);
* the streaming recall sort stays bounded: peak live entries is
  ``shards * batch``, far under 10% of the population.
"""

import json
import pathlib

from repro.perf import compare_headlines, run_suite
from repro.perf.metadata import (
    M_BATCH,
    M_POP,
    M_SHARDS,
    m1_index_scan,
    m2_recall_sort,
    m3_reconcile,
)

from _common import run_once, write_report

GOLDEN = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"
M_SCENARIOS = ("m1_index_scan", "m2_recall_sort", "m3_reconcile")


def test_m1_metadata_suite(benchmark):
    report = run_once(benchmark, lambda: run_suite(M_SCENARIOS))

    golden = json.loads(GOLDEN.read_text())
    if M_POP == 100_000:  # goldens are recorded at the default tier
        m_golden = {
            "scenarios": {
                k: v
                for k, v in golden.get("scenarios", {}).items()
                if k in M_SCENARIOS
            }
        }
        drift = compare_headlines(report, m_golden)
        assert not drift, "metadata headline drift vs golden:\n" + "\n".join(
            drift
        )

    lines = [
        f"M*  metadata plane at {M_POP:,} files "
        f"({M_SHARDS} shards, batch {M_BATCH})"
    ]
    for name in M_SCENARIOS:
        m = report["scenarios"][name]
        extra = m.get("extra", {})
        rate = max(extra.values()) if extra else 0
        lines.append(
            f"  {name:16s} {m['wall_s']:8.3f}s  "
            f"peak_live {int(m['headline'].get('peak_live', 0)):>6}  "
            + " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        )
        benchmark.extra_info[name] = extra
        # the bounded-memory claim, re-asserted at the bench tier
        if "peak_live" in m["headline"]:
            assert m["headline"]["peak_live"] <= M_SHARDS * M_BATCH
            assert m["headline"]["peak_live"] < 0.10 * M_POP
    # extrapolate the slowest full-catalog stream to paper scale
    scan_rate = report["scenarios"]["m1_index_scan"]["extra"][
        "scan_files_per_s"
    ]
    lines.append("  extrapolated full-catalog recall sort (measured rate):")
    for pop in (10**6, 10**7, 10**8):
        lines.append(
            f"    {pop:>12,} files  ~{pop / scan_rate:8.1f}s wall, "
            f"peak live entries {M_SHARDS * M_BATCH} "
            f"({100.0 * M_SHARDS * M_BATCH / pop:.4f}% of population)"
        )
    text = "\n".join(lines)
    print("\n" + text)
    write_report("M1", text)


def test_m_scenarios_same_seed_byte_identical():
    """Same population, same seed => byte-identical headlines."""
    pop = 20_000  # reduced tier: identity is seed-driven, not size-driven
    for fn in (m1_index_scan, m2_recall_sort, m3_reconcile):
        a = json.dumps(fn(pop=pop).headline, sort_keys=True)
        b = json.dumps(fn(pop=pop).headline, sort_keys=True)
        assert a == b, f"{fn.__name__} drifted between identical runs"


def test_m_population_tiers_scale_orphan_rate():
    """The deterministic predicates hold their rates across tiers."""
    small, large = m3_reconcile(pop=10_000), m3_reconcile(pop=40_000)
    for out in (small, large):
        rate = out.headline["orphans"] / out.headline["files"]
        assert 0.02 < rate < 0.04  # ~3% deleted upstream
    assert small.headline["orphan_crc"] != large.headline["orphan_crc"]
