"""A2 — ArchiveFUSE: converting N-to-1 into N-to-N (§4.1.2 item 4).

Paper: for very large (>100 GB) files, parallel writes into ONE file hit
"N-to-1 parallel I/O overhead [23]" (the PLFS problem: shared-file block
allocation/lock traffic serialises writers); ArchiveFUSE splits the file
into N chunk files so N workers write N files — "successfully converted
an N-to-1 parallel I/O operation into an N-to-N parallel I/O operation".

Bench: copy one 120 GB file with 10 workers, with the FUSE layer off
(N-to-1) and on (N-to-N).  The shared-write ceiling binds the first and
not the second.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import huge_file_campaign

from _common import GB, run_once, small_tape_spec, write_report

FILE_SIZE = 120 * GB
WORKERS = 10


def _copy(fuse_on):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=10, n_disk_servers=5, n_tape_drives=1,
                      n_scratch_tapes=4, tape_spec=small_tape_spec()),
    )
    system.fuse.chunk_size = 12 * GB
    huge_file_campaign(system.scratch_fs, "/vast", 1, FILE_SIZE)
    cfg = PftoolConfig(
        num_workers=WORKERS, num_readdir=1, num_tapeprocs=0,
        chunk_threshold=4 * GB, copy_chunk_size=12 * GB,
        fuse_threshold=(100 * GB if fuse_on else 10**18),
    )
    stats = env.run(system.archive("/vast", "/a", cfg).done)
    assert stats.files_copied == 1
    if fuse_on:
        assert stats.fuse_files == 1
        assert system.fuse.is_complete("/a/huge000.h5")
    return stats.duration


def _run():
    return _copy(False), _copy(True)


def test_a2_fuse_nton_vs_nto1(benchmark):
    t_nto1, t_nton = run_once(benchmark, _run)
    rate1 = FILE_SIZE / t_nto1 / 1e6
    rateN = FILE_SIZE / t_nton / 1e6

    rows = [
        ("N-to-1 rate MB/s", 1500.0, rate1),
        ("FUSE N-to-N rate MB/s", 2400.0, rateN),
        ("N-to-N / N-to-1", 1.5, rateN / rate1),
    ]
    table = comparison_table(rows)
    report = (
        f"A2  very large file ({FILE_SIZE/GB:.0f} GB), {WORKERS} workers\n"
        f"  N-to-1 (single shared file): {t_nto1:7.1f}s ({rate1:6.0f} MB/s)\n"
        f"  N-to-N (ArchiveFUSE chunks): {t_nton:7.1f}s ({rateN:6.0f} MB/s)\n\n"
        f"{table}"
    )
    print("\n" + report)
    write_report("A2", report)
    benchmark.extra_info["nto1_mbps"] = rate1
    benchmark.extra_info["nton_mbps"] = rateN

    # the conversion wins, bounded by hardware not the shared-file lock
    assert t_nton < t_nto1
    assert rateN / rate1 > 1.2
    assert rate1 <= 1600.0  # shared-write ceiling binds (1.5 GB/s model)
    assert rateN > 1600.0  # N-to-N clears it
