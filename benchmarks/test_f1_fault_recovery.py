"""F1 — fault recovery overhead (retry/backoff, §4.1.1 operability).

The paper's operational claim is that multi-hour archive jobs survive
component trouble instead of wedging: the WatchDog kills truly stalled
jobs, and failed work is retried.  This bench quantifies the cost of
surviving: a tape restore is run clean, then again under a fault plan
(two drive outages with repair plus a burst of transient TSM retrieve
errors).  Measured: job slowdown and per-class retry counts.  The
faulted run must complete every file — recovery, not abandonment.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import FaultPlan
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import small_file_flood

from _common import MB, small_tape_spec, run_once, write_report

N_FILES = 48
FILE_SIZE = 40 * MB


def _build():
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=6, n_disk_servers=3, n_tape_drives=2,
                      n_scratch_tapes=8, tape_spec=small_tape_spec(),
                      tsm_txn_time=0.5),
    )
    paths = small_file_flood(system.archive_fs, "/cold", N_FILES, FILE_SIZE)
    env.run(system.hsm.migrate("fta0", paths))
    env.run(system.exporter.run_once())
    return env, system


def _cfg():
    return PftoolConfig(
        num_workers=8, num_readdir=1, num_tapeprocs=2,
        retry_limit=4, retry_backoff=0.5, stall_timeout=1200.0,
    )


def _restore(plan):
    env, system = _build()
    if plan is not None:
        system.inject_faults(plan)
    job = system.retrieve("/cold", "/back", _cfg())
    stats = env.run(job.done)
    assert not stats.aborted
    return stats


def _run():
    clean = _restore(None)
    faulted = _restore(
        FaultPlan(seed=7)
        .drive_failure(at=8.0, drive="drv00", repair_after=40.0)
        .drive_failure(at=25.0, drive="drv01", repair_after=40.0)
        .tsm_retrieve_errors(rate=0.2, max_failures=6)
    )
    return clean, faulted


def test_f1_fault_recovery_overhead(benchmark):
    clean, faulted = run_once(benchmark, _run)

    slowdown = faulted.duration / clean.duration
    rows = [
        ("files restored (faulted)", N_FILES, faulted.tape_files_restored),
        ("permanent failures", 0.0, faulted.files_failed),
        ("slowdown vs clean run", 1.5, slowdown),
    ]
    table = comparison_table(rows)
    by_class = " ".join(
        f"{k}={v}" for k, v in sorted(faulted.retries_by_class.items())
    ) or "none"
    report = (
        f"F1  fault recovery ({N_FILES} x {FILE_SIZE/MB:.0f} MB restore, "
        f"2 drive outages + transient TSM errors)\n"
        f"  clean:   {clean.duration:7.1f}s\n"
        f"  faulted: {faulted.duration:7.1f}s  (x{slowdown:.2f}, "
        f"retries: {by_class})\n\n{table}"
    )
    print("\n" + report)
    write_report("F1", report)
    benchmark.extra_info["slowdown"] = slowdown
    benchmark.extra_info["retries"] = dict(faulted.retries_by_class)

    # recovery, not abandonment: everything restored, nothing wedged
    assert faulted.tape_files_restored == N_FILES
    assert faulted.files_copied == N_FILES
    assert faulted.files_failed == 0
    assert faulted.total_retries >= 1
    # bounded overhead: backoff + drive repair, not a stall-abort restart
    assert slowdown < 5.0
