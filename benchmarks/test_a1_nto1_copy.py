"""A1 — single-large-file N-to-1 parallel copy (§4.1.2 item 3).

Paper: files of 10-100 GB are divided into N equal sub-chunks assigned
to available Workers, "utiliz[ing] concurrent read/write capabilities of
the parallel file system [to] speedup data movement".

Bench: copy one 24 GB file scratch->archive with 1, 2, 4, 8, 16 workers
and report the speedup curve.  Speedup saturates at the shared-file
(N-to-1) write ceiling — the very limit that motivates A2's FUSE mode.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment
from repro.workloads import huge_file_campaign

from _common import GB, run_once, small_tape_spec, write_report

FILE_SIZE = 24 * GB
WORKER_COUNTS = (1, 2, 4, 8, 16)


def _copy_duration(workers):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=10, n_disk_servers=5, n_tape_drives=1,
                      n_scratch_tapes=4, tape_spec=small_tape_spec()),
    )
    huge_file_campaign(system.scratch_fs, "/big", 1, FILE_SIZE)
    cfg = PftoolConfig(
        num_workers=workers, num_readdir=1, num_tapeprocs=0,
        chunk_threshold=2 * GB, copy_chunk_size=1 * GB,
        fuse_threshold=10**15,
    )
    stats = env.run(system.archive("/big", "/a", cfg).done)
    assert stats.files_copied == 1
    return stats.duration


def _run():
    return {w: _copy_duration(w) for w in WORKER_COUNTS}


def test_a1_single_file_parallel_copy(benchmark):
    durations = run_once(benchmark, _run)
    base = durations[1]
    speedups = {w: base / durations[w] for w in WORKER_COUNTS}

    rows = [
        (f"speedup @{w} workers", float(min(w, 4)), speedups[w])
        for w in WORKER_COUNTS
    ]
    table = comparison_table(rows)
    lines = "\n".join(
        f"  {w:>2} workers: {durations[w]:8.1f}s  speedup {speedups[w]:.2f}x"
        for w in WORKER_COUNTS
    )
    report = f"A1  N-to-1 single large file copy (24 GB)\n{lines}\n\n{table}"
    print("\n" + report)
    write_report("A1", report)
    benchmark.extra_info["speedup_16"] = speedups[16]

    # monotone improvement, substantial parallel win, eventual saturation
    assert durations[2] < durations[1]
    assert durations[8] < durations[2]
    assert speedups[8] > 2.5
    # shared-file ceiling: 16 workers gain little over 8
    assert speedups[16] < speedups[8] * 1.5
