"""A3 — size-balanced migrator vs GPFS-native migration (§4.2.4).

Paper: GPFS's own migration "does not take into account load balancing
regarding file size or the number of GPFS machines.  One process may be
responsible for all of the large files in the list while another has
nothing but small files... all of these processes may be created on a
single machine."  The paper's migrator sorts candidates by size and
distributes them evenly by bytes, so per-node streams "complete at the
same time".

Bench: migrate a heavy-tailed candidate list three ways — balanced LPT,
native round-robin (size-oblivious), native single-machine — and compare
makespan and per-node completion skew.
"""

import numpy as np

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.baselines import GpfsNativeMigrator
from repro.metrics import comparison_table
from repro.pfs import ListRule
from repro.sim import Environment, RandomStreams
from repro.workloads.generators import _instant_create

from _common import GB, MB, run_once, small_tape_spec, write_report

N_FILES = 48


def _candidates(env, system):
    """A heavy-tailed mix in adversarial scan order (big files clustered)."""
    rng = RandomStreams(42).stream("a3")
    sizes = np.concatenate(
        [rng.uniform(4 * GB, 8 * GB, 8), rng.uniform(50 * MB, 200 * MB, N_FILES - 8)]
    )
    system.archive_fs.mkdir("/mig", parents=True)
    for i, s in enumerate(sizes):
        _instant_create(system.archive_fs, "setup", f"/mig/f{i:03d}", int(s), 0xA3)
    res = env.run(
        system.archive_fs.policy.apply(
            [ListRule("c", "cand",
                      lambda p, i, now: p.startswith("/mig/") and i.is_file)]
        )
    )
    return res.lists["cand"]


def _run_mode(mode):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(n_fta=4, n_disk_servers=3, n_tape_drives=4,
                      n_scratch_tapes=16, tape_spec=small_tape_spec()),
    )
    hits = _candidates(env, system)
    if mode == "balanced":
        report = env.run(system.migrator.migrate(hits))
    elif mode == "native":
        report = env.run(GpfsNativeMigrator(env, system.hsm, spread=True).migrate(hits))
    else:
        report = env.run(GpfsNativeMigrator(env, system.hsm, spread=False).migrate(hits))
    return report


def _run():
    return {m: _run_mode(m) for m in ("balanced", "native", "single")}


def test_a3_balanced_vs_native_migration(benchmark):
    reports = run_once(benchmark, _run)
    bal, nat, single = reports["balanced"], reports["native"], reports["single"]

    rows = [
        ("balanced makespan s", 0.0, bal.duration),
        ("native round-robin s", 0.0, nat.duration),
        ("native single-node s", 0.0, single.duration),
        ("native/balanced", 1.3, nat.duration / bal.duration),
        ("single/balanced", 4.0, single.duration / bal.duration),
        ("balanced skew s", 0.0, bal.skew),
        ("native skew s", 0.0, nat.skew),
    ]
    table = comparison_table(rows)
    report = (
        f"A3  migration load balancing ({N_FILES} files, heavy-tailed)\n"
        f"  balanced LPT:   {bal.duration:7.1f}s  skew {bal.skew:6.1f}s\n"
        f"  native spread:  {nat.duration:7.1f}s  skew {nat.skew:6.1f}s\n"
        f"  native 1-node:  {single.duration:7.1f}s\n\n{table}"
    )
    print("\n" + report)
    write_report("A3", report)
    benchmark.extra_info["balanced_s"] = bal.duration
    benchmark.extra_info["native_s"] = nat.duration

    assert bal.files == nat.files == single.files == N_FILES
    # balanced completes sooner and with flatter per-node finish times
    assert bal.duration < nat.duration
    assert bal.skew < nat.skew
    assert single.duration > 2 * bal.duration  # one machine does it all
