"""A8 — TSM co-location ablation (§4.2.2, "ILM stgpool and co-location
features in the archive back-end", §4 item 5).

Co-location keeps one project's (or migration stream's) data together on
the same volumes.  Without it, projects interleave across volumes as
they arrive, and recalling one project later mounts *every* volume it
was scattered over.

Bench: four projects' files arrive interleaved and migrate to tape with
co-location on vs off; then one project is recalled.  Measured: volumes
mounted and recall makespan.
"""

from dataclasses import replace

from repro.sim import Environment
from repro.metrics import comparison_table
from repro.tapesim import TapeLibrary
from repro.tsm import TsmServer

from _common import MB, run_once, small_tape_spec, write_report

N_PROJECTS = 4
FILES_PER_PROJECT = 20
SIZE = 25 * MB


def _run_mode(collocate):
    env = Environment()
    # volumes hold ~21 files, so scattering spreads one project across
    # several tapes while co-location keeps it on one
    spec = replace(small_tape_spec(), capacity=21 * SIZE)
    lib = TapeLibrary(env, n_drives=2, spec=spec, n_scratch=32,
                      robot_exchange=8.0)
    tsm = TsmServer(env, lib, txn_time=0.005)
    sess = tsm.open_session("fta0")

    # interleaved arrival: p0f0, p1f0, p2f0, p3f0, p0f1, ...
    receipts_by_project = {p: [] for p in range(N_PROJECTS)}
    for i in range(FILES_PER_PROJECT):
        for p in range(N_PROJECTS):
            group = f"proj{p}" if collocate else None
            got = env.run(
                sess.store("fs", f"/p{p}/f{i:03d}", SIZE, collocation_group=group)
            )
            receipts_by_project[p].extend(got)

    # quiesce: dismount everything, as hours later when the recall comes
    for d in lib.drives:
        if d.loaded and not d.busy:
            env.run(d.unload())

    # recall project 0, in tape order
    recall = sorted(receipts_by_project[0], key=lambda r: (r.volume, r.seq))
    mounts_before = lib.total_mounts
    t0 = env.now
    env.run(sess.retrieve_many([r.object_id for r in recall]))
    volumes = {r.volume for r in recall}
    return {
        "duration": env.now - t0,
        "volumes": len(volumes),
        "mounts": lib.total_mounts - mounts_before,
    }


def _run():
    return _run_mode(True), _run_mode(False)


def test_a8_collocation(benchmark):
    coll, scatter = run_once(benchmark, _run)

    rows = [
        ("volumes holding project (coll.)", 1.0, float(coll["volumes"])),
        ("volumes holding project (scattered)", 1.0, float(scatter["volumes"])),
        ("recall time ratio scattered/coll", 1.5,
         scatter["duration"] / coll["duration"]),
    ]
    table = comparison_table(rows)
    report = (
        f"A8  co-location ablation ({N_PROJECTS} projects x "
        f"{FILES_PER_PROJECT} x {SIZE/MB:.0f} MB, interleaved arrival)\n"
        f"  co-located: recall {coll['duration']:6.1f}s from "
        f"{coll['volumes']} volume(s), {coll['mounts']} mounts\n"
        f"  scattered:  recall {scatter['duration']:6.1f}s from "
        f"{scatter['volumes']} volume(s), {scatter['mounts']} mounts\n\n"
        f"{table}"
    )
    print("\n" + report)
    write_report("A8", report)
    benchmark.extra_info["recall_ratio"] = scatter["duration"] / coll["duration"]

    # co-location keeps the project on one volume; scattering spreads it
    # and the recall pays a mount per volume touched
    assert coll["volumes"] == 1
    assert scatter["volumes"] >= 3
    assert scatter["mounts"] >= 3 * coll["mounts"]
    assert scatter["duration"] > coll["duration"] * 1.3
