"""A5 — tape-ordered recall vs unordered recall (§4.1.2 item 2, §4.2.5).

Paper: "we try to arrange tape files based on their tape sequential
numbers and unique Tape-IDs... so we can drastically reduce tape drive
thrashing overhead and enforce sequential tape read when we are
restoring many midsize files."  PFTool gets (volume, seq) from the
MySQL-exported index and sorts each TapeCQ ascending.

Bench: restore 160 mid-size files spread over multiple volumes through
PFTool with tape_ordering on vs off; measure restore makespan and drive
seek time.
"""

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.metrics import comparison_table
from repro.pftool import PftoolConfig
from repro.sim import Environment, RandomStreams
from repro.workloads import small_file_flood

from _common import GB, MB, run_once, small_tape_spec, write_report

N_FILES = 160
SIZE = 30 * MB


def _run_one(ordered):
    env = Environment()
    system = ParallelArchiveSystem(
        env,
        ArchiveParams(
            n_fta=4, n_disk_servers=2, n_tape_drives=2, n_scratch_tapes=8,
            tape_spec=small_tape_spec(), recall_routing="sticky",
        ),
    )
    paths = small_file_flood(system.archive_fs, "/cold", N_FILES, SIZE)
    # migrate in a shuffled order so tape layout != namespace order —
    # an unordered (stat-order) recall then seeks all over the tape
    rng = RandomStreams(7).stream("a5")
    shuffled = [paths[i] for i in rng.permutation(N_FILES)]
    half = len(shuffled) // 2
    env.run(system.hsm.migrate("fta0", shuffled[:half],
                               collocation_group="g1"))
    env.run(system.hsm.migrate("fta1", shuffled[half:],
                               collocation_group="g2"))
    env.run(system.exporter.run_once())

    cfg = PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=2,
        stat_batch=N_FILES,  # one TapeCQ arrangement, as the paper's
        copy_batch=8, tape_ordering=ordered,
    )
    t0 = env.now
    seek0 = system.library.total_seek_seconds
    job = system.retrieve("/cold", "/back", cfg)
    stats = env.run(job.done)
    assert stats.tape_files_restored == N_FILES
    return env.now - t0, system.library.total_seek_seconds - seek0


def _run():
    return _run_one(True), _run_one(False)


def test_a5_tape_ordered_recall(benchmark):
    (t_ord, seek_ord), (t_rand, seek_rand) = run_once(benchmark, _run)

    rows = [
        ("ordered restore s", 0.0, t_ord),
        ("unordered restore s", 0.0, t_rand),
        ("unordered/ordered", 2.0, t_rand / t_ord),
        ("ordered seek s", 0.0, seek_ord),
        ("unordered seek s", 0.0, seek_rand),
    ]
    table = comparison_table(rows)
    report = (
        f"A5  tape-ordered recall ({N_FILES} x {SIZE/MB:.0f} MB files, "
        f"2 volumes)\n"
        f"  tape order: {t_ord:7.1f}s (seek {seek_ord:6.1f}s)\n"
        f"  unordered:  {t_rand:7.1f}s (seek {seek_rand:6.1f}s)\n\n{table}"
    )
    print("\n" + report)
    write_report("A5", report)
    benchmark.extra_info["ordered_s"] = t_ord
    benchmark.extra_info["unordered_s"] = t_rand

    # sequential front-to-back read beats seek-everywhere drastically
    assert seek_ord < seek_rand / 5
    assert t_ord < t_rand / 1.5
