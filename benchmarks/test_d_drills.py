"""D* — disaster drills: degraded-mode operation under sustained faults.

Not a paper figure: the paper's site weathered library outages and FTA
losses operationally (§5); the D* family drills the reproduction's
health plane end to end.  Each drill runs a faulted leg against a
fault-free oracle on the same seeded workload and gates on

* conservation (every submission settles; no ticket stranded),
* oracle convergence (faulted end state byte-identical to calm),
* goodput — jobs still complete *inside* the failure window,
* breaker discipline (only legal state edges) and clean recovery
  (nothing fenced or down once the regime lifts).

``run_drill`` enforces those gates internally and raises on any
violation; the benchmark layer adds the golden-headline pin in
``benchmarks/results/BENCH_kernel.json`` and the same-seed determinism
witness.  ``REPRO_D_SEED`` shifts every drill's seed for CI sweeps.
"""

import json
import pathlib

from repro.perf import _ensure_scenarios_loaded, compare_headlines, run_scenario
from repro.perf.drills import DRILLS, run_drill

from _common import run_once, write_report

GOLDEN = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"

_ensure_scenarios_loaded()


def _drill_headline(benchmark, name):
    result = run_once(benchmark, lambda: run_scenario(name))
    return result["headline"]


def _check_golden(name, headline):
    golden = json.loads(GOLDEN.read_text())
    mine = {"scenarios": {name: {"headline": headline}}}
    want = {"scenarios": {name: golden["scenarios"][name]}}
    drift = compare_headlines(mine, want)
    assert not drift, f"{name} headline drift vs golden:\n" + "\n".join(drift)


def test_d1_library_outage(benchmark):
    headline = _drill_headline(benchmark, "d1_library_outage")
    # retrieves park while the library is fenced, archives keep landing:
    # goodput inside the 40 s outage window stays above the floor
    assert headline["goodput_in_window"] >= DRILLS["d1_library_outage"].goodput_floor
    assert headline["completed"] == headline["submitted"]
    assert headline["injected_total"] >= 1
    _check_golden("d1_library_outage", headline)
    text = "\n".join([
        "D1  library outage drill (40 s, retrieves park, archives flow)",
        f"  submitted        {headline['submitted']}",
        f"  completed        {headline['completed']}",
        f"  goodput in win   {headline['goodput_in_window']}",
        f"  end time         {headline['end_time']}s",
    ])
    print("\n" + text)
    write_report("D1", text)
    benchmark.extra_info["goodput_in_window"] = headline["goodput_in_window"]


def test_d2_fta_pool_loss(benchmark):
    headline = _drill_headline(benchmark, "d2_fta_pool_loss")
    # half the pool fences: jobs are preempted off dying nodes, every
    # preemption resumes, and the shrunken pool forces a brownout
    assert headline["health_requeues"] >= 1
    assert headline["resumed"] == headline["preempted"] >= 1
    assert headline["brownouts"] >= 1
    assert headline["brownout_time"] > 0
    assert headline["completed"] == headline["submitted"] - headline["preempted"]
    _check_golden("d2_fta_pool_loss", headline)
    text = "\n".join([
        "D2  FTA pool-loss drill (half the pool, staggered, 35 s)",
        f"  submitted        {headline['submitted']}",
        f"  preempt/resume   {headline['preempted']}/{headline['resumed']}",
        f"  brownout time    {headline['brownout_time']}s",
        f"  goodput in win   {headline['goodput_in_window']}",
    ])
    print("\n" + text)
    write_report("D2", text)
    benchmark.extra_info["health_requeues"] = headline["health_requeues"]


def test_d3_catalog_corruption(benchmark):
    headline = _drill_headline(benchmark, "d3_catalog_corruption")
    # scrambled catalog rows fence retrieves until the mid-run reconcile
    # re-exports from TSM ground truth; run_drill gates verify_catalog==0
    assert headline["goodput_in_window"] >= DRILLS["d3_catalog_corruption"].goodput_floor
    assert headline["completed"] == headline["submitted"]
    assert headline["injected_total"] >= 3  # scrambled + dropped rows
    _check_golden("d3_catalog_corruption", headline)
    text = "\n".join([
        "D3  catalog-corruption drill (3 rows damaged, reconcile at +35 s)",
        f"  submitted        {headline['submitted']}",
        f"  completed        {headline['completed']}",
        f"  rows injected    {headline['injected_total']}",
        f"  goodput in win   {headline['goodput_in_window']}",
    ])
    print("\n" + text)
    write_report("D3", text)
    benchmark.extra_info["injected_total"] = headline["injected_total"]


def test_drills_same_seed_byte_identical(benchmark):
    """Two same-seed D2 runs (the drill with the most moving parts:
    staggered node loss, preempt/resume, brownout, delayed messages)
    agree on the full fault-leg account, byte for byte."""
    spec = DRILLS["d2_fta_pool_loss"]

    def both():
        return run_drill(spec), run_drill(spec)

    a, b = run_once(benchmark, both)
    for res in (a, b):
        assert res["seed"] == a["seed"]
    fa, fb = a["fault"], b["fault"]
    assert fa["summary"] == fb["summary"]
    assert fa["degraded"] == fb["degraded"]
    assert fa["digests"] == fb["digests"]
    assert fa["goodput_in_window"] == fb["goodput_in_window"]
    assert (
        json.dumps(sorted(fa["saw_down"]))
        == json.dumps(sorted(fb["saw_down"]))
    )
    assert fa["env"].now == fb["env"].now
