"""Circuit breakers for flaky dependencies (TSM sessions, library mounts).

The classic three-state machine on the simulated clock:

* ``closed`` — calls flow; *failure_threshold* consecutive failures trip
  the breaker open.
* ``open`` — calls are refused outright (no probe traffic hammers a
  down service); after *reset_timeout* seconds the next :meth:`allow`
  admits a single trial and moves to half-open.
* ``half_open`` — exactly one probe is in flight; a recorded success
  closes the breaker, a recorded failure re-opens it and restarts the
  reset clock.

The only edge into ``closed`` from ``half_open`` is a probe success —
the invariant the stateful hypothesis test pins down.  Every transition
is trace-stamped (``health:breaker``) and kept in :attr:`transitions`
for assertions.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import Environment, SimulationError

__all__ = ["CLOSED", "CircuitBreaker", "HALF_OPEN", "OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One breaker guarding one dependency."""

    def __init__(
        self,
        env: Environment,
        name: str,
        failure_threshold: int = 3,
        reset_timeout: float = 30.0,
        on_transition: Optional[Callable[["CircuitBreaker", str, str], None]] = None,
    ) -> None:
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if reset_timeout < 0:
            raise SimulationError("reset_timeout must be >= 0")
        self.env = env
        self.name = name
        self.failure_threshold = int(failure_threshold)
        self.reset_timeout = float(reset_timeout)
        self.state = CLOSED
        #: consecutive failures observed while closed
        self.failures = 0
        self.opened_at = float("-inf")
        #: (sim time, from, to) of every transition, in order
        self.transitions: list[tuple[float, str, str]] = []
        self._on_transition = on_transition

    def _move(self, new: str, reason: str) -> None:
        old = self.state
        if new == old:
            return
        self.state = new
        self.transitions.append((self.env.now, old, new))
        tr = self.env.trace
        if tr.enabled:
            tr.instant("health:breaker", tid="health", cat="health",
                       args={"name": self.name, "from": old, "to": new,
                             "reason": reason})
        if self._on_transition is not None:
            self._on_transition(self, old, new)

    # -- call gating -----------------------------------------------------
    def allow(self) -> bool:
        """May a call (or probe) proceed right now?

        While open, returns False until *reset_timeout* has elapsed; the
        first allow after that moves to half-open and admits the trial.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.env.now - self.opened_at >= self.reset_timeout:
                self._move(HALF_OPEN, "reset-timeout")
                return True
            return False
        return True  # HALF_OPEN: the single trial is whoever asked

    # -- outcome recording -----------------------------------------------
    def record_success(self) -> None:
        if self.state == HALF_OPEN:
            # the one and only closed-ward edge: a half-open probe success
            self._move(CLOSED, "probe-success")
        self.failures = 0

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            self.opened_at = self.env.now
            self._move(OPEN, "probe-failure")
            return
        if self.state == OPEN:
            return  # already fenced; nothing new to learn
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self.opened_at = self.env.now
            self._move(OPEN, "failure-threshold")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<CircuitBreaker {self.name} {self.state} "
            f"failures={self.failures}>"
        )
