"""Wire a health plane around one :class:`ParallelArchiveSystem`.

:class:`SiteHealthMonitor` registers the standard components and spawns
their detectors:

* ``library`` — breaker around library mounts; the probe asks whether
  any drive is healthy (a whole-library outage fails it).
* ``tsm`` — breaker around TSM sessions; the probe measures the
  server's metadata transaction latency against the baseline captured
  at attach time (a brownout's latency inflation fails it), and
  workload-observed TSM errors trip the breaker between probes via
  :meth:`~repro.health.HealthView.on_fault`.
* ``catalog`` — detector comparing a deterministic sample of tape-index
  rows against TSM's catalog (the ground truth); corruption or dropped
  rows fail it, and a reconcile (re-export) heals it.
* ``node:<fta>`` — one detector per FTA node; the probe pings the node
  through the fault injector's outage windows when one is armed
  (otherwise nodes always answer).

Probes read simulated state deterministically and never draw from the
fault RNG streams, so attaching a monitor perturbs no workload fault
sequence.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.health import HealthView
from repro.health.breaker import CircuitBreaker
from repro.health.detector import DetectorConfig, FailureDetector

__all__ = ["SiteHealthMonitor", "catalog_probe", "verify_catalog"]


def verify_catalog(tapedb, tsm, sample: int = 0) -> int:
    """Rows in *tapedb* that disagree with TSM (missing or scrambled).

    *sample* > 0 checks every ``len(rows)//sample``-th row (deterministic
    stride over the sorted export); 0 checks everything.
    """
    rows = sorted(tsm.export_rows(), key=lambda r: r["object_id"])
    if sample > 0 and len(rows) > sample:
        step = len(rows) // sample
        rows = rows[::step]
    bad = 0
    for row in rows:
        loc = tapedb.location_of(row["object_id"])
        if loc is None or (loc.volume, loc.seq, loc.nbytes) != (
            row["volume"], row["seq"], row["nbytes"]
        ):
            bad += 1
    return bad


def catalog_probe(tapedb, tsm, sample: int = 64) -> Callable[[], bool]:
    """Probe callable: True while the sampled tape index matches TSM."""
    return lambda: verify_catalog(tapedb, tsm, sample=sample) == 0


class SiteHealthMonitor:
    """Detectors + breakers + HealthView for one archive site."""

    def __init__(
        self,
        env,
        system,
        injector=None,
        config: Optional[DetectorConfig] = None,
        nodes: Optional[Iterable[str]] = None,
        latency_tolerance: float = 2.0,
        catalog_sample: int = 64,
    ) -> None:
        self.env = env
        self.system = system
        self.injector = injector
        self.config = config or DetectorConfig()
        self.view = HealthView(env)
        self.detectors: list[FailureDetector] = []
        self._tsm_baseline = system.tsm.txn_time

        self.watch("library", self._library_probe, breaker=True)
        self.watch(
            "tsm",
            lambda: system.tsm.txn_time
            <= self._tsm_baseline * latency_tolerance,
            breaker=True,
        )
        if system.tapedb is not None:
            self.watch(
                "catalog",
                catalog_probe(system.tapedb, system.tsm,
                              sample=catalog_sample),
            )
        node_list = list(nodes) if nodes is not None else list(
            system.loadmanager.nodes
        )
        for node in node_list:
            self.watch(f"node:{node}", self._node_probe(node))

    # -- probes ----------------------------------------------------------
    def _library_probe(self) -> bool:
        return len(self.system.library.healthy_drives) > 0

    def _node_probe(self, node: str) -> Callable[[], bool]:
        def probe() -> bool:
            # resolve late: the monitor is usually built before the fault
            # plan is armed (the injector wants the view to report into)
            inj = self.injector
            if inj is None:
                inj = getattr(self.system, "fault_injector", None)
            return inj is None or not inj.node_down(node)

        return probe

    # -- wiring ----------------------------------------------------------
    def watch(
        self,
        name: str,
        probe: Callable[[], bool],
        breaker: bool = False,
        config: Optional[DetectorConfig] = None,
    ) -> FailureDetector:
        """Register *name* and start its detector (optionally breakered)."""
        cfg = config or self.config
        brk = None
        if breaker:
            brk = CircuitBreaker(
                self.env, name,
                failure_threshold=cfg.breaker_failures,
                reset_timeout=cfg.breaker_reset,
            )
        self.view.register(
            name, probe_interval=cfg.probe_interval,
            phi_threshold=cfg.phi_threshold, down_after=cfg.down_after,
            breaker=brk,
        )
        det = FailureDetector(self.env, self.view, name, probe, config=cfg)
        self.detectors.append(det)
        return det

    def breaker(self, name: str) -> Optional[CircuitBreaker]:
        return self.view.component(name).breaker

    def stop(self) -> None:
        """Stop every detector loop (lets ``env.run()`` terminate)."""
        for det in self.detectors:
            det.stop()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<SiteHealthMonitor {self.view.snapshot()}>"
