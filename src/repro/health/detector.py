"""Per-component failure detectors on the simulated clock.

A :class:`FailureDetector` owns one component: it runs a probe loop as
a daemon process, reports each outcome to the :class:`~repro.health.
HealthView` (heartbeat on success, suspicion escalation on failure),
and paces itself like a production detector — *probe_interval* between
successes, capped exponential backoff between consecutive failures so a
dead component is re-checked eagerly at first and lazily once it is
clearly down.  When the component has a circuit breaker, probes honour
it: an open breaker suppresses probing entirely until its reset timeout
admits the half-open trial.

Detector loops are perpetual; harnesses that want ``env.run()`` to
terminate must call :meth:`FailureDetector.stop` (or
``SiteHealthMonitor.stop``) once the workload drains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.health import HealthView
from repro.sim import Environment

__all__ = ["DetectorConfig", "FailureDetector"]


@dataclass(frozen=True)
class DetectorConfig:
    """Pacing knobs shared by a site's detectors."""

    probe_interval: float = 5.0
    phi_threshold: float = 2.0
    down_after: int = 2
    #: backoff before the first re-probe after a failure; doubles per miss
    probe_backoff: float = 1.0
    probe_backoff_max: float = 8.0
    #: breaker sizing for components that get one
    breaker_failures: int = 3
    breaker_reset: float = 20.0


class FailureDetector:
    """Probe loop for one component.

    *probe* is a zero-argument callable returning truthy for healthy;
    exceptions count as failures (a probe that dies proves the point).
    """

    def __init__(
        self,
        env: Environment,
        view: HealthView,
        name: str,
        probe: Callable[[], bool],
        config: Optional[DetectorConfig] = None,
    ) -> None:
        self.env = env
        self.view = view
        self.name = name
        self.probe = probe
        self.config = config or DetectorConfig()
        self.probes = 0
        self._stopped = False
        self._proc = env.process(
            self._run(), name=f"health-{name}", daemon=True
        )

    def stop(self) -> None:
        """Tear the probe loop down (lets ``env.run()`` terminate)."""
        if not self._stopped:
            self._stopped = True
            if self._proc.is_alive:
                self._proc.kill()

    def _run(self):
        cfg = self.config
        comp = self.view.component(self.name)
        misses = 0
        while not self._stopped:
            breaker = comp.breaker
            if breaker is None or breaker.allow():
                self.probes += 1
                try:
                    ok = bool(self.probe())
                except Exception:
                    ok = False
                self.view.observe(self.name, ok)
            else:
                ok = False  # breaker open: probing suppressed, stay down
            if ok:
                misses = 0
                delay = cfg.probe_interval
            else:
                misses += 1
                delay = min(
                    cfg.probe_backoff * (2 ** (misses - 1)),
                    cfg.probe_backoff_max,
                )
            yield self.env.timeout(delay)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FailureDetector {self.name} probes={self.probes}>"
