"""Site health: failure detectors, circuit breakers, and the HealthView.

The paper's operators found out about dead FTA nodes and wedged TSM
sessions from users; this package gives the simulated site the health
plane a production archive runs on (ROADMAP item 4(c)):

=================  ====================================================
module             provides
=================  ====================================================
``breaker``        :class:`CircuitBreaker` — closed→open→half-open with
                   trace-stamped transitions around TSM sessions and
                   library mounts
``detector``       :class:`FailureDetector` — per-component probe loop
                   on the simulated clock with capped-backoff retries
``monitor``        :class:`SiteHealthMonitor` — wires detectors +
                   breakers around one ParallelArchiveSystem
(this module)      :class:`HealthView` — the site-wide state registry
                   everything else queries and subscribes to
=================  ====================================================

A component is ``up``, ``suspect`` or ``down``.  Suspicion is
phi-style: the view tracks each component's last successful probe and
reports ``phi = (now - last_ok) / probe_interval``; one missed probe
makes a component *suspect*, ``down_after`` consecutive misses (or an
open breaker) make it *down*.  Transitions are published to subscribers
— the scheduler's degraded-mode logic (``repro.scheduler``) fences
nodes, parks retrieves and enters brownout off these callbacks — and
mirrored as ``health:state`` trace instants so drills can gate on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.health.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.sim import Environment, SimulationError

__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "ComponentHealth",
    "DOWN",
    "HALF_OPEN",
    "HealthView",
    "OPEN",
    "SUSPECT",
    "UP",
]

UP = "up"
SUSPECT = "suspect"
DOWN = "down"


@dataclass
class ComponentHealth:
    """Per-component detector state inside the view."""

    name: str
    probe_interval: float = 5.0
    #: phi above this (probe intervals since the last success) = suspect
    phi_threshold: float = 2.0
    #: consecutive probe failures before the component is down
    down_after: int = 2
    breaker: Optional[CircuitBreaker] = None
    last_ok: float = 0.0
    consecutive_failures: int = 0
    #: last state published to subscribers
    published: str = UP
    #: (sim time, state) history of published transitions
    history: list = field(default_factory=list)


class HealthView:
    """Site-wide component health registry.

    Detectors push observations in via :meth:`observe`; workloads report
    errors via :meth:`on_fault`; everything else reads :meth:`state` /
    :meth:`healthy` or subscribes to transitions.  Unregistered
    components read as ``up`` — health is opt-in per component.
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._components: dict[str, ComponentHealth] = {}
        self._listeners: list[Callable[[str, str, str], None]] = []
        #: (component, fault_class) -> workload-reported error count
        self.fault_counts: dict[tuple[str, str], int] = {}

    # -- registration ----------------------------------------------------
    def register(
        self,
        name: str,
        probe_interval: float = 5.0,
        phi_threshold: float = 2.0,
        down_after: int = 2,
        breaker: Optional[CircuitBreaker] = None,
    ) -> ComponentHealth:
        if name in self._components:
            raise SimulationError(f"component {name!r} already registered")
        comp = ComponentHealth(
            name, probe_interval=float(probe_interval),
            phi_threshold=float(phi_threshold), down_after=int(down_after),
            breaker=breaker, last_ok=self.env.now,
        )
        self._components[name] = comp
        if breaker is not None:
            # breaker transitions re-publish the component (an open
            # breaker fences the component regardless of detector state)
            prev = breaker._on_transition

            def _chain(b, old, new, _prev=prev, _comp=comp):
                if _prev is not None:
                    _prev(b, old, new)
                self._publish(_comp)

            breaker._on_transition = _chain
        return comp

    def component(self, name: str) -> ComponentHealth:
        comp = self._components.get(name)
        if comp is None:
            raise SimulationError(f"unknown health component {name!r}")
        return comp

    @property
    def components(self) -> list[str]:
        return sorted(self._components)

    def subscribe(self, fn: Callable[[str, str, str], None]) -> None:
        """Call ``fn(component, old_state, new_state)`` on transitions."""
        self._listeners.append(fn)

    # -- queries ---------------------------------------------------------
    def phi(self, name: str) -> float:
        """Suspicion level: probe intervals elapsed since the last
        success (0.0 for unregistered components)."""
        comp = self._components.get(name)
        if comp is None:
            return 0.0
        return (self.env.now - comp.last_ok) / comp.probe_interval

    def state(self, name: str) -> str:
        comp = self._components.get(name)
        if comp is None:
            return UP
        return self._effective(comp)

    def healthy(self, name: str) -> bool:
        return self.state(name) == UP

    def _effective(self, comp: ComponentHealth) -> str:
        if comp.breaker is not None and comp.breaker.state != CLOSED:
            return DOWN
        if comp.consecutive_failures >= comp.down_after:
            return DOWN
        if comp.consecutive_failures > 0:
            return SUSPECT
        if self.phi(comp.name) >= comp.phi_threshold:
            return SUSPECT
        return UP

    def snapshot(self) -> dict[str, str]:
        """Deterministic component -> state map (sorted keys)."""
        return {name: self.state(name) for name in sorted(self._components)}

    # -- observations ----------------------------------------------------
    def observe(self, name: str, ok: bool) -> None:
        """Record one probe outcome for *name* (detectors call this)."""
        comp = self.component(name)
        if ok:
            comp.last_ok = self.env.now
            comp.consecutive_failures = 0
            if comp.breaker is not None:
                comp.breaker.record_success()
        else:
            comp.consecutive_failures += 1
            if comp.breaker is not None:
                comp.breaker.record_failure()
        self._publish(comp)

    def on_fault(self, component: str, fault_class: str = "fault") -> None:
        """A workload operation observed an error against *component*.

        Counts per (component, class) and feeds the component's breaker
        — client-observed errors trip breakers the same way failed
        probes do, which is what gives detectors something to notice
        *between* probe ticks.
        """
        key = (component, fault_class)
        self.fault_counts[key] = self.fault_counts.get(key, 0) + 1
        tr = self.env.trace
        if tr.enabled:
            tr.instant("health:fault", tid="health", cat="health",
                       args={"component": component, "class": fault_class})
        comp = self._components.get(component)
        if comp is not None and comp.breaker is not None:
            comp.breaker.record_failure()
            self._publish(comp)

    def _publish(self, comp: ComponentHealth) -> None:
        new = self._effective(comp)
        old = comp.published
        if new == old:
            return
        comp.published = new
        comp.history.append((self.env.now, new))
        tr = self.env.trace
        if tr.enabled:
            tr.instant("health:state", tid="health", cat="health",
                       args={"component": comp.name, "from": old, "to": new,
                             "phi": round(self.phi(comp.name), 6)})
        for fn in list(self._listeners):
            fn(comp.name, old, new)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<HealthView {self.snapshot()}>"
