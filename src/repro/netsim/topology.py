"""Topology builders for the paper's archive site (Figure 7).

The CLUSTER'10 deployment:

* Roadrunner's scratch parallel file system (Panasas) reachable over a
  trunk of **two 10-Gigabit Ethernet links**;
* **10 FTA (file transfer agent) nodes** that mount both file systems and
  run PFTool; each has one 10GigE NIC and one FC4 HBA;
* **5 disk-server nodes** with internal arrays totalling 100 TB (the GPFS
  NSD servers), FC-attached;
* **24 LTO-4 tape drives** on the SAN (LAN-free targets);
* one **TSM server** (metadata path over Ethernet).

Capacities default to nominal hardware numbers: 10GigE = 1250 MB/s/link,
FC4 = 400 MB/s/HBA, LTO-4 native streaming = 120 MB/s (the paper quotes
~100 MB/s achieved for large files — that emerges from per-transaction
overheads in :mod:`repro.tapesim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.netsim.fabric import Fabric
from repro.sim import Environment

__all__ = ["ArchiveSiteTopology", "build_archive_site"]

MB = 1_000_000
GB = 1_000_000_000

#: nominal 10-gigabit Ethernet payload bandwidth, bytes/s
TEN_GIGE = 1250 * MB
#: nominal 4-gigabit Fibre Channel payload bandwidth, bytes/s
FC4 = 400 * MB
#: LTO-4 native (uncompressed) streaming rate, bytes/s
LTO4_NATIVE = 120 * MB


@dataclass
class ArchiveSiteTopology:
    """Node-name handles into the built :class:`Fabric`."""

    fabric: Fabric
    scratch: str
    lan_switch: str
    san_switch: str
    fta_nodes: list[str] = field(default_factory=list)
    disk_servers: list[str] = field(default_factory=list)
    tape_drive_ports: list[str] = field(default_factory=list)
    tsm_server: str = "tsm-server"

    @property
    def n_fta(self) -> int:
        return len(self.fta_nodes)

    @property
    def n_tape_drives(self) -> int:
        return len(self.tape_drive_ports)


def build_archive_site(
    env: Environment,
    n_fta: int = 10,
    n_disk_servers: int = 5,
    n_tape_drives: int = 24,
    trunk_links: int = 2,
    lan_link_bw: float = TEN_GIGE,
    fc_link_bw: float = FC4,
    scratch_bw: float = 10_000 * MB,
    lan_latency: float = 50e-6,
    san_latency: float = 10e-6,
) -> ArchiveSiteTopology:
    """Construct the paper's archive site as a :class:`Fabric`.

    The two physical trunk links are modelled as one logical link of
    ``trunk_links * lan_link_bw`` (standard LACP fluid approximation).

    Returns
    -------
    ArchiveSiteTopology with node names:
      * ``scratch`` — the Panasas scratch file system head
      * ``fta{i}`` — file transfer agent nodes
      * ``ds{i}`` — GPFS NSD disk servers
      * ``tapedrv{i}`` — SAN ports of the tape drives
      * ``tsm-server`` — the single TSM metadata server
    """
    if n_fta < 1 or n_disk_servers < 1 or n_tape_drives < 1:
        raise ValueError("node counts must be at least 1")
    fab = Fabric(env, name="archive-site")

    scratch = fab.add_node("scratch")
    lan = fab.add_node("lan-switch")
    san = fab.add_node("san-switch")

    # Scratch FS head: high aggregate bandwidth into the LAN, then the
    # 2x10GigE trunk is the narrow waist the paper saturates to ~75%.
    fab.add_link(scratch, lan, capacity=scratch_bw, latency=lan_latency,
                 name="scratch-uplink")
    fab.add_link(lan, "archive-lan", capacity=trunk_links * lan_link_bw,
                 latency=lan_latency, name="site-trunk")

    topo = ArchiveSiteTopology(
        fabric=fab, scratch=scratch, lan_switch=lan, san_switch=san
    )

    fta_nics: list[tuple] = []
    for i in range(n_fta):
        node = fab.add_node(f"fta{i}")
        nic_fwd, nic_rev = fab.add_link(
            "archive-lan", node, capacity=lan_link_bw,
            latency=lan_latency, name=f"nic-{node}")
        fab.add_link(node, san, capacity=fc_link_bw, latency=san_latency,
                     name=f"hba-{node}")
        topo.fta_nodes.append(node)
        fta_nics.append((node, nic_fwd, nic_rev))

    for i in range(n_disk_servers):
        node = fab.add_node(f"ds{i}")
        # Disk servers have two HBAs in the deployment; model as 2x FC4.
        fab.add_link(san, node, capacity=2 * fc_link_bw, latency=san_latency,
                     name=f"hba-{node}")
        # They are also on the LAN (NSD traffic from FTAs can ride either
        # path; the SAN path dominates and is the one modelled for data).
        fab.add_link("archive-lan", node, capacity=lan_link_bw,
                     latency=lan_latency, name=f"nic-{node}")
        topo.disk_servers.append(node)

    for i in range(n_tape_drives):
        node = fab.add_node(f"tapedrv{i}")
        fab.add_link(san, node, capacity=fc_link_bw, latency=san_latency,
                     name=f"fcport-{node}")
        topo.tape_drive_ports.append(node)

    tsm = fab.add_node("tsm-server")
    tsm_nic_fwd, tsm_nic_rev = fab.add_link(
        "archive-lan", tsm, capacity=lan_link_bw, latency=lan_latency,
        name="nic-tsm")
    fab.add_link(san, tsm, capacity=fc_link_bw, latency=san_latency,
                 name="hba-tsm")
    topo.tsm_server = tsm

    # Client<->server traffic is Ethernet traffic: TSM sessions speak IP.
    # Without pinning, Dijkstra would prefer the (lower-latency) SAN hop —
    # physically wrong: the SAN carries only block traffic to drives/LUNs.
    for node, nic_fwd, nic_rev in fta_nics:
        fab.set_route(node, tsm, [nic_rev, tsm_nic_fwd])
        fab.set_route(tsm, node, [tsm_nic_rev, nic_fwd])

    return topo
