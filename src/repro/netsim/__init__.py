"""Network/SAN fabric simulation.

Models the archive's data paths — 10GigE LAN links, FC4 SAN links, HBAs,
switches — as a graph of capacitated links.  Active transfers are *flows*;
whenever a flow starts or finishes the fabric recomputes a **max-min fair**
rate allocation (the standard fluid model for long-lived TCP/FC streams) and
re-projects every flow's completion time.

This is the substrate that makes the paper's bandwidth numbers emerge from
contention rather than being hard-coded: e.g. Figure 10's ~75% utilisation
of a 2x10GigE trunk arises from many PFTool workers sharing the trunk links.

Public surface: :class:`Fabric`, :class:`Link`, :class:`Flow`,
:func:`max_min_fair_rates` (the batch reference solver) and
:class:`MaxMinAllocator` (its incremental equivalent driving the fabric),
plus topology builders in :mod:`repro.netsim.topology`.
"""

from repro.netsim.fabric import Fabric, Flow, Link, TransferResult
from repro.netsim.maxmin import MaxMinAllocator, max_min_fair_rates
from repro.netsim.topology import ArchiveSiteTopology, build_archive_site

__all__ = [
    "ArchiveSiteTopology",
    "Fabric",
    "Flow",
    "Link",
    "MaxMinAllocator",
    "TransferResult",
    "build_archive_site",
    "max_min_fair_rates",
]
