"""Capacitated link graph with fluid flows and dynamic fair sharing.

A :class:`Fabric` owns nodes and directed :class:`Link` s.  Data movement is
expressed as :meth:`Fabric.transfer` (a DES process event) or as a long-lived
:class:`Flow` opened/closed explicitly.  Every flow arrival or departure
marks the touched route dirty on the incremental
:class:`~repro.netsim.maxmin.MaxMinAllocator`; rates are settled lazily (at
most one solve per simulated instant, restricted to the affected allocation
components) before the engine projects completions or an external caller
reads them.  In-flight flows have their accrued bytes banked at the rates
that were in force and their completion re-projected.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.netsim.maxmin import MaxMinAllocator
from repro.sim import Environment, Event

__all__ = ["Fabric", "Flow", "Link", "TransferResult"]

#: flows with fewer residual bytes than this are considered complete —
#: guards against float livelock where now + remaining/rate == now
EPS_BYTES = 1e-6


class Link:
    """A directed capacitated edge between two fabric nodes."""

    __slots__ = ("name", "src", "dst", "capacity", "latency")

    def __init__(
        self, name: str, src: str, dst: str, capacity: float, latency: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be non-negative")
        self.name = name
        self.src = src
        self.dst = dst
        #: bytes per second
        self.capacity = float(capacity)
        #: one-way propagation delay in seconds
        self.latency = float(latency)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.src}->{self.dst} {self.capacity/1e6:.0f} MB/s>"


@dataclass
class TransferResult:
    """Completion record returned by :meth:`Fabric.transfer`."""

    src: str
    dst: str
    nbytes: int
    start: float
    end: float
    tag: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Average achieved rate in bytes/s (inf for instantaneous)."""
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


class Flow:
    """An active fluid flow across a route of links."""

    __slots__ = (
        "fid",
        "src",
        "dst",
        "links",
        "nbytes",
        "remaining",
        "rate",
        "rate_cap",
        "weight",
        "start",
        "tag",
        "done",
        "_last_update",
    )

    def __init__(
        self,
        fid: int,
        src: str,
        dst: str,
        links: list[Link],
        nbytes: float,
        done: Event,
        rate_cap: float = float("inf"),
        weight: float = 1.0,
        tag: Any = None,
        start: float = 0.0,
    ) -> None:
        self.fid = fid
        self.src = src
        self.dst = dst
        self.links = links
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.rate = 0.0
        self.rate_cap = rate_cap
        self.weight = weight
        self.start = start
        self.tag = tag
        self.done = done
        self._last_update = start

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate/1e6:.1f}MB/s>"
        )


class Fabric:
    """Graph of links with shortest-path routing and fair-shared flows.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Label used in reprs and stats.

    Notes
    -----
    * Routing is static shortest-path (hop count, then total latency, then
      lexicographic link names for determinism), computed on demand and
      cached.  Explicit routes can be registered with :meth:`set_route`.
    * Rate re-allocation is incremental: a flow event dirties only its own
      route and the next settle re-solves only the affected allocation
      components (O(component) rather than O(all flows x all links)), with
      same-instant events coalesced into a single solve.
    """

    def __init__(self, env: Environment, name: str = "fabric") -> None:
        self.env = env
        self.name = name
        self.nodes: set[str] = set()
        self.links: dict[str, Link] = {}
        self._adj: dict[str, list[Link]] = {}
        self._route_cache: dict[tuple[str, str], list[Link]] = {}
        self._flows: dict[int, Flow] = {}
        self._fid = itertools.count(1)
        #: cumulative bytes delivered, for utilisation accounting
        self.bytes_delivered = 0.0
        self._alloc = MaxMinAllocator()
        self._completion_proc_running = False
        self._wakeup: Optional[Event] = None
        #: last simulated instant progress was banked (same-instant skip)
        self._last_bank = float("-inf")
        #: flows whose ``remaining`` hit zero since the last retire sweep
        self._finished = 0

    @property
    def rate_recomputes(self) -> int:
        """Number of fair-share solves performed (perf accounting)."""
        return self._alloc.solves

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> str:
        self.nodes.add(name)
        self._adj.setdefault(name, [])
        return name

    def add_link(
        self,
        src: str,
        dst: str,
        capacity: float,
        latency: float = 0.0,
        duplex: bool = True,
        name: Optional[str] = None,
    ) -> tuple[Link, Optional[Link]]:
        """Add a link (and its reverse if *duplex*); returns (fwd, rev)."""
        self.add_node(src)
        self.add_node(dst)
        base = name or f"{src}->{dst}"
        if base in self.links:
            raise ValueError(f"duplicate link name {base!r}")
        fwd = Link(base, src, dst, capacity, latency)
        self.links[base] = fwd
        self._adj[src].append(fwd)
        self._alloc.set_capacity(base, capacity)
        rev = None
        if duplex:
            rname = f"{dst}->{src}" if name is None else f"{name}:rev"
            rev = Link(rname, dst, src, capacity, latency)
            self.links[rname] = rev
            self._adj[dst].append(rev)
            self._alloc.set_capacity(rname, capacity)
        self._route_cache.clear()
        return fwd, rev

    def set_link_capacity(self, name: str, capacity: float) -> None:
        """Change a link's capacity at runtime (degradation / repair).

        In-flight flows have their progress banked at the old rates,
        then everything is re-allocated against the new capacity — so a
        trunk going degraded mid-transfer slows exactly the flows that
        cross it, from this instant on.
        """
        if capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        try:
            link = self.links[name]
        except KeyError:
            raise KeyError(f"no link named {name!r}") from None
        link.capacity = float(capacity)
        self._alloc.set_capacity(name, capacity)
        self._reallocate()

    def set_route(self, src: str, dst: str, links: Iterable[Link]) -> None:
        """Pin an explicit route for (src, dst)."""
        route = list(links)
        for a, b in zip(route, route[1:]):
            if a.dst != b.src:
                raise ValueError(f"route is not contiguous at {a.name}->{b.name}")
        if route:
            if route[0].src != src or route[-1].dst != dst:
                raise ValueError("route endpoints do not match src/dst")
        self._route_cache[(src, dst)] = route

    def route(self, src: str, dst: str) -> list[Link]:
        """Shortest path from *src* to *dst* (empty list if src == dst)."""
        if src == dst:
            return []
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown node in route {src!r}->{dst!r}")
        # Dijkstra on (hops, latency, path-names) for deterministic routes.
        best: dict[str, tuple[int, float, tuple[str, ...]]] = {src: (0, 0.0, ())}
        prev: dict[str, Link] = {}
        pq: list[tuple[int, float, tuple[str, ...], str]] = [(0, 0.0, (), src)]
        visited: set[str] = set()
        while pq:
            hops, lat, names, node = heapq.heappop(pq)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for lk in self._adj[node]:
                cand = (hops + 1, lat + lk.latency, names + (lk.name,))
                if lk.dst not in best or cand < best[lk.dst]:
                    best[lk.dst] = cand
                    prev[lk.dst] = lk
                    heapq.heappush(pq, cand + (lk.dst,))
        if dst not in prev:
            raise ValueError(f"no route from {src!r} to {dst!r} in {self.name}")
        path: list[Link] = []
        node = dst
        while node != src:
            lk = prev[node]
            path.append(lk)
            node = lk.src
        path.reverse()
        self._route_cache[key] = path
        return path

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of the active flows (rates settled), for external
        callers that may hold or mutate the list."""
        self._flush_rates()
        return list(self._flows.values())

    def iter_flows(self):
        """Live view of the active flows (rates settled) — the hot-path
        accessor: no list is allocated, so callers must not open or close
        flows while iterating."""
        self._flush_rates()
        return self._flows.values()

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        rate_cap: float = float("inf"),
        weight: float = 1.0,
        tag: Any = None,
    ) -> Event:
        """Move *nbytes* from *src* to *dst*; returns an event that fires
        with a :class:`TransferResult` when the last byte arrives.

        A zero-byte transfer still pays one round of route latency.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        done = self.env.event()
        tr = self.env.trace
        if tr.enabled:
            span = tr.begin(
                "net:transfer", tid=f"{src}->{dst}", cat="net",
                args={"nbytes": int(nbytes)},
            )
            done.callbacks.append(lambda _ev: span.end())
        links = self.route(src, dst)
        latency = sum(lk.latency for lk in links)
        start = self.env.now

        if nbytes == 0 or (not links and rate_cap == float("inf")):
            # Instantaneous (modulo latency) completion.
            def _finish_quick() -> None:
                done.succeed(
                    TransferResult(src, dst, int(nbytes), start, self.env.now, tag)
                )
                self.bytes_delivered += nbytes

            self.env.call_later(latency, _finish_quick)
            return done

        flow = Flow(
            next(self._fid),
            src,
            dst,
            links,
            nbytes,
            done,
            rate_cap=rate_cap,
            weight=weight,
            tag=tag,
            start=start,
        )

        def _register() -> None:
            flow.start = self.env.now
            flow._last_update = self.env.now
            self._flows[flow.fid] = flow
            rate = self._alloc.add_flow(
                flow.fid,
                [lk.name for lk in links],
                weight=flow.weight,
                rate_cap=flow.rate_cap,
            )
            if rate is not None:
                # Short-circuit: this flow shares no link, its rate is
                # settled and nobody else's allocation moved.
                flow.rate = rate
            if flow.remaining <= EPS_BYTES:
                self._finished += 1
            self._reallocate()

        # Completion is driven by the engine process; registration needs no
        # process of its own — one recycled timer replaces the per-transfer
        # Process + init event + Timeout triple.
        self.env.call_later(latency, _register)
        return done

    # ------------------------------------------------------------------
    # engine
    # ------------------------------------------------------------------
    def _bank_progress(self) -> None:
        """Accrue bytes sent at current rates since the last update.

        Same-instant calls after the first are skipped entirely: banking
        over dt == 0 moves no bytes (infinite-rate flows, the one dt == 0
        exception, are drained by the engine's zero-dt branch at the same
        instant), so a burst of flow events at one timestamp pays a single
        O(flows) sweep.
        """
        now = self.env.now
        if now == self._last_bank:
            return
        self._last_bank = now
        inf = float("inf")
        delivered = 0.0
        finished = 0
        for flow in self._flows.values():
            dt = now - flow._last_update
            if flow.rate == inf:
                delivered += flow.remaining
                flow.remaining = 0.0
                finished += 1
            elif dt > 0 and flow.rate > 0:
                moved = min(flow.remaining, flow.rate * dt)
                flow.remaining -= moved
                delivered += moved
                if flow.remaining <= EPS_BYTES:
                    delivered += flow.remaining
                    flow.remaining = 0.0
                    finished += 1
            flow._last_update = now
        self.bytes_delivered += delivered
        self._finished += finished

    def _reallocate(self) -> None:
        """Bank progress, retire finished flows and poke the engine.

        Fair rates are *not* recomputed here: the event only dirties the
        allocator, and the solve happens at most once per simulated
        instant — in :meth:`_flush_rates`, before the engine projects the
        next completion or an external caller reads flow rates.  Banked
        bytes are unaffected because no time passes in between.
        """
        self._bank_progress()
        self._retire_finished()
        self._kick_engine()

    def _retire_finished(self) -> None:
        if not self._finished:
            return  # nothing hit zero since the last sweep: skip the scan
        self._finished = 0
        for f in [f for f in self._flows.values() if f.remaining <= EPS_BYTES]:
            del self._flows[f.fid]
            self._alloc.remove_flow(f.fid)
            f.done.succeed(
                TransferResult(f.src, f.dst, int(f.nbytes), f.start, self.env.now, f.tag)
            )

    def _flush_rates(self) -> None:
        """Settle any pending re-allocation (affected components only)."""
        if not self._alloc.dirty:
            return
        flows = self._flows
        for fid, rate in self._alloc.flush().items():
            flow = flows.get(fid)
            if flow is not None:
                flow.rate = rate

    def _kick_engine(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)
        elif not self._completion_proc_running and self._flows:
            self._completion_proc_running = True
            self.env.process(self._engine(), name=f"{self.name}-engine")

    def _next_completion(self) -> float:
        self._flush_rates()
        t = float("inf")
        for f in self._flows.values():
            if f.rate > 0:
                dt = f.remaining / f.rate
                if dt < t:
                    t = dt
        return t

    def _engine(self) -> Iterable[Event]:
        """Sleeps until the earliest projected completion, retires flows,
        reallocates, repeats.  Woken early by :meth:`_reallocate` when the
        flow set changes."""
        try:
            while self._flows:
                dt = self._next_completion()
                if dt == float("inf"):
                    # All flows stalled (shouldn't happen); wait for a change.
                    self._wakeup = self.env.event()
                    yield self._wakeup
                    self._wakeup = None
                    continue
                if self.env.now + dt == self.env.now:
                    # dt is below the clock's float resolution: the nearly
                    # finished flows can never drain by timing out — finish
                    # them directly to avoid a zero-delay livelock.
                    for f in self._flows.values():
                        if f.rate > 0 and f.remaining / f.rate <= dt * (1 + 1e-9):
                            self.bytes_delivered += f.remaining
                            f.remaining = 0.0
                            self._finished += 1
                    self._retire_finished()
                    continue
                # Sleep until the projected completion OR an early kick from
                # _reallocate.  A recycled kernel timer pokes the wakeup
                # event instead of a Timeout | Event AnyOf condition (three
                # allocations per engine cycle); a stale timer finds its
                # event already triggered and does nothing.
                self._wakeup = wake = self.env.event()
                self.env.call_later(
                    dt, lambda wake=wake: None if wake.triggered else wake.succeed(None)
                )
                yield wake
                self._wakeup = None
                self._bank_progress()
                self._retire_finished()
        finally:
            self._completion_proc_running = False

    def __repr__(self) -> str:
        return (
            f"<Fabric {self.name!r} nodes={len(self.nodes)} links={len(self.links)}"
            f" flows={len(self._flows)}>"
        )
