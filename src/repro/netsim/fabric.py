"""Capacitated link graph with fluid flows and dynamic fair sharing.

A :class:`Fabric` owns nodes and directed :class:`Link` s.  Data movement is
expressed as :meth:`Fabric.transfer` (a DES process event) or as a long-lived
:class:`Flow` opened/closed explicitly.  Every flow arrival or departure
marks the touched route dirty on the incremental
:class:`~repro.netsim.maxmin.MaxMinAllocator`; rates are settled lazily (at
most one solve per simulated instant, restricted to the affected allocation
components) before the engine projects completions or an external caller
reads them.  In-flight flows have their accrued bytes banked at the rates
that were in force and their completion re-projected.

With numpy available, per-flow residuals and bank timestamps live in flat
arrays indexed by the allocator's flow *slots* (see
:class:`~repro.netsim.maxmin.MaxMinAllocator`), and the per-event O(flows)
sweeps — banking, completion projection, sub-resolution drain, retirement
scan — run as whole-array operations.  Slot order equals flow registration
order, and every float fold is written as a strict left-to-right
accumulation (``cumsum``), so the vector sweeps produce bit-identical
trajectories to the scalar per-flow loops used when numpy is absent.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.netsim.maxmin import MaxMinAllocator, _np
from repro.sim import Environment, Event

__all__ = ["Fabric", "Flow", "Link", "TransferResult"]

#: flows with fewer residual bytes than this are considered complete —
#: guards against float livelock where now + remaining/rate == now
EPS_BYTES = 1e-6

#: below this many live flows the per-flow loop beats numpy call overhead;
#: both paths are bit-identical so the per-call switch is invisible
_VEC_MIN_FLOWS = 24

#: live-flow population at which a fabric promotes itself (one-way) from
#: the scalar reference engine to the vectorised flow table; small
#: fabrics never pay array overhead, large ones amortise it
_VEC_PROMOTE = 128


class Link:
    """A directed capacitated edge between two fabric nodes."""

    __slots__ = ("name", "src", "dst", "capacity", "latency")

    def __init__(
        self, name: str, src: str, dst: str, capacity: float, latency: float = 0.0
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        if latency < 0:
            raise ValueError(f"link {name}: latency must be non-negative")
        self.name = name
        self.src = src
        self.dst = dst
        #: bytes per second
        self.capacity = float(capacity)
        #: one-way propagation delay in seconds
        self.latency = float(latency)

    def __repr__(self) -> str:
        return f"<Link {self.name} {self.src}->{self.dst} {self.capacity/1e6:.0f} MB/s>"


@dataclass
class TransferResult:
    """Completion record returned by :meth:`Fabric.transfer`."""

    src: str
    dst: str
    nbytes: int
    start: float
    end: float
    tag: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Average achieved rate in bytes/s (inf for instantaneous)."""
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


class Flow:
    """An active fluid flow across a route of links.

    ``remaining`` and ``rate`` are read-only views: while the flow is
    table-backed (numpy mode) they read the shared per-slot arrays; after
    retirement — or always, in scalar mode — they read plain attributes.
    """

    __slots__ = (
        "fid",
        "src",
        "dst",
        "links",
        "nbytes",
        "rate_cap",
        "weight",
        "start",
        "tag",
        "done",
        "slot",
        "_tab",
        "_remaining",
        "_rate",
        "_last_update",
    )

    def __init__(
        self,
        fid: int,
        src: str,
        dst: str,
        links: list[Link],
        nbytes: float,
        done: Event,
        rate_cap: float = float("inf"),
        weight: float = 1.0,
        tag: Any = None,
        start: float = 0.0,
    ) -> None:
        self.fid = fid
        self.src = src
        self.dst = dst
        self.links = links
        self.nbytes = float(nbytes)
        self.rate_cap = rate_cap
        self.weight = weight
        self.start = start
        self.tag = tag
        self.done = done
        #: index into the shared flow table (numpy mode), -1 otherwise
        self.slot = -1
        self._tab: Optional[_FlowTable] = None
        self._remaining = float(nbytes)
        self._rate = 0.0
        self._last_update = start

    @property
    def remaining(self) -> float:
        """Residual bytes (as of the last bank point)."""
        tab = self._tab
        if tab is None:
            return self._remaining
        return float(tab.rem[self.slot])

    @property
    def rate(self) -> float:
        """Currently allocated fair-share rate in bytes/s."""
        tab = self._tab
        if tab is None:
            return self._rate
        return float(tab.alloc._vrates[self.slot])

    def __repr__(self) -> str:
        return (
            f"<Flow #{self.fid} {self.src}->{self.dst} "
            f"{self.remaining:.0f}/{self.nbytes:.0f}B @{self.rate/1e6:.1f}MB/s>"
        )


class _FlowTable:
    """Per-slot residual/bank-timestamp arrays shared with the allocator.

    Slot numbering belongs to the :class:`MaxMinAllocator`; the table's
    arrays grow independently and are renumbered through the allocator's
    ``on_compact`` callback so both sides stay in lockstep.
    """

    __slots__ = ("alloc", "rem", "lu", "slot_flow")

    def __init__(self, alloc: MaxMinAllocator) -> None:
        self.alloc = alloc
        self.rem = _np.zeros(64)
        self.lu = _np.zeros(64)
        #: slot -> Flow (stale entries on dead slots are never read)
        self.slot_flow: list[Optional[Flow]] = []

    def ensure(self, slot: int) -> None:
        if slot >= len(self.rem):
            cap = len(self.rem)
            new_cap = max(slot + 1, 2 * cap)
            for name in ("rem", "lu"):
                grown = _np.zeros(new_cap)
                grown[:cap] = getattr(self, name)
                setattr(self, name, grown)
        sf = self.slot_flow
        while len(sf) <= slot:
            sf.append(None)

    def on_compact(self, keep) -> None:
        """Renumber after the allocator dropped dead slots (order kept)."""
        k = len(keep)
        cap = max(64, 2 * k)
        rem = _np.zeros(cap)
        lu = _np.zeros(cap)
        rem[:k] = self.rem[keep]
        lu[:k] = self.lu[keep]
        self.rem, self.lu = rem, lu
        old = self.slot_flow
        self.slot_flow = [old[i] for i in keep.tolist()]
        for ns, f in enumerate(self.slot_flow):
            f.slot = ns


class Fabric:
    """Graph of links with shortest-path routing and fair-shared flows.

    Parameters
    ----------
    env:
        The simulation environment.
    name:
        Label used in reprs and stats.

    Notes
    -----
    * Routing is static shortest-path (hop count, then total latency, then
      lexicographic link names for determinism), computed on demand and
      cached.  Explicit routes can be registered with :meth:`set_route`.
    * Rate re-allocation is incremental: a flow event dirties only its own
      route and the next settle re-solves only the affected allocation
      components (O(component) rather than O(all flows x all links)), with
      same-instant events coalesced into a single solve.
    * With numpy present the per-flow sweeps (banking, retirement,
      completion projection) are vectorised over the shared flow table;
      the scalar loops below remain the reference (and fallback)
      implementation and produce bit-identical results.
    """

    def __init__(self, env: Environment, name: str = "fabric") -> None:
        self.env = env
        self.name = name
        self.nodes: set[str] = set()
        self.links: dict[str, Link] = {}
        self._adj: dict[str, list[Link]] = {}
        self._route_cache: dict[tuple[str, str], list[Link]] = {}
        self._flows: dict[int, Flow] = {}
        self._fid = itertools.count(1)
        #: cumulative bytes delivered, for utilisation accounting
        self.bytes_delivered = 0.0
        self._alloc = MaxMinAllocator()
        self._completion_proc_running = False
        self._wakeup: Optional[Event] = None
        #: last simulated instant progress was banked (same-instant skip)
        self._last_bank = float("-inf")
        #: flows whose ``remaining`` hit zero since the last retire sweep
        self._finished = 0
        # Every fabric starts on the scalar reference engine; once the
        # live-flow population crosses _VEC_PROMOTE, _promote() switches
        # (one-way) to the vectorised flow table.  Both engines are
        # bit-identical, so the switch is invisible to results.
        self._vec = False
        self._tab: Optional[_FlowTable] = None

    def _promote(self) -> None:
        """Adopt the vectorised engine mid-run (one-way, value-preserving).

        The allocator rebuilds its incidence arrays from the dict state
        (slots in registration order — exactly what incremental adds
        would have produced), the flow table is seeded from each flow's
        banked residual/timestamp, and the hot methods are rebound so
        dispatch is settled once, not branched per event.
        """
        self._vec = True
        alloc = self._alloc
        alloc.promote()
        tab = self._tab = _FlowTable(alloc)
        alloc.on_compact = tab.on_compact
        if alloc.nslots:
            tab.ensure(alloc.nslots - 1)
        for f in self._flows.values():
            s = alloc.slot_of(f.fid)
            tab.rem[s] = f._remaining
            tab.lu[s] = f._last_update
            tab.slot_flow[s] = f
            f.slot = s
            f._tab = tab
        self._bank_progress = self._bank_progress_vec
        self._retire_finished = self._retire_finished_vec
        self._flush_rates = self._flush_rates_vec
        self._next_completion = self._next_completion_vec
        self._drain_subresolution = self._drain_subresolution_vec

    @property
    def rate_recomputes(self) -> int:
        """Number of fair-share solves performed (perf accounting)."""
        return self._alloc.solves

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> str:
        self.nodes.add(name)
        self._adj.setdefault(name, [])
        return name

    def add_link(
        self,
        src: str,
        dst: str,
        capacity: float,
        latency: float = 0.0,
        duplex: bool = True,
        name: Optional[str] = None,
    ) -> tuple[Link, Optional[Link]]:
        """Add a link (and its reverse if *duplex*); returns (fwd, rev)."""
        self.add_node(src)
        self.add_node(dst)
        base = name or f"{src}->{dst}"
        if base in self.links:
            raise ValueError(f"duplicate link name {base!r}")
        fwd = Link(base, src, dst, capacity, latency)
        self.links[base] = fwd
        self._adj[src].append(fwd)
        self._alloc.set_capacity(base, capacity)
        rev = None
        if duplex:
            rname = f"{dst}->{src}" if name is None else f"{name}:rev"
            rev = Link(rname, dst, src, capacity, latency)
            self.links[rname] = rev
            self._adj[dst].append(rev)
            self._alloc.set_capacity(rname, capacity)
        self._route_cache.clear()
        return fwd, rev

    def set_link_capacity(self, name: str, capacity: float) -> None:
        """Change a link's capacity at runtime (degradation / repair).

        In-flight flows have their progress banked at the old rates,
        then everything is re-allocated against the new capacity — so a
        trunk going degraded mid-transfer slows exactly the flows that
        cross it, from this instant on.
        """
        if capacity <= 0:
            raise ValueError(f"link {name}: capacity must be positive")
        try:
            link = self.links[name]
        except KeyError:
            raise KeyError(f"no link named {name!r}") from None
        link.capacity = float(capacity)
        self._alloc.set_capacity(name, capacity)
        self._reallocate()

    def set_route(self, src: str, dst: str, links: Iterable[Link]) -> None:
        """Pin an explicit route for (src, dst)."""
        route = list(links)
        for a, b in zip(route, route[1:]):
            if a.dst != b.src:
                raise ValueError(f"route is not contiguous at {a.name}->{b.name}")
        if route:
            if route[0].src != src or route[-1].dst != dst:
                raise ValueError("route endpoints do not match src/dst")
        self._route_cache[(src, dst)] = route

    def route(self, src: str, dst: str) -> list[Link]:
        """Shortest path from *src* to *dst* (empty list if src == dst)."""
        if src == dst:
            return []
        key = (src, dst)
        cached = self._route_cache.get(key)
        if cached is not None:
            return cached
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown node in route {src!r}->{dst!r}")
        # Dijkstra on (hops, latency, path-names) for deterministic routes.
        best: dict[str, tuple[int, float, tuple[str, ...]]] = {src: (0, 0.0, ())}
        prev: dict[str, Link] = {}
        pq: list[tuple[int, float, tuple[str, ...], str]] = [(0, 0.0, (), src)]
        visited: set[str] = set()
        while pq:
            hops, lat, names, node = heapq.heappop(pq)
            if node in visited:
                continue
            visited.add(node)
            if node == dst:
                break
            for lk in self._adj[node]:
                cand = (hops + 1, lat + lk.latency, names + (lk.name,))
                if lk.dst not in best or cand < best[lk.dst]:
                    best[lk.dst] = cand
                    prev[lk.dst] = lk
                    heapq.heappush(pq, cand + (lk.dst,))
        if dst not in prev:
            raise ValueError(f"no route from {src!r} to {dst!r} in {self.name}")
        path: list[Link] = []
        node = dst
        while node != src:
            lk = prev[node]
            path.append(lk)
            node = lk.src
        path.reverse()
        self._route_cache[key] = path
        return path

    # ------------------------------------------------------------------
    # flows
    # ------------------------------------------------------------------
    @property
    def active_flows(self) -> list[Flow]:
        """Snapshot of the active flows (rates settled), for external
        callers that may hold or mutate the list."""
        self._flush_rates()
        return list(self._flows.values())

    def iter_flows(self):
        """Live view of the active flows (rates settled) — the hot-path
        accessor: no list is allocated, so callers must not open or close
        flows while iterating."""
        self._flush_rates()
        return self._flows.values()

    def transfer(
        self,
        src: str,
        dst: str,
        nbytes: float,
        rate_cap: float = float("inf"),
        weight: float = 1.0,
        tag: Any = None,
    ) -> Event:
        """Move *nbytes* from *src* to *dst*; returns an event that fires
        with a :class:`TransferResult` when the last byte arrives.

        A zero-byte transfer still pays one round of route latency.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        done = self.env.event()
        tr = self.env.trace
        if tr.enabled:
            span = tr.begin(
                "net:transfer", tid=f"{src}->{dst}", cat="net",
                args={"nbytes": int(nbytes)},
            )
            done.callbacks.append(lambda _ev: span.end())
        links = self.route(src, dst)
        latency = sum(lk.latency for lk in links)
        start = self.env.now

        if nbytes == 0 or (not links and rate_cap == float("inf")):
            # Instantaneous (modulo latency) completion.
            def _finish_quick() -> None:
                done.succeed(
                    TransferResult(src, dst, int(nbytes), start, self.env.now, tag)
                )
                self.bytes_delivered += nbytes

            self.env.call_later(latency, _finish_quick)
            return done

        flow = Flow(
            next(self._fid),
            src,
            dst,
            links,
            nbytes,
            done,
            rate_cap=rate_cap,
            weight=weight,
            tag=tag,
            start=start,
        )

        def _register() -> None:
            now = self.env.now
            flow.start = now
            flow._last_update = now
            self._flows[flow.fid] = flow
            rate = self._alloc.add_flow(
                flow.fid,
                [lk.name for lk in links],
                weight=flow.weight,
                rate_cap=flow.rate_cap,
            )
            if self._vec:
                # Adopt the allocator's slot for the shared flow table;
                # rates (including the short-circuit one) already live in
                # the allocator's rate array.
                tab = self._tab
                slot = self._alloc.slot_of(flow.fid)
                tab.ensure(slot)
                tab.rem[slot] = flow.nbytes
                tab.lu[slot] = now
                tab.slot_flow[slot] = flow
                flow.slot = slot
                flow._tab = tab
                if flow.nbytes <= EPS_BYTES:
                    self._finished += 1
            else:
                if rate is not None:
                    # Short-circuit: this flow shares no link, its rate is
                    # settled and nobody else's allocation moved.
                    flow._rate = rate
                if flow._remaining <= EPS_BYTES:
                    self._finished += 1
                if (
                    len(self._flows) >= _VEC_PROMOTE
                    and self._alloc.vec_auto
                ):
                    self._promote()
            self._reallocate()

        # Completion is driven by the engine process; registration needs no
        # process of its own — one recycled timer replaces the per-transfer
        # Process + init event + Timeout triple.
        self.env.call_later(latency, _register)
        return done

    # ------------------------------------------------------------------
    # engine — scalar reference implementations
    # ------------------------------------------------------------------
    def _bank_progress(self) -> None:
        """Accrue bytes sent at current rates since the last update.

        Same-instant calls after the first are skipped entirely: banking
        over dt == 0 moves no bytes (infinite-rate flows, the one dt == 0
        exception, are drained by the engine's zero-dt branch at the same
        instant), so a burst of flow events at one timestamp pays a single
        O(flows) sweep.
        """
        now = self.env.now
        if now == self._last_bank:
            return
        self._last_bank = now
        inf = float("inf")
        delivered = 0.0
        finished = 0
        for flow in self._flows.values():
            dt = now - flow._last_update
            if flow._rate == inf:
                delivered += flow._remaining
                flow._remaining = 0.0
                finished += 1
            elif dt > 0 and flow._rate > 0:
                moved = min(flow._remaining, flow._rate * dt)
                flow._remaining -= moved
                delivered += moved
                if flow._remaining <= EPS_BYTES:
                    delivered += flow._remaining
                    flow._remaining = 0.0
                    finished += 1
            flow._last_update = now
        self.bytes_delivered += delivered
        self._finished += finished

    def _reallocate(self) -> None:
        """Bank progress, retire finished flows and poke the engine.

        Fair rates are *not* recomputed here: the event only dirties the
        allocator, and the solve happens at most once per simulated
        instant — in :meth:`_flush_rates`, before the engine projects the
        next completion or an external caller reads flow rates.  Banked
        bytes are unaffected because no time passes in between.
        """
        self._bank_progress()
        self._retire_finished()
        self._kick_engine()

    def _retire_finished(self) -> None:
        if not self._finished:
            return  # nothing hit zero since the last sweep: skip the scan
        self._finished = 0
        for f in [f for f in self._flows.values() if f._remaining <= EPS_BYTES]:
            del self._flows[f.fid]
            self._alloc.remove_flow(f.fid)
            f.done.succeed(
                TransferResult(f.src, f.dst, int(f.nbytes), f.start, self.env.now, f.tag)
            )

    def _flush_rates(self) -> None:
        """Settle any pending re-allocation (affected components only)."""
        if not self._alloc.dirty:
            return
        flows = self._flows
        for fid, rate in self._alloc.flush().items():
            flow = flows.get(fid)
            if flow is not None:
                flow._rate = rate

    def _kick_engine(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed(None)
        elif not self._completion_proc_running and self._flows:
            self._completion_proc_running = True
            self.env.process(self._engine(), name=f"{self.name}-engine")

    def _next_completion(self) -> float:
        self._flush_rates()
        t = float("inf")
        for f in self._flows.values():
            if f._rate > 0:
                dt = f._remaining / f._rate
                if dt < t:
                    t = dt
        return t

    def _drain_subresolution(self, dt: float) -> None:
        """Directly finish flows whose projected completion is below the
        clock's float resolution (cannot drain by timing out)."""
        for f in self._flows.values():
            if f._rate > 0 and f._remaining / f._rate <= dt * (1 + 1e-9):
                self.bytes_delivered += f._remaining
                f._remaining = 0.0
                self._finished += 1
        self._retire_finished()

    # ------------------------------------------------------------------
    # engine — vectorised implementations (bit-identical to the scalar
    # reference: slot order == registration order == dict order, and all
    # byte folds are strict left-to-right cumsums)
    # ------------------------------------------------------------------
    def _bank_progress_vec(self) -> None:
        now = self.env.now
        if now == self._last_bank:
            return
        self._last_bank = now
        nlive = len(self._flows)
        if nlive == 0:
            return
        alloc = self._alloc
        tab = self._tab
        if nlive < _VEC_MIN_FLOWS:
            # few flows: walk them (through the table) instead of paying
            # numpy call overhead on whole arrays
            trem = tab.rem
            tlu = tab.lu
            vr = alloc._vrates
            inf = float("inf")
            delivered = 0.0
            finished = 0
            for flow in self._flows.values():
                s = flow.slot
                rate = float(vr[s])
                dt = now - float(tlu[s])
                if rate == inf:
                    delivered += float(trem[s])
                    trem[s] = 0.0
                    finished += 1
                elif dt > 0 and rate > 0:
                    rem_s = float(trem[s])
                    moved = min(rem_s, rate * dt)
                    rem_s -= moved
                    delivered += moved
                    if rem_s <= EPS_BYTES:
                        delivered += rem_s
                        rem_s = 0.0
                        finished += 1
                    trem[s] = rem_s
                tlu[s] = now
            self.bytes_delivered += delivered
            self._finished += finished
            return
        np = _np
        n = alloc.nslots
        alive = alloc._valive[:n]
        rate = alloc._vrates[:n]
        rem = tab.rem[:n]
        lu = tab.lu[:n]
        dt = now - lu
        inf_m = alive & np.isinf(rate)
        mov_m = alive & ~inf_m & (dt > 0.0) & (rate > 0.0)
        rr = np.where(inf_m, 0.0, rate)
        moved = np.where(mov_m, np.minimum(rem, rr * dt), 0.0)
        after = rem - moved
        fin_m = mov_m & (after <= EPS_BYTES)
        # Interleave (moved, residual) pairs so the cumsum reproduces the
        # scalar loop's exact two-adds-per-flow accumulation order.
        pairs = np.empty(2 * n)
        pairs[0::2] = np.where(inf_m, rem, moved)
        pairs[1::2] = np.where(fin_m, after, 0.0)
        delivered = float(np.cumsum(pairs)[-1])
        rem[:] = np.where(inf_m | fin_m, 0.0, after)
        lu[alive] = now
        self.bytes_delivered += delivered
        self._finished += int(np.count_nonzero(inf_m) + np.count_nonzero(fin_m))

    def _retire_finished_vec(self) -> None:
        if not self._finished:
            return
        self._finished = 0
        alloc = self._alloc
        tab = self._tab
        flows = self._flows
        if len(flows) < _VEC_MIN_FLOWS:
            trem = tab.rem
            done = [f for f in flows.values() if trem[f.slot] <= EPS_BYTES]
        else:
            np = _np
            n = alloc.nslots
            sel = np.nonzero(alloc._valive[:n] & (tab.rem[:n] <= EPS_BYTES))[0]
            slot_flow = tab.slot_flow
            # ascending slot == registration == dict order
            done = [slot_flow[s] for s in sel.tolist()]
        vr = alloc._vrates
        for f in done:
            # materialise the table-backed views before the slot dies
            f._rate = float(vr[f.slot])
            f._remaining = 0.0
            f._tab = None
            del flows[f.fid]
            alloc.remove_flow(f.fid)
            f.done.succeed(
                TransferResult(f.src, f.dst, int(f.nbytes), f.start, self.env.now, f.tag)
            )

    def _flush_rates_vec(self) -> None:
        # Rates live in the allocator's slot array, which the Flow.rate
        # property reads directly — no per-flow write-back dict needed.
        if self._alloc.dirty:
            self._alloc.flush(collect=False)

    def _next_completion_vec(self) -> float:
        self._flush_rates_vec()
        alloc = self._alloc
        nlive = len(self._flows)
        if nlive < _VEC_MIN_FLOWS:
            trem = self._tab.rem
            vr = alloc._vrates
            t = float("inf")
            for f in self._flows.values():
                s = f.slot
                rate = float(vr[s])
                if rate > 0:
                    dt = float(trem[s]) / rate
                    if dt < t:
                        t = dt
            return t
        np = _np
        n = alloc.nslots
        m = alloc._valive[:n] & (alloc._vrates[:n] > 0.0)
        if not m.any():
            return float("inf")
        dts = self._tab.rem[:n][m] / alloc._vrates[:n][m]
        return float(dts.min())

    def _drain_subresolution_vec(self, dt: float) -> None:
        alloc = self._alloc
        tab = self._tab
        if len(self._flows) < _VEC_MIN_FLOWS:
            trem = tab.rem
            vr = alloc._vrates
            thresh = dt * (1 + 1e-9)
            for f in self._flows.values():
                s = f.slot
                rate = float(vr[s])
                if rate > 0 and float(trem[s]) / rate <= thresh:
                    self.bytes_delivered += float(trem[s])
                    trem[s] = 0.0
                    self._finished += 1
            self._retire_finished()
            return
        np = _np
        n = alloc.nslots
        rem = tab.rem[:n]
        rate = alloc._vrates[:n]
        m = alloc._valive[:n] & (rate > 0.0)
        dts = np.full(n, float("inf"))
        np.divide(rem, rate, out=dts, where=m)
        sel = m & (dts <= dt * (1 + 1e-9))
        vals = rem[sel]
        if len(vals):
            # fold starts from the current total: the scalar loop adds each
            # residual straight onto bytes_delivered
            self.bytes_delivered = float(
                np.cumsum(np.concatenate(([self.bytes_delivered], vals)))[-1]
            )
            rem[sel] = 0.0
            self._finished += int(np.count_nonzero(sel))
        self._retire_finished()

    def _engine(self) -> Iterable[Event]:
        """Sleeps until the earliest projected completion, retires flows,
        reallocates, repeats.  Woken early by :meth:`_reallocate` when the
        flow set changes."""
        try:
            while self._flows:
                dt = self._next_completion()
                if dt == float("inf"):
                    # All flows stalled (shouldn't happen); wait for a change.
                    self._wakeup = self.env.event()
                    yield self._wakeup
                    self._wakeup = None
                    continue
                if self.env.now + dt == self.env.now:
                    # dt is below the clock's float resolution: the nearly
                    # finished flows can never drain by timing out — finish
                    # them directly to avoid a zero-delay livelock.
                    self._drain_subresolution(dt)
                    continue
                # Sleep until the projected completion OR an early kick from
                # _reallocate.  A recycled kernel timer pokes the wakeup
                # event instead of a Timeout | Event AnyOf condition (three
                # allocations per engine cycle); a stale timer finds its
                # event already triggered and does nothing.
                self._wakeup = wake = self.env.event()
                self.env.call_later(
                    dt, lambda wake=wake: None if wake.triggered else wake.succeed(None)
                )
                yield wake
                self._wakeup = None
                self._bank_progress()
                self._retire_finished()
        finally:
            self._completion_proc_running = False

    def __repr__(self) -> str:
        return (
            f"<Fabric {self.name!r} nodes={len(self.nodes)} links={len(self.links)}"
            f" flows={len(self._flows)}>"
        )
