"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each traversing a set of capacitated links, the
max-min fair allocation repeatedly finds the most-constrained link (the one
whose equal share per unfrozen flow is smallest), freezes every flow through
it at that share, removes the consumed capacity, and iterates.

The solver is a pure function so it can be property-tested in isolation;
the fabric calls it on every flow arrival/departure.

Two incremental backends share the same bookkeeping:

* a **vectorised** water-filler (numpy, scipy-free) that keeps link
  capacities, per-flow weights and the flow->link route incidence in
  preallocated flat arrays and solves each dirty component with
  ``bincount``/``subtract.at`` rounds;
* the original **scalar** dict walker, used when numpy is unavailable
  (or disabled via ``REPRO_NO_NUMPY=1``).

Both accumulate per-link weight/capacity totals in ascending-flow-id
order, so for the integer, monotonically assigned flow ids the fabric
uses the two backends are *bit-identical* — the perf goldens hold under
either one.
"""

from __future__ import annotations

import os
from typing import Hashable, Iterable, Mapping, Optional, Sequence

try:  # pragma: no cover - exercised by the numpy-less CI job
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["MaxMinAllocator", "max_min_fair_rates"]


def max_min_fair_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    link_capacity: Mapping[Hashable, float],
    flow_weight: Mapping[Hashable, float] | None = None,
    rate_cap: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Compute weighted max-min fair rates.

    Parameters
    ----------
    flow_links:
        flow id -> iterable of link ids the flow traverses.  A flow with no
        links (an intra-node copy) is only bounded by its ``rate_cap``.
    link_capacity:
        link id -> capacity (bytes/s).  ``inf`` allowed.
    flow_weight:
        Optional flow id -> weight (default 1.0).  A flow with weight w gets
        w shares at each bottleneck.
    rate_cap:
        Optional flow id -> absolute rate ceiling (e.g. a tape drive's
        native streaming rate).  Modelled as a private virtual link.

    Returns
    -------
    dict mapping flow id -> allocated rate (bytes/s).

    Invariants (property-tested):
      * no link's total allocated rate exceeds its capacity (within 1e-6)
      * every flow is bottlenecked: it crosses at least one saturated link,
        or sits at its rate cap, or is unconstrained (infinite rate)
    """
    weights = dict(flow_weight or {})
    caps: dict[Hashable, float] = {k: float(v) for k, v in link_capacity.items()}

    # Translate per-flow rate caps into private virtual links.
    links_of: dict[Hashable, list[Hashable]] = {}
    for fid, links in flow_links.items():
        lst = list(links)
        if rate_cap and fid in rate_cap and rate_cap[fid] != float("inf"):
            vlink = ("__cap__", fid)
            caps[vlink] = float(rate_cap[fid])
            lst.append(vlink)
        links_of[fid] = lst

    unknown = {
        lk for lst in links_of.values() for lk in lst if lk not in caps
    }
    if unknown:
        raise KeyError(f"flows reference links with no capacity: {sorted(map(str, unknown))}")

    rates: dict[Hashable, float] = {}
    active = set(links_of)
    remaining = dict(caps)

    # flows per link (only unfrozen flows counted each round)
    while active:
        # Weighted share each link could give per unit weight.
        share_per_link: dict[Hashable, float] = {}
        link_users: dict[Hashable, float] = {}
        for fid in active:
            w = weights.get(fid, 1.0)
            for lk in links_of[fid]:
                link_users[lk] = link_users.get(lk, 0.0) + w
        for lk, tot_w in link_users.items():
            cap = remaining[lk]
            share_per_link[lk] = cap / tot_w if tot_w > 0 else float("inf")

        if not share_per_link:
            # No flow crosses any link: all remaining flows unconstrained.
            for fid in active:
                rates[fid] = float("inf")
            break

        bottleneck_share = min(share_per_link.values())
        if bottleneck_share == float("inf"):
            for fid in active:
                rates[fid] = float("inf")
            break

        saturated = {
            lk for lk, s in share_per_link.items() if s <= bottleneck_share * (1 + 1e-12)
        }
        frozen = {
            fid
            for fid in active
            if any(lk in saturated for lk in links_of[fid])
        }
        if not frozen:  # numerical corner: freeze everything at the share
            frozen = set(active)
        for fid in frozen:
            w = weights.get(fid, 1.0)
            r = bottleneck_share * w
            rates[fid] = r
            for lk in links_of[fid]:
                remaining[lk] = max(0.0, remaining[lk] - r)
        active -= frozen

    return rates


_INF = float("inf")

#: initial capacities of the preallocated incidence arrays
_SLOT_CAP0 = 64
_LINK_CAP0 = 64
_ENT_CAP0 = 256

#: closures with fewer route entries than this solve faster through the
#: scalar dict walk than through numpy call overhead (both backends are
#: bit-identical, so the switch is invisible to results)
_VEC_MIN_ENTRIES = 64


class MaxMinAllocator:
    """Incremental weighted max-min fair allocator.

    Maintains the flow/link incidence structure across events so the
    fabric does not rebuild the whole problem on every flow arrival,
    departure or capacity change.  Three mechanisms make it fast:

    * **short-circuits** — a flow whose links carry no other flow (and
      the cap-only / link-less flows) gets its rate in O(route length)
      with no global solve, and provably cannot move anyone else's
      bottleneck;
    * **dirty-link closure** — an event dirties only the touched route;
      :meth:`flush` recomputes just the flows reachable from dirty links
      through shared links (the affected connected components), leaving
      every other component's rates untouched;
    * **vectorised water-filling** — with numpy present, each closure
      solve gathers the affected rows of the persistent flow/link
      incidence arrays and runs the freeze rounds as whole-array
      ``bincount`` / ``subtract.at`` operations; per-link weight totals
      are maintained across rounds by subtraction, so a solve costs
      O(route-length) array work plus O(rounds) vector ops instead of
      O(rounds x flows x route-length) dict walks.  Without numpy the
      original scalar round loop runs instead.

    Max-min fairness decomposes over connected components of the
    flow-link incidence graph (no shared link, no interaction), so the
    closure-restricted solve yields the same allocation as the batch
    :func:`max_min_fair_rates` oracle up to float-summation order; the
    property tests pin the two together across randomized topologies.

    Iteration order is made explicit (sorted links, ascending flow ids)
    wherever it affects float accumulation, preserving the kernel's
    bit-identical-replay guarantee across processes *and* across the
    scalar/vector backends.

    Slots: every flow gets an integer *slot* (append-only; freed slots
    are reclaimed by an order-preserving compaction when the dead
    outnumber the live).  ``_vrates[slot]`` is the authoritative rate
    store in vector mode — the fabric shares this numbering for its own
    per-flow arrays and registers :attr:`on_compact` to renumber in
    lockstep.
    """

    __slots__ = (
        "_caps",
        "_flow_links",
        "_weights",
        "_link_flows",
        "_rates",
        "_dirty",
        "solves",
        "vec",
        "vec_auto",
        "on_compact",
        "_fid2slot",
        "_slot2fid",
        "_li2lk",
        "_nslots",
        "_dead_slots",
        "_vw",
        "_valive",
        "_vrates",
        "_blk0",
        "_blk1",
        "_lk2li",
        "_free_li",
        "_vcap",
        "_nlinks",
        "_ent_f",
        "_ent_l",
        "_nent",
    )

    def __init__(self, vec: Optional[bool] = None) -> None:
        #: link id -> capacity (includes per-flow virtual cap links)
        self._caps: dict[Hashable, float] = {}
        #: flow id -> tuple of link ids (virtual cap link last, if any)
        self._flow_links: dict[Hashable, tuple[Hashable, ...]] = {}
        self._weights: dict[Hashable, float] = {}
        #: link id -> set of flow ids currently crossing it
        self._link_flows: dict[Hashable, set[Hashable]] = {}
        #: fid -> rate (scalar backend only; vector mode reads ``_vrates``)
        self._rates: dict[Hashable, float] = {}
        #: links whose flow set / capacity changed since the last flush
        self._dirty: set[Hashable] = set()
        #: number of closure solves performed (perf accounting)
        self.solves = 0
        #: True when the numpy backend is active.  The default
        #: (``vec=None``) starts scalar and lets the owner call
        #: :meth:`promote` once the population justifies array overhead;
        #: ``vec=True`` activates arrays immediately (requires numpy).
        self.vec = bool(vec) and _np is not None
        #: True when :meth:`promote` may still switch this instance to
        #: the vector backend
        self.vec_auto = vec is None and _np is not None
        #: called with the kept-slot index array after a slot compaction,
        #: so array sharers (the fabric flow table) renumber in lockstep
        self.on_compact = None
        self._fid2slot: dict[Hashable, int] = {}
        #: slot -> fid (vector mode; inverse of _fid2slot, compacted in step)
        self._slot2fid: list = []
        #: link index -> link id (vector mode; inverse of _lk2li)
        self._li2lk: list = []
        self._nslots = 0
        self._dead_slots = 0
        if self.vec:
            self._alloc_arrays()
        else:
            self._vw = self._valive = self._vrates = None
            self._blk0 = self._blk1 = None
            self._vcap = self._ent_f = self._ent_l = None
        self._lk2li: dict[Hashable, int] = {}
        self._free_li: list[int] = []
        self._nlinks = 0
        self._nent = 0

    def _alloc_arrays(self) -> None:
        self._vw = _np.zeros(_SLOT_CAP0)
        self._valive = _np.zeros(_SLOT_CAP0, dtype=bool)
        self._vrates = _np.zeros(_SLOT_CAP0)
        self._blk0 = _np.zeros(_SLOT_CAP0, dtype=_np.intp)
        self._blk1 = _np.zeros(_SLOT_CAP0, dtype=_np.intp)
        self._vcap = _np.zeros(_LINK_CAP0)
        self._ent_f = _np.zeros(_ENT_CAP0, dtype=_np.intp)
        self._ent_l = _np.zeros(_ENT_CAP0, dtype=_np.intp)

    def promote(self) -> None:
        """Switch this allocator from the scalar to the vector backend.

        One-way and value-preserving: every dict structure stays
        authoritative for topology, slots are assigned in registration
        (``_flow_links`` insertion) order — the same order incremental
        ``add_flow`` would have produced — and ``_vrates`` is seeded
        from the scalar rate store, so the switch changes no observable
        rate.  No-op when numpy is absent or already in vector mode.
        """
        if self.vec or _np is None:
            return
        self.vec = True
        self.vec_auto = False
        self._alloc_arrays()
        for lk, cap in self._caps.items():
            self._li_alloc(lk, cap)
        rates = self._rates
        lk2li = self._lk2li
        for fid, route in self._flow_links.items():
            slot = self._nslots
            self._nslots += 1
            if slot >= len(self._vw):
                self._grow_slots()
            self._fid2slot[fid] = slot
            self._slot2fid.append(fid)
            self._vw[slot] = self._weights[fid]
            self._valive[slot] = True
            k = len(route)
            ne = self._nent
            if ne + k > len(self._ent_f):
                self._grow_entries(ne + k)
            if k:
                self._ent_f[ne : ne + k] = slot
                self._ent_l[ne : ne + k] = [lk2li[lk] for lk in route]
            self._blk0[slot] = ne
            self._blk1[slot] = ne + k
            self._nent = ne + k
            self._vrates[slot] = rates.get(fid, 0.0)
        self._rates = {}

    # -- array plumbing (vector backend) -------------------------------
    def slot_of(self, fid: Hashable) -> int:
        """The flow's slot in the shared per-flow arrays (vector mode)."""
        return self._fid2slot[fid]

    @property
    def nslots(self) -> int:
        """Used size of the per-flow slot arrays (vector mode)."""
        return self._nslots

    def _li_alloc(self, link: Hashable, capacity: float) -> None:
        """Assign (or update) the link's index in the capacity array."""
        li = self._lk2li.get(link)
        if li is None:
            if self._free_li:
                li = self._free_li.pop()
                self._li2lk[li] = link
            else:
                li = self._nlinks
                self._nlinks += 1
                self._li2lk.append(link)
                if li >= len(self._vcap):
                    grown = _np.zeros(2 * len(self._vcap))
                    grown[:li] = self._vcap[:li]
                    self._vcap = grown
            self._lk2li[link] = li
        self._vcap[li] = capacity

    def _grow_slots(self) -> None:
        cap = len(self._vw)
        for name in ("_vw", "_vrates"):
            grown = _np.zeros(2 * cap)
            grown[:cap] = getattr(self, name)
            setattr(self, name, grown)
        grown_b = _np.zeros(2 * cap, dtype=bool)
        grown_b[:cap] = self._valive
        self._valive = grown_b
        for name in ("_blk0", "_blk1"):
            grown_i = _np.zeros(2 * cap, dtype=_np.intp)
            grown_i[:cap] = getattr(self, name)
            setattr(self, name, grown_i)

    def _grow_entries(self, need: int) -> None:
        cap = len(self._ent_f)
        new_cap = max(need, 2 * cap)
        for name in ("_ent_f", "_ent_l"):
            grown = _np.zeros(new_cap, dtype=_np.intp)
            grown[:cap] = getattr(self, name)
            setattr(self, name, grown)

    def _compact_slots(self) -> None:
        """Drop dead slots/entries, preserving the live flows' order.

        Relative (== ascending-fid) order is what keeps the vector
        backend's float accumulation identical to the scalar one, so the
        compaction is a stable filter, never a free-list.
        """
        np = _np
        n = self._nslots
        keep = np.nonzero(self._valive[:n])[0]
        k = len(keep)
        # entries of live flows, in unchanged order
        ne = self._nent
        emask = self._valive[self._ent_f[:ne]]
        new_ent_f = self._ent_f[:ne][emask]
        new_ent_l = self._ent_l[:ne][emask]
        lens = (self._blk1[keep] - self._blk0[keep])
        nb1 = np.cumsum(lens)
        nb0 = nb1 - lens
        # renumber slots
        old2new = np.full(n, -1, dtype=np.intp)
        old2new[keep] = np.arange(k, dtype=np.intp)
        cap = max(_SLOT_CAP0, 2 * k)
        vw = np.zeros(cap)
        vrates = np.zeros(cap)
        valive = np.zeros(cap, dtype=bool)
        blk0 = np.zeros(cap, dtype=np.intp)
        blk1 = np.zeros(cap, dtype=np.intp)
        vw[:k] = self._vw[keep]
        vrates[:k] = self._vrates[keep]
        valive[:k] = True
        blk0[:k] = nb0
        blk1[:k] = nb1
        self._vw, self._vrates, self._valive = vw, vrates, valive
        self._blk0, self._blk1 = blk0, blk1
        ecap = max(_ENT_CAP0, 2 * len(new_ent_f))
        ent_f = np.zeros(ecap, dtype=np.intp)
        ent_l = np.zeros(ecap, dtype=np.intp)
        ent_f[: len(new_ent_f)] = old2new[new_ent_f]
        ent_l[: len(new_ent_l)] = new_ent_l
        self._ent_f, self._ent_l = ent_f, ent_l
        self._nent = int(len(new_ent_f))
        self._fid2slot = {
            fid: int(old2new[s]) for fid, s in self._fid2slot.items()
        }
        s2f = self._slot2fid
        self._slot2fid = [s2f[i] for i in keep.tolist()]
        self._nslots = k
        self._dead_slots = 0
        if self.on_compact is not None:
            self.on_compact(keep)

    # -- topology ------------------------------------------------------
    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register *link* or change its capacity (dirties its flows)."""
        capacity = float(capacity)
        if self._caps.get(link) == capacity:
            return
        self._caps[link] = capacity
        if self.vec:
            self._li_alloc(link, capacity)
        if self._link_flows.get(link):
            self._dirty.add(link)

    # -- flows ---------------------------------------------------------
    def add_flow(
        self,
        fid: Hashable,
        links: Iterable[Hashable],
        weight: float = 1.0,
        rate_cap: float = _INF,
    ) -> Optional[float]:
        """Add a flow; returns its rate when decidable without a solve.

        Returns the final rate for the short-circuit cases (no links, or
        no link shared with another flow) and ``None`` when the affected
        component must be re-solved — call :meth:`flush` to settle.
        """
        if fid in self._flow_links:
            raise ValueError(f"duplicate flow id {fid!r}")
        route = list(links)
        for lk in route:
            if lk not in self._caps:
                raise KeyError(f"flow {fid!r} references unknown link {lk!r}")
        if rate_cap != _INF:
            vlink = ("__cap__", fid)
            self._caps[vlink] = float(rate_cap)
            if self.vec:
                self._li_alloc(vlink, float(rate_cap))
            route.append(vlink)
        self._flow_links[fid] = tuple(route)
        self._weights[fid] = float(weight)

        slot = -1
        if self.vec:
            if self._dead_slots > 32 and self._dead_slots * 2 > self._nslots:
                self._compact_slots()
            slot = self._nslots
            self._nslots += 1
            if slot >= len(self._vw):
                self._grow_slots()
            self._fid2slot[fid] = slot
            self._slot2fid.append(fid)
            self._vw[slot] = self._weights[fid]
            self._valive[slot] = True
            k = len(route)
            ne = self._nent
            if ne + k > len(self._ent_f):
                self._grow_entries(ne + k)
            if k:
                lk2li = self._lk2li
                self._ent_f[ne : ne + k] = slot
                self._ent_l[ne : ne + k] = [lk2li[lk] for lk in route]
            self._blk0[slot] = ne
            self._blk1[slot] = ne + k
            self._nent = ne + k

        if not route:
            if self.vec:
                self._vrates[slot] = _INF
            else:
                self._rates[fid] = _INF
            return _INF

        shared = False
        for lk in route:
            peers = self._link_flows.get(lk)
            if peers is None:
                self._link_flows[lk] = {fid}
            else:
                shared = shared or bool(peers)
                peers.add(fid)
        if not shared:
            # Alone on every link: my rate is the tightest capacity and
            # nobody else's bottleneck moved.
            rate = min(self._caps[lk] for lk in route)
            if self.vec:
                self._vrates[slot] = rate
            else:
                self._rates[fid] = rate
            return rate
        if self.vec:
            self._vrates[slot] = 0.0
        else:
            self._rates[fid] = 0.0
        self._dirty.update(route)
        return None

    def remove_flow(self, fid: Hashable) -> None:
        """Remove a flow, dirtying links it shared with surviving flows."""
        route = self._flow_links.pop(fid)
        del self._weights[fid]
        if self.vec:
            slot = self._fid2slot.pop(fid)
            self._valive[slot] = False
            self._dead_slots += 1
        else:
            self._rates.pop(fid, None)
        for lk in route:
            peers = self._link_flows.get(lk)
            if peers is not None:
                peers.discard(fid)
                if peers:
                    self._dirty.add(lk)
                else:
                    del self._link_flows[lk]
        if route and route[-1] == ("__cap__", fid):
            del self._caps[route[-1]]
            if self.vec:
                li = self._lk2li.pop(route[-1])
                self._li2lk[li] = None
                self._free_li.append(li)
        self._dirty.discard(("__cap__", fid))

    # -- solving -------------------------------------------------------
    @property
    def dirty(self) -> bool:
        return bool(self._dirty)

    def rate(self, fid: Hashable) -> float:
        """Current rate of *fid* (flush first for a settled value)."""
        if self.vec:
            return float(self._vrates[self._fid2slot[fid]])
        return self._rates[fid]

    @property
    def rates(self) -> dict[Hashable, float]:
        """fid -> rate mapping (flush first for settled values).

        In vector mode this materialises a fresh dict from the rate
        array (an O(flows) convenience view for tests and inspection —
        the fabric hot path reads ``_vrates`` by slot instead).
        """
        if self.vec:
            vr = self._vrates
            return {fid: float(vr[s]) for fid, s in self._fid2slot.items()}
        return self._rates

    def flush(self, collect: bool = True) -> dict[Hashable, float]:
        """Re-solve the components reachable from dirty links.

        Returns {fid: new rate} for exactly the recomputed flows (empty
        when nothing was dirty).  Pass ``collect=False`` to skip
        building the result dict (vector-mode callers that read rates
        straight from the shared array).
        """
        if not self._dirty:
            return {}
        if self.vec:
            flows, links, slots, lis = self._closure_vec()
            self._dirty.clear()
            if not flows:
                return {}
            self.solves += 1
            nent = int((self._blk1[slots] - self._blk0[slots]).sum())
            if nent >= _VEC_MIN_ENTRIES:
                rates_f = self._solve_vec(flows, links, slots, lis)
                if not collect:
                    return {}
                return dict(zip(flows, rates_f.tolist()))
            # Small component: the dict walk beats numpy call overhead
            # (bit-identical results, so the switch is invisible).
            updated = self._solve(flows, links)
            vrates = self._vrates
            fid2slot = self._fid2slot
            for fid, r in updated.items():
                vrates[fid2slot[fid]] = r
            return updated if collect else {}
        flows, links = self._closure()
        self._dirty.clear()
        if not flows:
            return {}
        self.solves += 1
        updated = self._solve(flows, links)
        self._rates.update(updated)
        return updated

    def _closure(self) -> tuple[list[Hashable], list[Hashable]]:
        """Flows and links transitively connected to any dirty link."""
        link_flows = self._link_flows
        flow_links = self._flow_links
        seen_links: set[Hashable] = set()
        seen_flows: set[Hashable] = set()
        stack = [lk for lk in self._dirty if lk in link_flows]
        seen_links.update(stack)
        while stack:
            lk = stack.pop()
            for fid in link_flows[lk]:
                if fid in seen_flows:
                    continue
                seen_flows.add(fid)
                for nlk in flow_links[fid]:
                    if nlk not in seen_links:
                        seen_links.add(nlk)
                        stack.append(nlk)
        # Deterministic processing order regardless of set/hash history:
        # flow ids are sortable ints in the fabric; link ids are strings
        # or ("__cap__", fid) tuples, ordered by repr for mixed types.
        flows = sorted(seen_flows)
        links = sorted(seen_links, key=repr)
        return flows, links

    def _closure_vec(self):
        """Vectorised :meth:`_closure` (numpy backend).

        Runs the alternating flow/link reachability fixpoint as boolean
        mask passes over the global entry arrays instead of a Python BFS
        over sets — O(rounds · live entries) numpy work, with rounds
        bounded by the component's bipartite diameter (tiny in practice).
        Returns ``(flows, links, slots, lis)`` where *flows*/*links* are
        the exact lists :meth:`_closure` would return (same sets, same
        sort) and *slots*/*lis* are the matching index arrays, saving the
        solver's per-call dict lookups.
        """
        np = _np
        link_flows = self._link_flows
        lk2li = self._lk2li
        seed = [lk2li[lk] for lk in self._dirty if lk in link_flows]
        if not seed:
            return [], [], None, None
        ne = self._nent
        ent_f = self._ent_f[:ne]
        # Entries of removed flows linger until compaction (and their
        # freed cap-link indices may have been reused), so mask to live
        # flows before any reachability pass.
        live = self._valive[ent_f]
        ent_f = ent_f[live]
        ent_l = self._ent_l[:ne][live]
        fmask = np.zeros(self._nslots, dtype=bool)
        lmask = np.zeros(self._nlinks, dtype=bool)
        lmask[seed] = True
        while True:
            newf = lmask[ent_l] & ~fmask[ent_f]
            if not newf.any():
                break
            fmask[ent_f[newf]] = True
            newl = fmask[ent_f] & ~lmask[ent_l]
            if not newl.any():
                break
            lmask[ent_l[newl]] = True
        slots = np.nonzero(fmask)[0]
        lis = np.nonzero(lmask)[0]
        # Match the scalar closure's deterministic output order: flows
        # ascending by fid, links by repr.  Slot order is registration
        # order, which normally *is* fid order, but reorder defensively.
        s2f = self._slot2fid
        fids = [s2f[s] for s in slots.tolist()]
        order = sorted(range(len(fids)), key=fids.__getitem__)
        if order != list(range(len(order))):
            slots = slots[np.array(order, dtype=np.intp)]
            fids = [fids[i] for i in order]
        l2k = self._li2lk
        keys = [l2k[i] for i in lis.tolist()]
        korder = sorted(range(len(keys)), key=lambda i: repr(keys[i]))
        if korder != list(range(len(korder))):
            lis = lis[np.array(korder, dtype=np.intp)]
            keys = [keys[i] for i in korder]
        return fids, keys, slots, lis

    def _solve_vec(
        self,
        flows: Sequence[Hashable],
        links: Sequence[Hashable],
        slots=None,
        lis=None,
    ):
        """Vectorised water-filling over one closure (numpy backend).

        Mirrors :meth:`_solve` operation-for-operation: per-link weight
        totals accumulate in ascending-flow order (``bincount`` /
        ``subtract.at`` walk entries flow-major), subtraction clamps
        compose to the same final values, and saturation reuses the
        exact share divisions — so results are bit-identical to the
        scalar backend whenever entry order matches ascending fid order
        (always true for the fabric's monotonically assigned flow ids).
        """
        np = _np
        if slots is None:
            fid2slot = self._fid2slot
            slots = np.array([fid2slot[f] for f in flows], dtype=np.intp)
            lis = np.array([self._lk2li[lk] for lk in links], dtype=np.intp)
        F = len(slots)
        L = len(lis)
        # Gather the closure flows' entry rows (per-flow contiguous
        # blocks; every closure flow crosses >= 1 link so lens >= 1).
        b0 = self._blk0[slots]
        lens = self._blk1[slots] - b0
        E = int(lens.sum())
        cl = np.cumsum(lens)
        idx = np.ones(E, dtype=np.intp)
        idx[0] = b0[0]
        if F > 1:
            idx[cl[:-1]] = b0[1:] - (b0[:-1] + lens[:-1] - 1)
        idx = np.cumsum(idx)
        ent_lf = np.repeat(np.arange(F, dtype=np.intp), lens)
        glob2loc = np.empty(len(self._vcap), dtype=np.intp)
        glob2loc[lis] = np.arange(L, dtype=np.intp)
        ent_ll = glob2loc[self._ent_l[idx]]

        w_f = self._vw[slots]
        remaining = self._vcap[lis].copy()
        tot_w = np.bincount(ent_ll, weights=w_f[ent_lf], minlength=L)
        n_on = np.bincount(ent_ll, minlength=L)

        rates_f = np.empty(F)
        active = np.ones(F, dtype=bool)
        shares = np.empty(L)
        while True:
            valid = (n_on > 0) & (tot_w > 0.0)
            shares.fill(_INF)
            np.divide(remaining, tot_w, out=shares, where=valid)
            share = shares.min()
            if share == _INF:
                rates_f[active] = _INF
                break
            cutoff = share * (1 + 1e-12)
            sat = valid & (shares <= cutoff)
            fe = active[ent_lf] & sat[ent_ll]
            frozen = np.zeros(F, dtype=bool)
            frozen[ent_lf[fe]] = True
            if not frozen.any():  # numerical corner: freeze everything
                frozen = active.copy()
            r_f = share * w_f
            rates_f[frozen] = r_f[frozen]
            fe2 = frozen[ent_lf]
            ll = ent_ll[fe2]
            np.subtract.at(remaining, ll, r_f[ent_lf[fe2]])
            np.maximum(remaining, 0.0, out=remaining)
            np.subtract.at(tot_w, ll, w_f[ent_lf[fe2]])
            n_on = n_on - np.bincount(ll, minlength=L)
            active &= ~frozen
            if not active.any():
                break
        self._vrates[slots] = rates_f
        return rates_f

    def _solve(
        self, flows: Sequence[Hashable], links: Sequence[Hashable]
    ) -> dict[Hashable, float]:
        """Water-fill one closure with incremental per-round bookkeeping."""
        caps = self._caps
        weights = self._weights
        flow_links = self._flow_links
        link_flows = self._link_flows

        remaining: dict[Hashable, float] = {lk: caps[lk] for lk in links}
        tot_w: dict[Hashable, float] = {}
        #: exact count of unfrozen flows per link — the float weight total
        #: is maintained by subtraction and may keep an epsilon residue
        #: after its last flow froze, which must not masquerade as a
        #: zero-share bottleneck
        n_on: dict[Hashable, int] = {}
        for lk in links:
            users = link_flows[lk]
            t = 0.0
            # ascending-fid accumulation: the order the vector backend's
            # bincount reproduces, keeping the two backends bit-identical
            for fid in sorted(users):
                t += weights[fid]
            tot_w[lk] = t
            n_on[lk] = len(users)

        rates: dict[Hashable, float] = {}
        active: set[Hashable] = set(flows)
        while active:
            share = _INF
            for lk, t in tot_w.items():
                if n_on[lk] > 0 and t > 0.0:
                    s = remaining[lk] / t
                    if s < share:
                        share = s
            if share == _INF:
                for fid in active:
                    rates[fid] = _INF
                break
            cutoff = share * (1 + 1e-12)
            saturated = [
                lk for lk, t in tot_w.items()
                if n_on[lk] > 0 and t > 0.0 and remaining[lk] / t <= cutoff
            ]
            frozen: set[Hashable] = set()
            for lk in saturated:
                for fid in link_flows[lk]:
                    if fid in active:
                        frozen.add(fid)
            if not frozen:  # numerical corner: freeze everything
                frozen = set(active)
            for fid in sorted(frozen):
                w = weights[fid]
                r = share * w
                rates[fid] = r
                for lk in flow_links[fid]:
                    rem = remaining[lk] - r
                    remaining[lk] = rem if rem > 0.0 else 0.0
                    tot_w[lk] -= w
                    n_on[lk] -= 1
            active -= frozen
        return rates
