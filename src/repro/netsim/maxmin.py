"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each traversing a set of capacitated links, the
max-min fair allocation repeatedly finds the most-constrained link (the one
whose equal share per unfrozen flow is smallest), freezes every flow through
it at that share, removes the consumed capacity, and iterates.

The solver is a pure function so it can be property-tested in isolation;
the fabric calls it on every flow arrival/departure.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

__all__ = ["max_min_fair_rates"]


def max_min_fair_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    link_capacity: Mapping[Hashable, float],
    flow_weight: Mapping[Hashable, float] | None = None,
    rate_cap: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Compute weighted max-min fair rates.

    Parameters
    ----------
    flow_links:
        flow id -> iterable of link ids the flow traverses.  A flow with no
        links (an intra-node copy) is only bounded by its ``rate_cap``.
    link_capacity:
        link id -> capacity (bytes/s).  ``inf`` allowed.
    flow_weight:
        Optional flow id -> weight (default 1.0).  A flow with weight w gets
        w shares at each bottleneck.
    rate_cap:
        Optional flow id -> absolute rate ceiling (e.g. a tape drive's
        native streaming rate).  Modelled as a private virtual link.

    Returns
    -------
    dict mapping flow id -> allocated rate (bytes/s).

    Invariants (property-tested):
      * no link's total allocated rate exceeds its capacity (within 1e-6)
      * every flow is bottlenecked: it crosses at least one saturated link,
        or sits at its rate cap, or is unconstrained (infinite rate)
    """
    weights = dict(flow_weight or {})
    caps: dict[Hashable, float] = {k: float(v) for k, v in link_capacity.items()}

    # Translate per-flow rate caps into private virtual links.
    links_of: dict[Hashable, list[Hashable]] = {}
    for fid, links in flow_links.items():
        lst = list(links)
        if rate_cap and fid in rate_cap and rate_cap[fid] != float("inf"):
            vlink = ("__cap__", fid)
            caps[vlink] = float(rate_cap[fid])
            lst.append(vlink)
        links_of[fid] = lst

    unknown = {
        lk for lst in links_of.values() for lk in lst if lk not in caps
    }
    if unknown:
        raise KeyError(f"flows reference links with no capacity: {sorted(map(str, unknown))}")

    rates: dict[Hashable, float] = {}
    active = set(links_of)
    remaining = dict(caps)

    # flows per link (only unfrozen flows counted each round)
    while active:
        # Weighted share each link could give per unit weight.
        share_per_link: dict[Hashable, float] = {}
        link_users: dict[Hashable, float] = {}
        for fid in active:
            w = weights.get(fid, 1.0)
            for lk in links_of[fid]:
                link_users[lk] = link_users.get(lk, 0.0) + w
        for lk, tot_w in link_users.items():
            cap = remaining[lk]
            share_per_link[lk] = cap / tot_w if tot_w > 0 else float("inf")

        if not share_per_link:
            # No flow crosses any link: all remaining flows unconstrained.
            for fid in active:
                rates[fid] = float("inf")
            break

        bottleneck_share = min(share_per_link.values())
        if bottleneck_share == float("inf"):
            for fid in active:
                rates[fid] = float("inf")
            break

        saturated = {
            lk for lk, s in share_per_link.items() if s <= bottleneck_share * (1 + 1e-12)
        }
        frozen = {
            fid
            for fid in active
            if any(lk in saturated for lk in links_of[fid])
        }
        if not frozen:  # numerical corner: freeze everything at the share
            frozen = set(active)
        for fid in frozen:
            w = weights.get(fid, 1.0)
            r = bottleneck_share * w
            rates[fid] = r
            for lk in links_of[fid]:
                remaining[lk] = max(0.0, remaining[lk] - r)
        active -= frozen

    return rates
