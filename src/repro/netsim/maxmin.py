"""Max-min fair rate allocation (progressive filling / water-filling).

Given a set of flows, each traversing a set of capacitated links, the
max-min fair allocation repeatedly finds the most-constrained link (the one
whose equal share per unfrozen flow is smallest), freezes every flow through
it at that share, removes the consumed capacity, and iterates.

The solver is a pure function so it can be property-tested in isolation;
the fabric calls it on every flow arrival/departure.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, Optional, Sequence

__all__ = ["MaxMinAllocator", "max_min_fair_rates"]


def max_min_fair_rates(
    flow_links: Mapping[Hashable, Sequence[Hashable]],
    link_capacity: Mapping[Hashable, float],
    flow_weight: Mapping[Hashable, float] | None = None,
    rate_cap: Mapping[Hashable, float] | None = None,
) -> dict[Hashable, float]:
    """Compute weighted max-min fair rates.

    Parameters
    ----------
    flow_links:
        flow id -> iterable of link ids the flow traverses.  A flow with no
        links (an intra-node copy) is only bounded by its ``rate_cap``.
    link_capacity:
        link id -> capacity (bytes/s).  ``inf`` allowed.
    flow_weight:
        Optional flow id -> weight (default 1.0).  A flow with weight w gets
        w shares at each bottleneck.
    rate_cap:
        Optional flow id -> absolute rate ceiling (e.g. a tape drive's
        native streaming rate).  Modelled as a private virtual link.

    Returns
    -------
    dict mapping flow id -> allocated rate (bytes/s).

    Invariants (property-tested):
      * no link's total allocated rate exceeds its capacity (within 1e-6)
      * every flow is bottlenecked: it crosses at least one saturated link,
        or sits at its rate cap, or is unconstrained (infinite rate)
    """
    weights = dict(flow_weight or {})
    caps: dict[Hashable, float] = {k: float(v) for k, v in link_capacity.items()}

    # Translate per-flow rate caps into private virtual links.
    links_of: dict[Hashable, list[Hashable]] = {}
    for fid, links in flow_links.items():
        lst = list(links)
        if rate_cap and fid in rate_cap and rate_cap[fid] != float("inf"):
            vlink = ("__cap__", fid)
            caps[vlink] = float(rate_cap[fid])
            lst.append(vlink)
        links_of[fid] = lst

    unknown = {
        lk for lst in links_of.values() for lk in lst if lk not in caps
    }
    if unknown:
        raise KeyError(f"flows reference links with no capacity: {sorted(map(str, unknown))}")

    rates: dict[Hashable, float] = {}
    active = set(links_of)
    remaining = dict(caps)

    # flows per link (only unfrozen flows counted each round)
    while active:
        # Weighted share each link could give per unit weight.
        share_per_link: dict[Hashable, float] = {}
        link_users: dict[Hashable, float] = {}
        for fid in active:
            w = weights.get(fid, 1.0)
            for lk in links_of[fid]:
                link_users[lk] = link_users.get(lk, 0.0) + w
        for lk, tot_w in link_users.items():
            cap = remaining[lk]
            share_per_link[lk] = cap / tot_w if tot_w > 0 else float("inf")

        if not share_per_link:
            # No flow crosses any link: all remaining flows unconstrained.
            for fid in active:
                rates[fid] = float("inf")
            break

        bottleneck_share = min(share_per_link.values())
        if bottleneck_share == float("inf"):
            for fid in active:
                rates[fid] = float("inf")
            break

        saturated = {
            lk for lk, s in share_per_link.items() if s <= bottleneck_share * (1 + 1e-12)
        }
        frozen = {
            fid
            for fid in active
            if any(lk in saturated for lk in links_of[fid])
        }
        if not frozen:  # numerical corner: freeze everything at the share
            frozen = set(active)
        for fid in frozen:
            w = weights.get(fid, 1.0)
            r = bottleneck_share * w
            rates[fid] = r
            for lk in links_of[fid]:
                remaining[lk] = max(0.0, remaining[lk] - r)
        active -= frozen

    return rates


_INF = float("inf")


class MaxMinAllocator:
    """Incremental weighted max-min fair allocator.

    Maintains the flow/link incidence structure across events so the
    fabric does not rebuild the whole problem on every flow arrival,
    departure or capacity change.  Three mechanisms make it fast:

    * **short-circuits** — a flow whose links carry no other flow (and
      the cap-only / link-less flows) gets its rate in O(route length)
      with no global solve, and provably cannot move anyone else's
      bottleneck;
    * **dirty-link closure** — an event dirties only the touched route;
      :meth:`flush` recomputes just the flows reachable from dirty links
      through shared links (the affected connected components), leaving
      every other component's rates untouched;
    * **incremental water-filling** — within the closure, per-link
      weight totals are maintained across rounds by subtracting frozen
      flows instead of re-scanning all active flows each round, so a
      solve costs O(route-length + rounds x links) instead of
      O(rounds x flows x route-length).

    Max-min fairness decomposes over connected components of the
    flow-link incidence graph (no shared link, no interaction), so the
    closure-restricted solve yields the same allocation as the batch
    :func:`max_min_fair_rates` oracle up to float-summation order; the
    property tests pin the two together across randomized topologies.

    Iteration order is made explicit (sorted links, integer flow ids)
    wherever it affects float accumulation, preserving the kernel's
    bit-identical-replay guarantee across processes.
    """

    __slots__ = (
        "_caps",
        "_flow_links",
        "_weights",
        "_link_flows",
        "_rates",
        "_dirty",
        "solves",
    )

    def __init__(self) -> None:
        #: link id -> capacity (includes per-flow virtual cap links)
        self._caps: dict[Hashable, float] = {}
        #: flow id -> tuple of link ids (virtual cap link last, if any)
        self._flow_links: dict[Hashable, tuple[Hashable, ...]] = {}
        self._weights: dict[Hashable, float] = {}
        #: link id -> set of flow ids currently crossing it
        self._link_flows: dict[Hashable, set[Hashable]] = {}
        self._rates: dict[Hashable, float] = {}
        #: links whose flow set / capacity changed since the last flush
        self._dirty: set[Hashable] = set()
        #: number of closure solves performed (perf accounting)
        self.solves = 0

    # -- topology ------------------------------------------------------
    def set_capacity(self, link: Hashable, capacity: float) -> None:
        """Register *link* or change its capacity (dirties its flows)."""
        capacity = float(capacity)
        if self._caps.get(link) == capacity:
            return
        self._caps[link] = capacity
        if self._link_flows.get(link):
            self._dirty.add(link)

    # -- flows ---------------------------------------------------------
    def add_flow(
        self,
        fid: Hashable,
        links: Iterable[Hashable],
        weight: float = 1.0,
        rate_cap: float = _INF,
    ) -> Optional[float]:
        """Add a flow; returns its rate when decidable without a solve.

        Returns the final rate for the short-circuit cases (no links, or
        no link shared with another flow) and ``None`` when the affected
        component must be re-solved — call :meth:`flush` to settle.
        """
        if fid in self._flow_links:
            raise ValueError(f"duplicate flow id {fid!r}")
        route = list(links)
        for lk in route:
            if lk not in self._caps:
                raise KeyError(f"flow {fid!r} references unknown link {lk!r}")
        if rate_cap != _INF:
            vlink = ("__cap__", fid)
            self._caps[vlink] = float(rate_cap)
            route.append(vlink)
        self._flow_links[fid] = tuple(route)
        self._weights[fid] = float(weight)

        if not route:
            self._rates[fid] = _INF
            return _INF

        shared = False
        for lk in route:
            peers = self._link_flows.get(lk)
            if peers is None:
                self._link_flows[lk] = {fid}
            else:
                shared = shared or bool(peers)
                peers.add(fid)
        if not shared:
            # Alone on every link: my rate is the tightest capacity and
            # nobody else's bottleneck moved.
            rate = min(self._caps[lk] for lk in route)
            self._rates[fid] = rate
            return rate
        self._rates[fid] = 0.0
        self._dirty.update(route)
        return None

    def remove_flow(self, fid: Hashable) -> None:
        """Remove a flow, dirtying links it shared with surviving flows."""
        route = self._flow_links.pop(fid)
        del self._weights[fid]
        self._rates.pop(fid, None)
        for lk in route:
            peers = self._link_flows.get(lk)
            if peers is not None:
                peers.discard(fid)
                if peers:
                    self._dirty.add(lk)
                else:
                    del self._link_flows[lk]
        if route and route[-1] == ("__cap__", fid):
            del self._caps[route[-1]]
        self._dirty.discard(("__cap__", fid))

    # -- solving -------------------------------------------------------
    @property
    def dirty(self) -> bool:
        return bool(self._dirty)

    def rate(self, fid: Hashable) -> float:
        """Current rate of *fid* (flush first for a settled value)."""
        return self._rates[fid]

    @property
    def rates(self) -> dict[Hashable, float]:
        """Live fid -> rate mapping (flush first for settled values)."""
        return self._rates

    def flush(self) -> dict[Hashable, float]:
        """Re-solve the components reachable from dirty links.

        Returns {fid: new rate} for exactly the recomputed flows (empty
        when nothing was dirty).
        """
        if not self._dirty:
            return {}
        flows, links = self._closure()
        self._dirty.clear()
        if not flows:
            return {}
        self.solves += 1
        updated = self._solve(flows, links)
        self._rates.update(updated)
        return updated

    def _closure(self) -> tuple[list[Hashable], list[Hashable]]:
        """Flows and links transitively connected to any dirty link."""
        link_flows = self._link_flows
        flow_links = self._flow_links
        seen_links: set[Hashable] = set()
        seen_flows: set[Hashable] = set()
        stack = [lk for lk in self._dirty if lk in link_flows]
        seen_links.update(stack)
        while stack:
            lk = stack.pop()
            for fid in link_flows[lk]:
                if fid in seen_flows:
                    continue
                seen_flows.add(fid)
                for nlk in flow_links[fid]:
                    if nlk not in seen_links:
                        seen_links.add(nlk)
                        stack.append(nlk)
        # Deterministic processing order regardless of set/hash history:
        # flow ids are sortable ints in the fabric; link ids are strings
        # or ("__cap__", fid) tuples, ordered by repr for mixed types.
        flows = sorted(seen_flows)
        links = sorted(seen_links, key=repr)
        return flows, links

    def _solve(
        self, flows: Sequence[Hashable], links: Sequence[Hashable]
    ) -> dict[Hashable, float]:
        """Water-fill one closure with incremental per-round bookkeeping."""
        caps = self._caps
        weights = self._weights
        flow_links = self._flow_links
        link_flows = self._link_flows

        remaining: dict[Hashable, float] = {lk: caps[lk] for lk in links}
        tot_w: dict[Hashable, float] = {}
        #: exact count of unfrozen flows per link — the float weight total
        #: is maintained by subtraction and may keep an epsilon residue
        #: after its last flow froze, which must not masquerade as a
        #: zero-share bottleneck
        n_on: dict[Hashable, int] = {}
        for lk in links:
            users = link_flows[lk]
            t = 0.0
            for fid in users:
                t += weights[fid]
            tot_w[lk] = t
            n_on[lk] = len(users)

        rates: dict[Hashable, float] = {}
        active: set[Hashable] = set(flows)
        while active:
            share = _INF
            for lk, t in tot_w.items():
                if n_on[lk] > 0 and t > 0.0:
                    s = remaining[lk] / t
                    if s < share:
                        share = s
            if share == _INF:
                for fid in active:
                    rates[fid] = _INF
                break
            cutoff = share * (1 + 1e-12)
            saturated = [
                lk for lk, t in tot_w.items()
                if n_on[lk] > 0 and t > 0.0 and remaining[lk] / t <= cutoff
            ]
            frozen: set[Hashable] = set()
            for lk in saturated:
                for fid in link_flows[lk]:
                    if fid in active:
                        frozen.add(fid)
            if not frozen:  # numerical corner: freeze everything
                frozen = set(active)
            for fid in sorted(frozen):
                w = weights[fid]
                r = share * w
                rates[fid] = r
                for lk in flow_links[fid]:
                    rem = remaining[lk] - r
                    remaining[lk] = rem if rem > 0.0 else 0.0
                    tot_w[lk] -= w
                    n_on[lk] -= 1
            active -= frozen
        return rates
