"""Multiple TSM servers behind one namespace (§6.4's asked-for feature).

The paper: "Having a single TSM server creates a single point of a
failure... and a limitation when we need to scale beyond what a single
TSM server can provide... native support for multiple TSM servers would
be beneficial to maintain a single namespace."

:class:`ShardedTsmStore` provides exactly that surface: it routes each
path to one of N member servers (stable hash, so a file's objects always
live on one server) while presenting the same API the HSM manager and
PFTool consume — ``open_session``, ``store_objects``,
``store_aggregate``, ``retrieve_objects``, ``locate``, ``delete_object``,
``objects_for_path``, ``export_rows``.

Object ids are made globally unique by giving each member server a
disjoint id range, so the tape index and the synchronous deleter work
unchanged.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence

from repro.sim import AllOf, Environment, Event, SimulationError
from repro.tsm.server import StoredObject, TsmServer

__all__ = ["ShardedTsmSession", "ShardedTsmStore"]

#: id-space stride per member server (disjoint object-id ranges)
OID_STRIDE = 10**12


class ShardedTsmSession:
    """A client session fanned out across the member servers."""

    def __init__(self, store: "ShardedTsmStore", client_node: str,
                 lan_free: bool = True) -> None:
        self.store = store
        self.client_node = client_node
        self.lan_free = lan_free
        self._member_sessions = [
            srv.open_session(client_node, lan_free) for srv in store.servers
        ]

    def session_for_shard(self, shard: int):
        return self._member_sessions[shard]

    def __repr__(self) -> str:
        return f"<ShardedTsmSession {self.client_node} x{len(self._member_sessions)}>"


class ShardedTsmStore:
    """N TSM servers, one namespace.

    Parameters
    ----------
    env:
        Simulation environment.
    servers:
        Member servers.  Their object-id counters are re-based onto
        disjoint ranges at construction.
    """

    def __init__(self, env: Environment, servers: Sequence[TsmServer]) -> None:
        if not servers:
            raise SimulationError("sharded store needs at least one server")
        self.env = env
        self.servers = list(servers)
        for idx, srv in enumerate(self.servers):
            srv._oid = itertools.count(1 + idx * OID_STRIDE)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def shard_of_path(self, path: str) -> int:
        # stable, cheap, spreads directories: fnv-style over the path
        h = 2166136261
        for ch in path:
            h = ((h ^ ord(ch)) * 16777619) & 0xFFFFFFFF
        return h % len(self.servers)

    def shard_of_object(self, object_id: int) -> int:
        shard = (object_id - 1) // OID_STRIDE
        if not (0 <= shard < len(self.servers)):
            raise SimulationError(f"object id {object_id} outside shard ranges")
        return shard

    def server_for_path(self, path: str) -> TsmServer:
        return self.servers[self.shard_of_path(path)]

    # ------------------------------------------------------------------
    # the TsmServer surface
    # ------------------------------------------------------------------
    def open_session(self, client_node: str, lan_free: bool = True):
        return ShardedTsmSession(self, client_node, lan_free)

    def store_objects(
        self,
        session: ShardedTsmSession,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        """Split the batch by shard and store on every shard in parallel
        (each shard holds its own drive — the scalability win)."""
        done = self.env.event()
        buckets: dict[int, list[tuple[str, int]]] = {}
        for path, nbytes in items:
            buckets.setdefault(self.shard_of_path(path), []).append((path, nbytes))

        def _proc():
            evs = [
                self.servers[shard].store_objects(
                    session.session_for_shard(shard), filespace, batch,
                    collocation_group,
                )
                for shard, batch in sorted(buckets.items())
            ]
            receipts: list[StoredObject] = []
            if evs:
                got = yield AllOf(self.env, evs)
                for ev in evs:
                    receipts.extend(got[ev])
            done.succeed(receipts)

        self.env.process(_proc(), name="sharded-store")
        return done

    def store_aggregate(
        self,
        session: ShardedTsmSession,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        """Aggregates must stay on one shard (one tape object); route the
        whole bundle by its first member's path."""
        done = self.env.event()
        items = list(items)
        if not items:
            done.succeed([])
            return done
        shard = self.shard_of_path(items[0][0])

        def _proc():
            receipts = yield self.servers[shard].store_aggregate(
                session.session_for_shard(shard), filespace, items,
                collocation_group,
            )
            done.succeed(receipts)

        self.env.process(_proc(), name="sharded-store-agg")
        return done

    def retrieve_objects(
        self, session: ShardedTsmSession, object_ids: Sequence[int]
    ) -> Event:
        """Group by owning shard, preserve the caller's order per shard
        (tape ordering is per-volume and volumes never span shards)."""
        done = self.env.event()
        buckets: dict[int, list[int]] = {}
        for oid in object_ids:
            buckets.setdefault(self.shard_of_object(oid), []).append(oid)

        def _proc():
            evs = [
                self.servers[shard].retrieve_objects(
                    session.session_for_shard(shard), ids
                )
                for shard, ids in sorted(buckets.items())
            ]
            delivered: list[StoredObject] = []
            if evs:
                got = yield AllOf(self.env, evs)
                for ev in evs:
                    delivered.extend(got[ev])
            done.succeed(delivered)

        self.env.process(_proc(), name="sharded-retrieve")
        return done

    def locate(self, object_id: int) -> Optional[StoredObject]:
        return self.servers[self.shard_of_object(object_id)].locate(object_id)

    def delete_object(self, object_id: int) -> Event:
        return self.servers[self.shard_of_object(object_id)].delete_object(object_id)

    def objects_for_path(self, filespace: str, path: str) -> list[StoredObject]:
        return self.server_for_path(path).objects_for_path(filespace, path)

    def export_rows(self) -> Iterator[dict]:
        for srv in self.servers:
            yield from srv.export_rows()

    # ------------------------------------------------------------------
    @property
    def objects(self):  # parity helper for len()-style introspection
        class _Union:
            def __init__(self, servers):
                self._servers = servers

            def __len__(self) -> int:
                return sum(len(s.objects) for s in self._servers)

        return _Union(self.servers)

    @property
    def transactions(self) -> int:
        return sum(s.transactions for s in self.servers)

    def __repr__(self) -> str:
        return f"<ShardedTsmStore servers={len(self.servers)} objects={len(self.objects)}>"
