"""TSM (Tivoli Storage Manager) server model.

The back-end archive product: an object database over every stored file,
storage-pool/volume management with co-location, and two data paths —

* **LAN**: all data funnels through the TSM server's network interface
  (the scalability bottleneck the paper calls out in §4.2.2);
* **LAN-free**: clients stream straight to SAN-attached tape drives while
  only metadata touches the server, which is what makes *parallel* tape
  movement possible (Figure 6).

Also implements **aggregation** (bundling small files into one tape
object — the §6.1 fix TSM's backup client has but migration lacked) and
the export hook feeding :class:`repro.tapedb.TsmDbExporter`.
"""

from repro.tsm.server import StoredObject, TsmServer, TsmSession
from repro.tsm.shard import ShardedTsmSession, ShardedTsmStore

__all__ = [
    "ShardedTsmSession",
    "ShardedTsmStore",
    "StoredObject",
    "TsmServer",
    "TsmSession",
]
