"""The TSM server: object DB, sessions, LAN vs LAN-free data movement.

Model scope (matching what the paper exercises):

* every store/retrieve/delete is a **metadata transaction** on the single
  server (bounded concurrency + per-transaction latency — the "single TSM
  server" limitation of §6.4);
* stores pick an output volume honouring **co-location groups**, acquire
  a drive from the library, and stream data;
* **LAN-free** sessions stream client -> drive over the SAN; plain LAN
  sessions relay through the server node, whose single NIC then becomes
  the aggregate bottleneck;
* **aggregation**: many small files can be stored as one tape object
  (one transaction, one backhitch) with member offsets recorded — the
  §6.1 fix;
* the object DB rows are exportable for the MySQL-substitute index.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Optional, Sequence

from repro.sim import Environment, Event, Resource, SimulationError
from repro.tapesim import TapeExtent, TapeLibrary
from repro.tapedb.engine import Table

__all__ = ["StoredObject", "TsmServer", "TsmSession"]


@dataclass(frozen=True)
class StoredObject:
    """Receipt for one object on tape."""

    object_id: int
    filespace: str
    path: str
    nbytes: int
    volume: str
    seq: int
    #: aggregate container id when this row is a member of an aggregate
    aggregate_id: Optional[int] = None
    #: byte offset inside the aggregate
    offset: int = 0


class TsmSession:
    """A client session (one per node in practice).

    ``lan_free=True`` gives the direct SAN data path; otherwise data is
    relayed through the server node.
    """

    def __init__(self, server: "TsmServer", client_node: str, lan_free: bool = True):
        self.server = server
        self.client_node = client_node
        self.lan_free = lan_free

    # Convenience passthroughs -------------------------------------------------
    def store(
        self,
        filespace: str,
        path: str,
        nbytes: int,
        collocation_group: Optional[str] = None,
    ) -> Event:
        return self.server.store_objects(
            self, filespace, [(path, nbytes)], collocation_group
        )

    def store_many(
        self,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        return self.server.store_objects(self, filespace, items, collocation_group)

    def store_aggregate(
        self,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        return self.server.store_aggregate(self, filespace, items, collocation_group)

    def retrieve(self, object_id: int) -> Event:
        return self.server.retrieve_objects(self, [object_id])

    def retrieve_many(self, object_ids: Sequence[int]) -> Event:
        return self.server.retrieve_objects(self, object_ids)

    def __repr__(self) -> str:
        mode = "LAN-free" if self.lan_free else "LAN"
        return f"<TsmSession {self.client_node} {mode}>"


class TsmServer:
    """The single archive/backup server instance.

    Parameters
    ----------
    env:
        Simulation environment.
    library:
        The tape library it owns.
    server_node:
        Fabric node name of the server (for LAN data relays).  May be
        None when the library has no fabric (pure-logic tests).
    txn_time:
        Metadata transaction latency (seconds).
    txn_concurrency:
        Concurrent metadata transactions the DB sustains.
    """

    def __init__(
        self,
        env: Environment,
        library: TapeLibrary,
        server_node: Optional[str] = None,
        txn_time: float = 0.005,
        txn_concurrency: int = 32,
    ) -> None:
        self.env = env
        self.library = library
        self.server_node = server_node
        self.txn_time = txn_time
        self._txns = Resource(env, capacity=txn_concurrency)
        self._oid = itertools.count(1)
        self._agg_id = itertools.count(1)
        self.objects = Table(
            "tsm_objects",
            columns=(
                "object_id",
                "filespace",
                "path",
                "nbytes",
                "volume",
                "seq",
                "aggregate_id",
                "offset",
                "active",
            ),
            primary_key="object_id",
        )
        self.objects.create_index("by_path", ("filespace", "path"))
        #: aggregate container id -> tape object id holding it
        self._aggregates: dict[int, int] = {}
        #: fault-injection hook: called as ``hook(op, object_id)`` per
        #: retrieve; a returned exception fails that retrieve (see
        #: :mod:`repro.faults`)
        self.fault_hook: Optional[Callable[[str, Any], Optional[BaseException]]] = None
        # stats
        self.transactions = 0
        self.bytes_stored = 0.0
        self.bytes_retrieved = 0.0
        self.faults_injected = 0

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def open_session(self, client_node: str, lan_free: bool = True) -> TsmSession:
        return TsmSession(self, client_node, lan_free)

    # ------------------------------------------------------------------
    # metadata transactions
    # ------------------------------------------------------------------
    def _txn(self) -> Iterable[Event]:
        with self._txns.request() as req:
            yield req
            yield self.env.timeout(self.txn_time)
        self.transactions += 1

    # ------------------------------------------------------------------
    # data path helpers
    # ------------------------------------------------------------------
    def _data_source_node(self, session: TsmSession) -> str:
        """Node the tape drive sees as its I/O peer."""
        if session.lan_free or self.server_node is None:
            return session.client_node
        return self.server_node

    def _lan_relay(
        self, session: TsmSession, nbytes: int, to_server: bool
    ) -> Optional[Event]:
        """Extra LAN hop for non-LAN-free sessions (client <-> server)."""
        if session.lan_free or self.server_node is None:
            return None
        fab = self.library.drives[0].fabric
        if fab is None or session.client_node == self.server_node:
            return None
        if to_server:
            return fab.transfer(session.client_node, self.server_node, nbytes)
        return fab.transfer(self.server_node, session.client_node, nbytes)

    # ------------------------------------------------------------------
    # store
    # ------------------------------------------------------------------
    def store_objects(
        self,
        session: TsmSession,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        """Store each item as its own tape object (one transaction per
        file — the §6.1 behaviour).  Holds one drive for the batch.

        Event fires with ``list[StoredObject]``.
        """
        items = list(items)
        done = self.env.event()
        if not items:
            done.succeed([])
            return done

        def _proc():
            try:
                yield from _body()
            except SimulationError as exc:
                # deliver the failure to the caller; a crashed server
                # process would wedge every rank waiting on this event
                if not done.triggered:
                    done.fail(exc)

        def _body():
            receipts: list[StoredObject] = []
            idx = 0
            while idx < len(items):
                path, nbytes = items[idx]
                volume = self.library.select_output_volume(
                    int(nbytes), collocation_group
                )
                drive = yield self.library.acquire_drive(volume.volume)
                try:
                    # Write while objects keep fitting on this volume.
                    while idx < len(items):
                        path, nbytes = items[idx]
                        nbytes = int(nbytes)
                        if not drive.cartridge.fits(nbytes):
                            break
                        tr = self.env.trace
                        span = tr.begin(
                            "tsm:store", tid=drive.name, cat="tsm",
                            args={"path": path, "nbytes": nbytes},
                        ) if tr.enabled else None
                        yield from self._txn()
                        oid = next(self._oid)
                        relay = self._lan_relay(session, nbytes, to_server=True)
                        write = drive.write_object(
                            self._data_source_node(session), oid, nbytes
                        )
                        if relay is not None:
                            yield relay & write
                        else:
                            ext: TapeExtent = yield write
                        ext = write.value
                        if span is not None:
                            span.end(oid=oid, volume=ext.volume, seq=ext.seq)
                            tr.metrics.counter("tsm.objects_stored").inc()
                        self.objects.insert(
                            {
                                "object_id": oid,
                                "filespace": filespace,
                                "path": path,
                                "nbytes": nbytes,
                                "volume": ext.volume,
                                "seq": ext.seq,
                                "aggregate_id": None,
                                "offset": 0,
                                "active": True,
                            }
                        )
                        self.bytes_stored += nbytes
                        receipts.append(
                            StoredObject(oid, filespace, path, nbytes, ext.volume, ext.seq)
                        )
                        idx += 1
                finally:
                    self.library.release_drive(drive)
            done.succeed(receipts)

        self.env.process(_proc(), name="tsm-store")
        return done

    def store_aggregate(
        self,
        session: TsmSession,
        filespace: str,
        items: Sequence[tuple[str, int]],
        collocation_group: Optional[str] = None,
    ) -> Event:
        """Bundle *items* into one tape object (single transaction).

        This is the aggregation fix for small-file migration: the tape
        streams the whole bundle with a single backhitch.  Event fires
        with ``list[StoredObject]`` (one receipt per member, all sharing
        the aggregate's volume/seq).
        """
        items = list(items)
        done = self.env.event()
        if not items:
            done.succeed([])
            return done
        total = int(sum(n for _, n in items))

        def _proc():
            try:
                yield from _body()
            except SimulationError as exc:
                if not done.triggered:
                    done.fail(exc)

        def _body():
            volume = self.library.select_output_volume(total, collocation_group)
            drive = yield self.library.acquire_drive(volume.volume)
            try:
                tr = self.env.trace
                span = tr.begin(
                    "tsm:store", tid=drive.name, cat="tsm",
                    args={"members": len(items), "nbytes": total},
                ) if tr.enabled else None
                yield from self._txn()
                agg_id = next(self._agg_id)
                agg_oid = next(self._oid)
                relay = self._lan_relay(session, total, to_server=True)
                write = drive.write_object(
                    self._data_source_node(session), agg_oid, total
                )
                if relay is not None:
                    yield relay & write
                else:
                    yield write
                ext: TapeExtent = write.value
                if span is not None:
                    span.end(oid=agg_oid, volume=ext.volume, seq=ext.seq)
                    tr.metrics.counter("tsm.objects_stored").inc(len(items))
                self._aggregates[agg_id] = agg_oid
                receipts = []
                offset = 0
                for path, nbytes in items:
                    nbytes = int(nbytes)
                    oid = next(self._oid)
                    self.objects.insert(
                        {
                            "object_id": oid,
                            "filespace": filespace,
                            "path": path,
                            "nbytes": nbytes,
                            "volume": ext.volume,
                            "seq": ext.seq,
                            "aggregate_id": agg_id,
                            "offset": offset,
                            "active": True,
                        }
                    )
                    receipts.append(
                        StoredObject(
                            oid, filespace, path, nbytes, ext.volume, ext.seq,
                            aggregate_id=agg_id, offset=offset,
                        )
                    )
                    offset += nbytes
                self.bytes_stored += total
            finally:
                self.library.release_drive(drive)
            done.succeed(receipts)

        self.env.process(_proc(), name="tsm-store-agg")
        return done

    # ------------------------------------------------------------------
    # retrieve
    # ------------------------------------------------------------------
    def locate(self, object_id: int) -> Optional[StoredObject]:
        row = self.objects.get(object_id)
        if row is None or not row["active"]:
            return None
        return StoredObject(
            row["object_id"], row["filespace"], row["path"], row["nbytes"],
            row["volume"], row["seq"], row["aggregate_id"], row["offset"],
        )

    def retrieve_objects(
        self, session: TsmSession, object_ids: Sequence[int]
    ) -> Event:
        """Recall objects in the order given (no reordering here — recall
        ordering is the *caller's* job, which is the whole point of
        PFTool's tape-order optimisation).  Event fires with
        ``list[StoredObject]`` actually delivered.
        """
        done = self.env.event()
        ids = list(object_ids)

        def _proc():
            try:
                yield from _body()
            except SimulationError as exc:
                if not done.triggered:
                    done.fail(exc)

        def _body():
            delivered: list[StoredObject] = []
            i = 0
            while i < len(ids):
                obj = self.locate(ids[i])
                if obj is None:
                    raise SimulationError(f"TSM object {ids[i]} not found/inactive")
                drive = yield self.library.acquire_drive(obj.volume)
                try:
                    while i < len(ids):
                        obj = self.locate(ids[i])
                        if obj is None:
                            raise SimulationError(
                                f"TSM object {ids[i]} not found/inactive"
                            )
                        if obj.volume != drive.cartridge.volume:
                            break  # next object needs another volume
                        self._check_fault("retrieve", obj.object_id)
                        tr = self.env.trace
                        span = tr.begin(
                            "tsm:recall", tid=drive.name, cat="tsm",
                            args={"oid": obj.object_id, "volume": obj.volume,
                                  "seq": obj.seq, "nbytes": obj.nbytes},
                        ) if tr.enabled else None
                        yield from self._txn()
                        extent = self._extent_for(obj, drive)
                        read = drive.read_extent(
                            self._data_source_node(session), extent
                        )
                        relay = self._lan_relay(session, obj.nbytes, to_server=False)
                        if relay is not None:
                            yield relay & read
                        else:
                            yield read
                        self.bytes_retrieved += obj.nbytes
                        delivered.append(obj)
                        i += 1
                        if span is not None:
                            span.end()
                            tr.metrics.counter("tsm.objects_recalled").inc()
                finally:
                    self.library.release_drive(drive)
            done.succeed(delivered)

        self.env.process(_proc(), name="tsm-retrieve")
        return done

    def _check_fault(self, op: str, object_id: Any) -> None:
        """Raise an injected fault for (op, object) when a hook says so."""
        if self.fault_hook is None:
            return
        exc = self.fault_hook(op, object_id)
        if exc is not None:
            self.faults_injected += 1
            raise exc

    def _extent_for(self, obj: StoredObject, drive) -> TapeExtent:
        cart = drive.cartridge
        if obj.aggregate_id is not None:
            agg_oid = self._aggregates[obj.aggregate_id]
            ext = cart.extent_of(agg_oid)
            if ext is None:
                raise SimulationError(
                    f"aggregate {obj.aggregate_id} missing from {cart.volume}"
                )
            # Reading one member still positions to the aggregate and reads
            # from its offset; we charge the member bytes from that offset.
            return TapeExtent(
                ext.volume, ext.seq, ext.start_byte + obj.offset,
                obj.nbytes, obj.object_id,
            )
        ext = cart.extent_of(obj.object_id)
        if ext is None:
            raise SimulationError(f"object {obj.object_id} missing from {cart.volume}")
        return ext

    # ------------------------------------------------------------------
    # delete / reconcile support
    # ------------------------------------------------------------------
    def delete_object(self, object_id: int) -> Event:
        """Delete an object (metadata txn + cartridge bookkeeping)."""
        done = self.env.event()

        def _proc():
            yield from self._txn()
            row = self.objects.get(object_id)
            if row is None:
                done.succeed(False)
                return
            self.objects.delete(object_id)
            if row["aggregate_id"] is None:
                cart = self.library.cartridges.get(row["volume"])
                if cart is not None:
                    cart.remove(object_id)
            done.succeed(True)

        self.env.process(_proc(), name="tsm-delete")
        return done

    # ------------------------------------------------------------------
    # space reclamation
    # ------------------------------------------------------------------
    def reclaimable_volumes(self, utilization_threshold: float = 0.5) -> list[str]:
        """Volumes whose live data has fallen below the threshold
        (deletes only orphan space on tape — reclamation recovers it)."""
        out = []
        filling = set(self.library._filling.values())
        for vol, cart in self.library.cartridges.items():
            if cart.eod == 0 or vol in filling:
                continue
            if cart.utilization < utilization_threshold:
                out.append(vol)
        return sorted(out)

    def reclaim_volume(self, volume: str, mover_node: Optional[str] = None) -> Event:
        """Move a sparse volume's live objects onto the current filling
        volume of their co-location group, then return it to scratch.

        Uses two drives (read + write) like TSM's reclamation process.
        Fires with the number of objects moved.
        """
        done = self.env.event()
        node = mover_node or self.server_node or "tsm-server-local"

        def _proc():
            cart = self.library.volume(volume)
            # retire the volume from output rotation before moving data off
            cart.read_only = True
            if self.library._filling.get(cart.collocation_group) == volume:
                del self.library._filling[cart.collocation_group]
            live = list(cart.extents)
            moved = 0
            src_drive = yield self.library.acquire_drive(volume)
            try:
                for ext in live:
                    row = self.objects.get(ext.object_id)
                    if row is None:
                        continue
                    group = cart.collocation_group
                    target = self.library.select_output_volume(ext.nbytes, group)
                    dst_drive = yield self.library.acquire_drive(target.volume)
                    try:
                        yield from self._txn()
                        read = src_drive.read_extent(node, ext)
                        write = dst_drive.write_object(
                            node, ext.object_id, ext.nbytes
                        )
                        yield read & write
                        new_ext: TapeExtent = write.value
                        self.objects.update(
                            ext.object_id,
                            volume=new_ext.volume,
                            seq=new_ext.seq,
                        )
                        moved += 1
                    finally:
                        self.library.release_drive(dst_drive)
                # erase the source volume back to scratch while we still
                # hold it (nobody else can be mid-I/O on it)
                yield src_drive.unload()
            finally:
                self.library.release_drive(src_drive)
            cart.extents.clear()
            cart._by_object.clear()
            cart.eod = 0
            cart.read_only = False
            cart.collocation_group = None
            if volume not in self.library.scratch:
                self.library.scratch.append(volume)
            done.succeed(moved)

        self.env.process(_proc(), name=f"reclaim-{volume}")
        return done

    def objects_for_path(self, filespace: str, path: str) -> list[StoredObject]:
        rows = self.objects.select_eq("by_path", filespace, path)
        return [
            StoredObject(
                r["object_id"], r["filespace"], r["path"], r["nbytes"],
                r["volume"], r["seq"], r["aggregate_id"], r["offset"],
            )
            for r in rows
            if r["active"]
        ]

    def export_rows(self) -> Iterator[dict]:
        """Rows for the MySQL-substitute export (see §4.2.5)."""
        for row in self.objects.scan(lambda r: r["active"]):
            yield {
                "object_id": row["object_id"],
                "path": row["path"],
                "filespace": row["filespace"],
                "volume": row["volume"],
                "seq": row["seq"],
                "nbytes": row["nbytes"],
            }

    def __repr__(self) -> str:
        return f"<TsmServer objects={len(self.objects)} txns={self.transactions}>"
