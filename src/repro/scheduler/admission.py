"""Load-based admission control over the shared FTA and tape-drive pool.

The paper's site ran PFTool jobs ad hoc: every submission immediately
spawned MPI ranks on whatever the LoadManager's machine list said,
so a burst of users could oversubscribe the ten FTA nodes and thrash
the 24 drives (§4.1.2 only *sorts* the list, it never says no).  The
:class:`AdmissionController` is the missing "no": a job is dispatched
only while

* the count of active jobs is below ``max_active_jobs``,
* the FTA pool has a free rank-slot for every rank the job spawns
  (``slots_per_node`` × nodes, charged through the LoadManager, which
  also keeps per-node placement honest), and
* the tape-drive pool can cover the job's TapeProc ranks (restore
  direction only) after the configured operator reserve.

Everything is counted, deterministic and O(tenants) per decision; the
controller never guesses at durations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pftool.loadmanager import LoadManager
from repro.scheduler.queues import JobTicket
from repro.sim import SimulationError

__all__ = ["AdmissionController", "AdmissionPolicy"]


@dataclass
class AdmissionPolicy:
    """Operator knobs for the admission controller."""

    #: concurrent rank-slots per FTA node (the paper's load-average cap)
    slots_per_node: int = 8
    #: hard ceiling on simultaneously running PFTool jobs
    max_active_jobs: int = 64
    #: tape drives always kept free (operator/repair headroom)
    drive_reserve: int = 0

    def __post_init__(self) -> None:
        if self.slots_per_node < 1:
            raise SimulationError("slots_per_node must be >= 1")
        if self.max_active_jobs < 1:
            raise SimulationError("max_active_jobs must be >= 1")
        if self.drive_reserve < 0:
            raise SimulationError("drive_reserve must be >= 0")


class AdmissionController:
    """Counts active load against the pools and says yes or no."""

    def __init__(self, loadmanager: LoadManager, policy: AdmissionPolicy,
                 n_drives: int) -> None:
        self.loadmanager = loadmanager
        self.policy = policy
        self.n_drives = n_drives
        self.active_jobs = 0
        self.reserved_drives = 0

    # -- capacity queries ----------------------------------------------
    @property
    def total_slots(self) -> int:
        return self.policy.slots_per_node * len(self.loadmanager.nodes)

    @property
    def free_slots(self) -> int:
        return self.loadmanager.free_slots(self.policy.slots_per_node)

    @property
    def usable_drives(self) -> int:
        return max(0, self.n_drives - self.policy.drive_reserve)

    def _drives_needed(self, ticket: JobTicket) -> int:
        # TapeProc ranks only spawn in the restore direction
        return ticket.cfg.num_tapeprocs if ticket.op == "retrieve" else 0

    # -- decisions ------------------------------------------------------
    def validate(self, ticket: JobTicket) -> None:
        """Reject at submit time what could never run, even on an idle
        site — otherwise the ticket would pin its tenant's queue head
        forever (the fair-share scheduler does not skip heads)."""
        if ticket.ranks > self.total_slots:
            raise SimulationError(
                f"job needs {ticket.ranks} rank-slots but the FTA pool "
                f"tops out at {self.total_slots} "
                f"({len(self.loadmanager.nodes)} nodes x "
                f"{self.policy.slots_per_node} slots)"
            )
        needed = self._drives_needed(ticket)
        if needed > self.usable_drives:
            raise SimulationError(
                f"job needs {needed} tape drives but only "
                f"{self.usable_drives} are usable "
                f"({self.n_drives} minus reserve {self.policy.drive_reserve})"
            )

    def admits(self, ticket: JobTicket) -> tuple[bool, str]:
        """(True, "") to dispatch now, else (False, reason)."""
        if self.active_jobs >= self.policy.max_active_jobs:
            return False, "max-active-jobs"
        if ticket.ranks > self.free_slots:
            return False, "fta-load"
        needed = self._drives_needed(ticket)
        if needed and self.reserved_drives + needed > self.usable_drives:
            return False, "drives"
        return True, ""

    # -- accounting -----------------------------------------------------
    def on_dispatch(self, ticket: JobTicket) -> None:
        self.loadmanager.job_started(ticket.nodes_used)
        self.active_jobs += 1
        self.reserved_drives += self._drives_needed(ticket)

    def on_complete(self, ticket: JobTicket) -> None:
        self.loadmanager.job_finished(ticket.nodes_used)
        self.active_jobs -= 1
        self.reserved_drives -= self._drives_needed(ticket)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AdmissionController active={self.active_jobs} "
            f"free_slots={self.free_slots} "
            f"drives={self.reserved_drives}/{self.usable_drives}>"
        )
