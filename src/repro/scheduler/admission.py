"""Load-based admission control over the shared FTA and tape-drive pool.

The paper's site ran PFTool jobs ad hoc: every submission immediately
spawned MPI ranks on whatever the LoadManager's machine list said,
so a burst of users could oversubscribe the ten FTA nodes and thrash
the 24 drives (§4.1.2 only *sorts* the list, it never says no).  The
:class:`AdmissionController` is the missing "no": a job is dispatched
only while

* the count of active jobs is below ``max_active_jobs``,
* the FTA pool has a free rank-slot for every rank the job spawns
  (``slots_per_node`` × nodes, charged through the LoadManager, which
  also keeps per-node placement honest), and
* the tape-drive pool can cover the job's TapeProc ranks (restore
  direction only) after the configured operator reserve.

Everything is counted, deterministic and O(tenants) per decision; the
controller never guesses at durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.pftool.loadmanager import LoadManager
from repro.scheduler.queues import JobTicket
from repro.sim import SimulationError

__all__ = ["AdmissionController", "AdmissionPolicy", "DegradedModePolicy"]


@dataclass
class AdmissionPolicy:
    """Operator knobs for the admission controller."""

    #: concurrent rank-slots per FTA node (the paper's load-average cap)
    slots_per_node: int = 8
    #: hard ceiling on simultaneously running PFTool jobs
    max_active_jobs: int = 64
    #: tape drives always kept free (operator/repair headroom)
    drive_reserve: int = 0

    def __post_init__(self) -> None:
        if self.slots_per_node < 1:
            raise SimulationError("slots_per_node must be >= 1")
        if self.max_active_jobs < 1:
            raise SimulationError("max_active_jobs must be >= 1")
        if self.drive_reserve < 0:
            raise SimulationError("drive_reserve must be >= 0")


@dataclass
class DegradedModePolicy:
    """How far the site degrades while unhealthy (brownout knobs)."""

    #: active-job ceiling while in brownout (replaces max_active_jobs
    #: when lower)
    brownout_max_active: int = 4
    #: drive reserve while in brownout — shrinking the operator reserve
    #: lets the surviving drives absorb the backlog
    brownout_drive_reserve: int = 0
    #: fraction of tenants (lowest share first) shed during brownout
    shed_fraction: float = 0.34
    #: seconds between tenant readmissions while recovering
    readmit_interval: float = 5.0
    #: uniform jitter added to each readmission step (thundering-herd
    #: suppression; drawn from the service's seeded stream)
    readmit_jitter: float = 2.0
    #: fenced-FTA fraction at which node loss alone forces brownout
    node_down_brownout_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.brownout_max_active < 1:
            raise SimulationError("brownout_max_active must be >= 1")
        if self.brownout_drive_reserve < 0:
            raise SimulationError("brownout_drive_reserve must be >= 0")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise SimulationError("shed_fraction must be in [0, 1]")
        if self.readmit_interval < 0 or self.readmit_jitter < 0:
            raise SimulationError("readmission pacing must be >= 0")
        if not 0.0 < self.node_down_brownout_fraction <= 1.0:
            raise SimulationError(
                "node_down_brownout_fraction must be in (0, 1]"
            )


class AdmissionController:
    """Counts active load against the pools and says yes or no.

    With a :class:`~repro.health.HealthView` attached (see
    ``ArchiveService.attach_health``) the controller also degrades:
    retrieves are parked while the library or the tape catalog is
    unhealthy (they would wedge on mounts or chase corrupt locations),
    and brownout mode swaps in the :class:`DegradedModePolicy` ceiling
    and drive reserve.
    """

    def __init__(self, loadmanager: LoadManager, policy: AdmissionPolicy,
                 n_drives: int) -> None:
        self.loadmanager = loadmanager
        self.policy = policy
        self.n_drives = n_drives
        self.active_jobs = 0
        self.reserved_drives = 0
        #: HealthView consulted on every decision (None = always healthy)
        self.health = None
        self.brownout = False
        self.brownout_policy = DegradedModePolicy()

    def set_brownout(self, on: bool) -> None:
        self.brownout = bool(on)

    # -- capacity queries ----------------------------------------------
    @property
    def total_slots(self) -> int:
        return self.policy.slots_per_node * len(self.loadmanager.nodes)

    @property
    def max_active(self) -> int:
        if self.brownout:
            return min(self.policy.max_active_jobs,
                       self.brownout_policy.brownout_max_active)
        return self.policy.max_active_jobs

    @property
    def free_slots(self) -> int:
        return self.loadmanager.free_slots(self.policy.slots_per_node)

    @property
    def usable_drives(self) -> int:
        reserve = self.policy.drive_reserve
        if self.brownout:
            reserve = min(reserve,
                          self.brownout_policy.brownout_drive_reserve)
        return max(0, self.n_drives - reserve)

    def _drives_needed(self, ticket: JobTicket) -> int:
        # TapeProc ranks only spawn in the restore direction
        return ticket.cfg.num_tapeprocs if ticket.op == "retrieve" else 0

    # -- decisions ------------------------------------------------------
    def validate(self, ticket: JobTicket) -> None:
        """Reject at submit time what could never run, even on an idle
        site — otherwise the ticket would pin its tenant's queue head
        forever (the fair-share scheduler does not skip heads)."""
        if ticket.ranks > self.total_slots:
            raise SimulationError(
                f"job needs {ticket.ranks} rank-slots but the FTA pool "
                f"tops out at {self.total_slots} "
                f"({len(self.loadmanager.nodes)} nodes x "
                f"{self.policy.slots_per_node} slots)"
            )
        needed = self._drives_needed(ticket)
        if needed > self.usable_drives:
            raise SimulationError(
                f"job needs {needed} tape drives but only "
                f"{self.usable_drives} are usable "
                f"({self.n_drives} minus reserve {self.policy.drive_reserve})"
            )

    def admits(self, ticket: JobTicket) -> tuple[bool, str]:
        """(True, "") to dispatch now, else (False, reason).

        Reasons ending in ``-fenced`` park the *tenant's head* without
        blocking the whole dispatch loop (the service skips that tenant
        this round); plain capacity reasons keep the strict head-of-line
        wait.
        """
        if self.health is not None and ticket.op == "retrieve":
            # a retrieve against a fenced library wedges on mounts; one
            # against a corrupt catalog chases wrong tape locations
            if not self.health.healthy("library"):
                return False, "library-fenced"
            if not self.health.healthy("catalog"):
                return False, "catalog-fenced"
        if self.active_jobs >= self.max_active:
            if self.brownout and self.max_active < self.policy.max_active_jobs:
                return False, "brownout"
            return False, "max-active-jobs"
        if ticket.ranks > self.total_slots:
            # the pool shrank (deregister) after this ticket validated;
            # it can never run on the surviving nodes
            return False, "pool-shrunk"
        if ticket.ranks > self.free_slots:
            return False, "fta-load"
        needed = self._drives_needed(ticket)
        if needed and self.reserved_drives + needed > self.usable_drives:
            return False, "drives"
        return True, ""

    # -- accounting -----------------------------------------------------
    def on_dispatch(self, ticket: JobTicket) -> None:
        self.loadmanager.job_started(ticket.nodes_used)
        self.active_jobs += 1
        self.reserved_drives += self._drives_needed(ticket)

    def on_complete(self, ticket: JobTicket) -> None:
        self.loadmanager.job_finished(ticket.nodes_used)
        self.active_jobs -= 1
        self.reserved_drives -= self._drives_needed(ticket)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<AdmissionController active={self.active_jobs} "
            f"free_slots={self.free_slots} "
            f"drives={self.reserved_drives}/{self.usable_drives}>"
        )
