"""CLI: run the scheduler scenarios from the shell.

``python -m repro.scheduler`` runs benchmark S1 (the pure multi-tenant
flood) and prints its headline; ``--soak`` runs the chaos soak
(cancels + preempt/resume mid-run) and exits non-zero if any service
invariant broke — the CI soak-smoke job is exactly this.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.scheduler.scenario import S1Params, run_s1, run_soak


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scheduler",
        description="seeded multi-tenant archive-service scenarios",
    )
    parser.add_argument("--seed", type=int, default=1001)
    parser.add_argument("--tenants", type=int, default=None,
                        help="number of tenants (default: 12 S1 / 10 soak)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="number of jobs (default: 1200 S1 / 300 soak)")
    parser.add_argument("--soak", action="store_true",
                        help="chaos soak with cancels and preempt/resume "
                             "instead of the pure S1 flood")
    args = parser.parse_args(argv)

    if args.soak:
        result = run_soak(
            seed=args.seed,
            n_tenants=args.tenants if args.tenants is not None else 10,
            n_jobs=args.jobs if args.jobs is not None else 300,
        )
        print(json.dumps(result["summary"], indent=2, sort_keys=True))
        for violation in result["violations"]:
            print(f"VIOLATION: {violation}", file=sys.stderr)
        return 1 if result["violations"] else 0

    params = S1Params(seed=args.seed)
    if args.tenants is not None:
        params.n_tenants = args.tenants
    if args.jobs is not None:
        params.n_jobs = args.jobs
    result = run_s1(params)
    print(json.dumps(result["headline"], indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
