"""Seeded multi-tenant scheduler scenarios: benchmark S1 and the soak.

``run_s1`` is benchmark **S1**: ≥10 tenants flood the service with
enough tiny archive jobs that more than a thousand are in the system at
once, while admission control holds the FTA pool at its configured
ceiling and stride fair-share keeps every tenant's served fraction near
its weight.  All quantities are simulated, so a seed fully determines
the outcome — the S1 golden is byte-comparable across machines, like
every other ``repro.perf`` headline.

``run_soak`` is the long-running-service chaos variant behind
``python -m repro.scheduler --soak`` and the CI soak-smoke job: the same
flood plus seeded mid-run cancels of queued jobs, preemptions of active
jobs (later resumed from their journals), and end-state invariant
checks (conservation, no starvation, monitor detach).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.pftool import PftoolConfig
from repro.scheduler.admission import AdmissionPolicy
from repro.scheduler.queues import PREEMPTED, QUEUED, TERMINAL_STATES
from repro.scheduler.service import ArchiveService, SchedulerConfig
from repro.sim import Environment, RandomStreams
from repro.tapesim import TapeSpec
from repro.workloads.generators import preload_tree

__all__ = ["S1Params", "run_s1", "run_soak"]

MB = 1_000_000
GB = 1_000_000_000

#: fast tape spec shared by the scheduler scenarios (mount/seek times
#: scaled down so thousand-job runs stay cheap to simulate)
FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * GB,
)


@dataclass
class S1Params:
    """Sizing of an S1-style multi-tenant flood."""

    seed: int = 1001
    n_tenants: int = 12
    n_jobs: int = 1400
    #: mean inter-arrival time of submissions, seconds (Poisson); the
    #: default is a burst — arrivals far outpace the admission ceiling,
    #: so >1000 jobs pile up in the tenant queues mid-run
    mean_arrival: float = 0.002
    files_per_job: int = 2
    #: mean file size, bytes (lognormal, sigma below)
    mean_file_bytes: float = 16 * MB
    sigma: float = 0.5
    policy: AdmissionPolicy = field(
        default_factory=lambda: AdmissionPolicy(
            slots_per_node=12, max_active_jobs=16
        )
    )
    #: per-job PFTool sizing (6 ranks: manager, output, watchdog, 1
    #: readdir, 2 workers)
    cfg: PftoolConfig = field(
        default_factory=lambda: PftoolConfig(
            num_workers=2, num_readdir=1, num_tapeprocs=0,
            stat_batch=8, copy_batch=4,
        )
    )
    #: dispatches ignored by the deviation headline while the stride
    #: scheduler's first round-robin sweep levels the tenants out
    warmup_dispatches: int = 48


def build_site(env: Environment) -> ParallelArchiveSystem:
    """The small fast site every scheduler scenario runs against."""
    return ParallelArchiveSystem(env, ArchiveParams(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    ))


def _tenant_plan(params: S1Params) -> list[tuple[str, float, int]]:
    """(name, weight, n_jobs) per tenant: weights cycle 1..4 and each
    tenant's job count is proportional to its weight, so every tenant
    stays backlogged for (almost) the whole run and the cumulative
    fair-share deviation is a meaningful number."""
    weights = [1.0 + (i % 4) for i in range(params.n_tenants)]
    total_w = sum(weights)
    plan = []
    assigned = 0
    for i, w in enumerate(weights):
        if i == params.n_tenants - 1:
            n = params.n_jobs - assigned
        else:
            n = max(1, round(params.n_jobs * w / total_w))
        assigned += n
        plan.append((f"tenant{i:02d}", w, n))
    return plan


def _submission_schedule(params: S1Params) -> list[tuple[float, str, int]]:
    """Deterministic (time, tenant, job_index) submission list."""
    rng = RandomStreams(params.seed).stream("s1-arrivals")
    order: list[str] = []
    for name, _w, n in _tenant_plan(params):
        order.extend([name] * n)
    # deterministic shuffle so tenants interleave instead of arriving
    # in blocks (numpy permutation on the seeded stream)
    perm = rng.permutation(len(order))
    t = 0.0
    schedule = []
    for k, idx in enumerate(perm):
        t += float(rng.exponential(params.mean_arrival))
        schedule.append((t, order[int(idx)], k))
    return schedule


def _setup(env: Environment, params: S1Params):
    """Site + service + materialised trees + per-job sizes."""
    system = build_site(env)
    service = ArchiveService(system, SchedulerConfig(
        policy=params.policy, default_cfg=params.cfg,
    ))
    for name, weight, _n in _tenant_plan(params):
        service.add_tenant(name, weight=weight)
    size_rng = RandomStreams(params.seed).stream("s1-sizes")
    schedule = _submission_schedule(params)
    total_bytes = 0
    for _t, tenant, k in schedule:
        sizes = [
            max(1 * MB, int(size_rng.lognormal(
                mean=_ln_mu(params.mean_file_bytes, params.sigma),
                sigma=params.sigma,
            )))
            for _ in range(params.files_per_job)
        ]
        total_bytes += preload_tree(
            system.scratch_fs, f"/jobs/{tenant}/j{k:05d}", sizes
        )
    return system, service, schedule, total_bytes


def _ln_mu(mean: float, sigma: float) -> float:
    """lognormal mu for a target mean."""
    import math

    return math.log(mean) - sigma * sigma / 2.0


def run_s1(params: S1Params | None = None) -> dict:
    """Run benchmark S1; returns the deterministic result dict."""
    params = params or S1Params()
    env = Environment()
    system, service, schedule, total_bytes = _setup(env, params)

    def feeder():
        t_prev = 0.0
        for t, tenant, k in schedule:
            yield env.timeout(t - t_prev)
            t_prev = t
            service.submit(tenant, "archive", f"/jobs/{tenant}/j{k:05d}",
                           f"/arc/{tenant}/j{k:05d}")

    env.process(feeder(), name="s1-feeder")
    env.run(service.drain())
    env.run()  # let trailing settle timers drain
    summary = service.summary()
    dev_tail = service.deviation_samples[params.warmup_dispatches:]
    bytes_copied = sum(
        t.stats.bytes_copied for t in service._tickets.values()
        if t.stats is not None
    )
    return {
        "env": env,
        "service": service,
        "system": system,
        "headline": {
            "tenants": summary["tenants"],
            "submitted": summary["submitted"],
            "completed": summary["completed"],
            "peak_in_flight": summary["peak_in_flight"],
            "bytes_preloaded": total_bytes,
            "bytes_copied": bytes_copied,
            "max_deviation": round(max(dev_tail, default=0.0), 9),
            "end_time": round(env.now, 9),
        },
    }


def run_soak(seed: int = 0, n_tenants: int = 10, n_jobs: int = 300,
             cancel_frac: float = 0.06, preempt_frac: float = 0.04,
             params: S1Params | None = None) -> dict:
    """The long-running-service soak: flood + cancels + preempt/resume.

    Returns ``{"summary": ..., "violations": [...]}`` where a non-empty
    violations list means a service invariant broke (the CLI exits 1).
    """
    if params is None:
        params = S1Params(seed=seed, n_tenants=n_tenants, n_jobs=n_jobs,
                          mean_arrival=0.1)
    env = Environment()
    system, service, schedule, _total = _setup(env, params)
    chaos_rng = RandomStreams(params.seed).stream("soak-chaos")
    horizon = schedule[-1][0]
    resumed_ids: set[int] = set()

    def feeder():
        t_prev = 0.0
        for t, tenant, k in schedule:
            yield env.timeout(t - t_prev)
            t_prev = t
            service.submit(tenant, "archive", f"/jobs/{tenant}/j{k:05d}",
                           f"/arc/{tenant}/j{k:05d}",
                           priority=int(chaos_rng.integers(0, 3)))

    def chaos():
        n_cancels = int(params.n_jobs * cancel_frac)
        n_preempts = int(params.n_jobs * preempt_frac)
        for i in range(n_cancels + n_preempts):
            yield env.timeout(float(chaos_rng.exponential(
                horizon / max(1, n_cancels + n_preempts)
            )))
            if i < n_cancels:
                # queued jobs tombstone out of their heap; active ones
                # abort through the Manager's Exit protocol — exercise
                # both paths (fall back to active when nothing queues)
                victims = sorted(
                    t.job_id for t in service._tickets.values()
                    if t.state == QUEUED
                ) or sorted(
                    jid for jid, t in service._active.items()
                    if not (t.cancel_requested or t.preempt_requested)
                )
                if victims:
                    pick = victims[int(chaos_rng.integers(0, len(victims)))]
                    service.cancel(pick, "soak cancel")
            else:
                active = sorted(service._active)
                if active:
                    pick = active[int(chaos_rng.integers(0, len(active)))]
                    service.preempt(pick, "soak preempt")

    def resumer():
        # resume every preemption once it settles, after a beat
        while True:
            yield env.timeout(1.0)
            parked = sorted(
                t.job_id for t in service._tickets.values()
                if t.state == PREEMPTED and t.job_id not in resumed_ids
            )
            for job_id in parked:
                resumed_ids.add(job_id)
                service.resume(job_id)
            if service.in_flight == 0 and feeder_done[0]:
                return

    feeder_done = [False]

    def feed_wrapper():
        yield from feeder()
        feeder_done[0] = True

    env.process(feed_wrapper(), name="soak-feeder")
    env.process(chaos(), name="soak-chaos")
    env.process(resumer(), name="soak-resumer")
    env.run()

    summary = service.summary()
    violations: list[str] = []
    terminal = summary["completed"] + summary["cancelled"] + summary["preempted"]
    if summary["submitted"] != terminal:
        violations.append(
            f"conservation: submitted {summary['submitted']} != "
            f"completed+cancelled+preempted {terminal}"
        )
    if summary["queued"] or summary["active"]:
        violations.append(
            f"not drained: queued={summary['queued']} "
            f"active={summary['active']}"
        )
    never_dispatched = [
        t.job_id for t in service._tickets.values()
        if t.state not in TERMINAL_STATES
    ]
    if never_dispatched:
        violations.append(f"non-terminal tickets: {never_dispatched}")
    # every preempted ticket must have been resumed by a follow-up
    # submission (no starved resumes)
    unresumed = [
        t.job_id for t in service._tickets.values()
        if t.state == PREEMPTED and t.job_id not in resumed_ids
    ]
    if unresumed:
        violations.append(f"preempted but never resumed: {unresumed}")
    leaked = [
        t.job_id for t in service._tickets.values()
        if t.job is not None and getattr(t.job.comm, "monitor", None) is not None
    ]
    if leaked:
        violations.append(f"monitor still attached after done: {leaked}")
    if service.system.loadmanager.total_load != 0:
        violations.append(
            f"load not released: {service.system.loadmanager!r}"
        )
    return {"env": env, "service": service, "summary": summary,
            "violations": violations}
