"""Archive-as-a-service: the job scheduler layer (ROADMAP item 1).

The paper's site ran PFTool jobs ad hoc over a shared FTA pool, with
only the LoadManager's sorted machine list between users and an
oversubscribed site (§4.1.2).  This package is the missing service
layer — what CASTOR's stager is at CERN scale:

=================  ====================================================
module             provides
=================  ====================================================
``service``        :class:`ArchiveService` — submit / query / cancel /
                   preempt / resume over one ParallelArchiveSystem
``queues``         :class:`JobTicket` lifecycle + per-tenant priority
                   queues with O(1) tombstone cancellation
``fairshare``      :class:`FairShare` — weighted stride scheduling plus
                   the deviation metric the S1 benchmark bounds
``admission``      :class:`AdmissionController` — load-based admission
                   over the FTA rank-slots and the tape-drive pool,
                   plus :class:`DegradedModePolicy` brownout knobs
                   (health-aware admission; ROADMAP item 4(c))
``scenario``       seeded multi-tenant scenarios: S1 (``run_s1``) and
                   the cancel/preempt soak behind ``python -m
                   repro.scheduler``
=================  ====================================================

Quickstart::

    env = Environment()
    system = ParallelArchiveSystem(env)
    service = ArchiveService(system)
    service.add_tenant("astro", weight=3.0)
    ticket = service.submit("astro", "archive", "/jobs/j0", "/arc/j0")
    env.run(service.drain())     # or env.run(ticket.done)
"""

from repro.scheduler.admission import (
    AdmissionController,
    AdmissionPolicy,
    DegradedModePolicy,
)
from repro.scheduler.fairshare import FairShare
from repro.scheduler.queues import (
    ACTIVE,
    CANCELLED,
    COMPLETED,
    PREEMPTED,
    QUEUED,
    TERMINAL_STATES,
    JobTicket,
    TenantQueue,
)
from repro.scheduler.service import ArchiveService, SchedulerConfig, Tenant

__all__ = [
    "ACTIVE",
    "ArchiveService",
    "AdmissionController",
    "AdmissionPolicy",
    "CANCELLED",
    "COMPLETED",
    "DegradedModePolicy",
    "FairShare",
    "JobTicket",
    "PREEMPTED",
    "QUEUED",
    "SchedulerConfig",
    "TERMINAL_STATES",
    "Tenant",
    "TenantQueue",
]
