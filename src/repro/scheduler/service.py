"""The long-running archive service: submit / query / cancel / preempt.

``ArchiveService`` wraps a :class:`~repro.archive.system.ParallelArchiveSystem`
and turns the paper's ad-hoc "run pftool when asked" site into a
continuously-running, multi-tenant service (ROADMAP item 1; CASTOR's
stager is this layer at CERN scale):

* every tenant (user/project) gets a priority-ordered queue
  (:class:`~repro.scheduler.queues.TenantQueue`);
* dispatch order across tenants is weighted fair-share
  (:class:`~repro.scheduler.fairshare.FairShare`, stride scheduling);
* a dispatch only happens while the FTA pool and tape drives have
  headroom (:class:`~repro.scheduler.admission.AdmissionController`,
  charging the site's :class:`~repro.pftool.loadmanager.LoadManager`);
* dispatched jobs are ordinary :class:`~repro.pftool.job.PftoolJob`\\ s,
  each bound to a fresh :class:`~repro.recovery.journal.JobJournal` —
  so cancel, preempt and crash all leave a journal a resume converges
  from (the chaos harness's oracle argument carries over verbatim);
* every scheduling decision emits ``repro.trace`` events and updates
  the service's :class:`~repro.trace.metrics.MetricsRegistry`.

The service is purely event-driven on the simulated clock: submissions
and job completions pump the dispatch loop; there is no polling process,
so an idle service costs zero events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.pftool.config import PftoolConfig
from repro.recovery.journal import JobJournal
from repro.scheduler.admission import (
    AdmissionController,
    AdmissionPolicy,
    DegradedModePolicy,
)
from repro.scheduler.fairshare import FairShare
from repro.scheduler.queues import (
    ACTIVE,
    CANCELLED,
    COMPLETED,
    PREEMPTED,
    QUEUED,
    TERMINAL_STATES,
    JobTicket,
    TenantQueue,
)
from repro.sim import Event, RandomStreams, SimulationError
from repro.trace.metrics import MetricsRegistry

__all__ = ["ArchiveService", "SchedulerConfig", "Tenant"]


@dataclass(frozen=True)
class Tenant:
    """One accounting principal (user or project)."""

    name: str
    weight: float = 1.0
    project: str = ""


@dataclass
class SchedulerConfig:
    """Service-level knobs."""

    policy: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    #: PftoolConfig used when a submission does not bring its own
    default_cfg: Optional[PftoolConfig] = None


class ArchiveService:
    """Archive-as-a-service over one simulated site."""

    def __init__(self, system, config: Optional[SchedulerConfig] = None) -> None:
        self.system = system
        self.env = system.env
        self.config = config or SchedulerConfig()
        self.metrics = MetricsRegistry()
        for name in ("submitted", "dispatched", "completed", "cancelled",
                     "preempted", "resumed"):
            self.metrics.counter(f"sched.{name}")
        self.metrics.gauge("sched.queue_depth")
        self.metrics.gauge("sched.active")
        self.metrics.histogram("sched.wait_s")

        self._tenants: dict[str, Tenant] = {}
        self._queues: dict[str, TenantQueue] = {}
        self._fair = FairShare()
        self._admission = AdmissionController(
            system.loadmanager, self.config.policy,
            system.params.n_tape_drives,
        )
        self._tickets: dict[int, JobTicket] = {}
        self._active: dict[int, JobTicket] = {}
        self._active_by_tenant: dict[str, int] = {}
        self._job_ids = itertools.count(1)
        self._drain_waiters: list[Event] = []
        #: job_ids in dispatch order — the same-seed determinism witness
        self.dispatch_log: list[int] = []
        #: fair-share deviation sampled at each dispatch (trace-mirrored)
        self.deviation_samples: list[float] = []
        #: high-water mark of jobs in the system (queued + active)
        self.peak_in_flight = 0

        # -- degraded-mode state (inert until attach_health) ------------
        self._health = None
        self._degraded = self._admission.brownout_policy
        #: tenants shed during brownout (excluded from dispatch)
        self._shed: set[str] = set()
        self._readmit_rng = None
        #: bumped on every brownout edge; stale readmission loops exit
        self._readmit_epoch = 0
        self._brownout_since: Optional[float] = None
        #: (sim time, "enter" | "exit") brownout edges, in order
        self.brownout_log: list[tuple[float, str]] = []
        #: tickets preempted off dying nodes by the health plane
        self.health_requeues = 0

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------
    def add_tenant(self, name: str, weight: float = 1.0,
                   project: str = "") -> Tenant:
        if name in self._tenants:
            raise SimulationError(f"tenant {name!r} already exists")
        tenant = Tenant(name, float(weight), project)
        self._tenants[name] = tenant
        self._queues[name] = TenantQueue(name)
        self._fair.add_tenant(name, weight)
        self._active_by_tenant[name] = 0
        return tenant

    @property
    def tenants(self) -> list[Tenant]:
        return list(self._tenants.values())

    # ------------------------------------------------------------------
    # submission API
    # ------------------------------------------------------------------
    def submit(self, tenant: str, op: str, src: str, dst: str,
               priority: int = 0,
               cfg: Optional[PftoolConfig] = None) -> JobTicket:
        """Queue an ``archive`` (scratch→archive) or ``retrieve``
        (archive→scratch) job for *tenant*; returns its ticket."""
        if tenant not in self._tenants:
            raise SimulationError(
                f"unknown tenant {tenant!r}; add_tenant() first "
                f"(known: {sorted(self._tenants)})"
            )
        if op not in ("archive", "retrieve"):
            raise SimulationError(f"unknown service op {op!r}")
        cfg = cfg if cfg is not None else (
            self.config.default_cfg or PftoolConfig()
        )
        ticket = JobTicket(
            job_id=next(self._job_ids), tenant=tenant, op=op,
            src=src, dst=dst, cfg=cfg, priority=int(priority),
            submitted=self.env.now, done=self.env.event(),
        )
        self._admission.validate(ticket)
        return self._enqueue(ticket)

    def resume(self, job_id: int, priority: Optional[int] = None) -> JobTicket:
        """Resubmit a PREEMPTED ticket as a fresh submission sharing its
        journal: the resumed job re-copies only past the journal
        frontier, so preempt→resume converges to the oracle end state."""
        old = self.query(job_id)
        if old.state != PREEMPTED:
            raise SimulationError(
                f"job {job_id} is {old.state}, only preempted jobs resume"
            )
        if old.journal is None or old.journal.job_meta is None:
            raise SimulationError(
                f"job {job_id} has no journal to resume from"
            )
        ticket = JobTicket(
            job_id=next(self._job_ids), tenant=old.tenant, op=old.op,
            src=old.src, dst=old.dst, cfg=old.cfg,
            priority=old.priority if priority is None else int(priority),
            submitted=self.env.now, done=self.env.event(),
            journal=old.journal, resume_of=old.job_id,
        )
        self._admission.validate(ticket)
        self.metrics.counter("sched.resumed").inc()
        return self._enqueue(ticket)

    def _enqueue(self, ticket: JobTicket) -> JobTicket:
        self._tickets[ticket.job_id] = ticket
        queue = self._queues[ticket.tenant]
        if len(queue) == 0:
            self._fair.on_backlogged(ticket.tenant)
        queue.push(ticket)
        self.metrics.counter("sched.submitted").inc()
        self._note_depth()
        tr = self.env.trace
        if tr.enabled:
            tr.instant("sched:submit", tid="scheduler",
                       args={"job_id": ticket.job_id,
                             "tenant": ticket.tenant, "op": ticket.op,
                             "priority": ticket.priority})
        self._pump()
        return ticket

    # ------------------------------------------------------------------
    # query / cancel / preempt
    # ------------------------------------------------------------------
    def query(self, job_id: int) -> JobTicket:
        ticket = self._tickets.get(job_id)
        if ticket is None:
            raise SimulationError(f"unknown job id {job_id}")
        return ticket

    def cancel(self, job_id: int, reason: str = "cancelled by user") -> bool:
        """Cancel a queued or active job; True if the cancel took."""
        ticket = self.query(job_id)
        if ticket.state in TERMINAL_STATES or ticket.cancel_requested:
            return False
        if ticket.state == QUEUED:
            self._queues[ticket.tenant].remove(job_id)
            ticket.cancel_requested = True
            self._settle(ticket, CANCELLED)
            self._note_depth()
            return True
        # ACTIVE: abort the running PftoolJob; the Manager drains its
        # Exit protocol and the done event settles the ticket.
        ticket.cancel_requested = True
        ticket.job.cancel(reason)
        tr = self.env.trace
        if tr.enabled:
            tr.instant("sched:cancel", tid="scheduler",
                       args={"job_id": job_id, "state": ticket.state})
        return True

    def preempt(self, job_id: int, reason: str = "preempted") -> bool:
        """Preempt an ACTIVE job: it stops (journal intact) and its
        ticket parks in PREEMPTED until :meth:`resume`."""
        ticket = self.query(job_id)
        if ticket.state != ACTIVE or ticket.preempt_requested or (
            ticket.cancel_requested
        ):
            return False
        ticket.preempt_requested = True
        ticket.job.cancel(reason)
        tr = self.env.trace
        if tr.enabled:
            tr.instant("sched:preempt", tid="scheduler",
                       args={"job_id": job_id, "tenant": ticket.tenant})
        return True

    # ------------------------------------------------------------------
    # degraded mode (health-aware admission, ROADMAP item 4(c))
    # ------------------------------------------------------------------
    def attach_health(self, view, degraded: Optional[DegradedModePolicy] = None,
                      seed: int = 0) -> None:
        """Subscribe the service to a :class:`~repro.health.HealthView`.

        From here on the service fences FTA nodes the health plane marks
        down (draining their jobs through the preempt→resume journal
        path), parks retrieves while the library or catalog is unhealthy,
        and runs brownout admission while TSM is degraded or too much of
        the pool is fenced.  Readmission after recovery is rate-limited
        and jittered from a seeded stream so restored capacity is not
        stampeded.
        """
        if self._health is not None:
            raise SimulationError("health view already attached")
        self._health = view
        self._admission.health = view
        if degraded is not None:
            self._admission.brownout_policy = degraded
        self._degraded = self._admission.brownout_policy
        self._readmit_rng = RandomStreams(seed).stream("sched.readmit")
        view.subscribe(self._on_health_event)

    def _on_health_event(self, component: str, old: str, new: str) -> None:
        if component.startswith("node:"):
            node = component[len("node:"):]
            lm = self.system.loadmanager
            if node in lm.nodes:
                if new == "down" and node not in lm.fenced:
                    lm.fence(node)
                    self._trace_degraded("fence", node=node)
                    self._drain_node(node)
                elif new == "up" and node in lm.fenced:
                    lm.unfence(node)
                    self._trace_degraded("unfence", node=node)
        self._update_brownout()
        self._pump()

    def _drain_node(self, node: str) -> None:
        """Preempt every active job with ranks on *node*; the journal
        path resumes them on healthy nodes once they settle."""
        for ticket in list(self._active.values()):
            if node in ticket.nodes_used and not ticket.cancel_requested:
                if ticket.preempt_requested:
                    continue
                ticket.health_requeued = True
                self.health_requeues += 1
                self.preempt(ticket.job_id, reason=f"node {node} unhealthy")

    def _update_brownout(self) -> None:
        if self._health is None:
            return
        lm = self.system.loadmanager
        fenced_frac = len(lm.fenced) / max(1, len(lm.nodes))
        want = (
            not self._health.healthy("tsm")
            or fenced_frac >= self._degraded.node_down_brownout_fraction
        )
        if want and not self._admission.brownout:
            self._enter_brownout()
        elif not want and self._admission.brownout:
            self._exit_brownout()

    def _enter_brownout(self) -> None:
        self._admission.set_brownout(True)
        self._brownout_since = self.env.now
        self._readmit_epoch += 1  # abort any in-flight readmission
        self.brownout_log.append((self.env.now, "enter"))
        # shed the lowest-share tenants first, keeping at least one
        names = sorted(self._tenants.values(),
                       key=lambda t: (t.weight, t.name))
        n_shed = min(len(names) - 1,
                     int(self._degraded.shed_fraction * len(names)))
        self._shed = {t.name for t in names[:max(0, n_shed)]}
        self._trace_degraded("brownout-enter", shed=sorted(self._shed))

    def _exit_brownout(self) -> None:
        self._admission.set_brownout(False)
        self.brownout_log.append((self.env.now, "exit"))
        self._brownout_since = None
        self._trace_degraded("brownout-exit", shed=sorted(self._shed))
        self._readmit_epoch += 1
        if self._shed:
            # readmit one tenant at a time, highest share first, with
            # jittered pacing — no thundering herd onto the pools
            self.env.process(
                self._readmit(self._readmit_epoch),
                name="sched-readmit", daemon=True,
            )
        else:
            self._pump()

    def _readmit(self, epoch: int):
        order = sorted(
            (t for t in self._tenants.values() if t.name in self._shed),
            key=lambda t: (-t.weight, t.name),
        )
        for tenant in order:
            delay = self._degraded.readmit_interval
            if self._degraded.readmit_jitter > 0:
                delay += float(
                    self._readmit_rng.random() * self._degraded.readmit_jitter
                )
            yield self.env.timeout(delay)
            if epoch != self._readmit_epoch:
                return  # brownout re-entered; a fresh loop owns the rest
            self._shed.discard(tenant.name)
            self._trace_degraded("readmit", tenant=tenant.name)
            self._pump()

    @property
    def brownout(self) -> bool:
        return self._admission.brownout

    @property
    def shed_tenants(self) -> list[str]:
        return sorted(self._shed)

    def brownout_time(self) -> float:
        """Total simulated seconds spent in brownout so far."""
        total, since = 0.0, None
        for t, edge in self.brownout_log:
            if edge == "enter":
                since = t
            elif since is not None:
                total += t - since
                since = None
        if since is not None:
            total += self.env.now - since
        return total

    def degraded_summary(self) -> dict:
        """Deterministic account of the health plane's interventions."""
        return {
            "brownouts": sum(
                1 for _, e in self.brownout_log if e == "enter"
            ),
            "brownout_time": self.brownout_time(),
            "health_requeues": self.health_requeues,
            "shed": sorted(self._shed),
            "fenced": list(self.system.loadmanager.fenced),
        }

    def _trace_degraded(self, what: str, **args) -> None:
        tr = self.env.trace
        if tr.enabled:
            tr.instant(f"sched:{what}", tid="scheduler", cat="sched",
                       args=args)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _backlogged(self) -> list[str]:
        return [
            t for t, q in self._queues.items()
            if len(q) > 0 and t not in self._shed
        ]

    def _demanding(self) -> list[str]:
        """Tenants currently asking for service (queued or active)."""
        return [
            t for t in self._queues
            if len(self._queues[t]) > 0 or self._active_by_tenant[t] > 0
        ]

    def _pump(self) -> None:
        parked: set[str] = set()
        while True:
            backlogged = [t for t in self._backlogged() if t not in parked]
            if not backlogged:
                break
            tenant = self._fair.pick(backlogged)
            ticket = self._queues[tenant].peek()
            ok, reason = self._admission.admits(ticket)
            if not ok:
                if reason == "pool-shrunk":
                    # the FTA pool permanently shrank below this job's
                    # needs; settle it now instead of pinning the queue
                    ticket.blocked_on = reason
                    self._queues[tenant].pop()
                    ticket.cancel_requested = True
                    self._settle(ticket, CANCELLED)
                    self._note_depth()
                    continue
                if reason.endswith("-fenced"):
                    # a fenced dependency parks this *tenant's* head;
                    # other tenants' work (e.g. archives) still flows
                    if ticket.blocked_on != reason:
                        ticket.blocked_on = reason
                        tr = self.env.trace
                        if tr.enabled:
                            tr.instant("sched:blocked", tid="scheduler",
                                       args={"job_id": ticket.job_id,
                                             "reason": reason})
                    parked.add(tenant)
                    continue
                # Head-of-line wait: skipping the fair-share winner would
                # starve expensive jobs behind cheap ones.  Capacity
                # frees on the next completion, which pumps again.
                if ticket.blocked_on != reason:
                    ticket.blocked_on = reason
                    tr = self.env.trace
                    if tr.enabled:
                        tr.instant("sched:blocked", tid="scheduler",
                                   args={"job_id": ticket.job_id,
                                         "reason": reason})
                break
            self._queues[tenant].pop()
            self._dispatch(ticket)
        self._check_drained()

    def _dispatch(self, ticket: JobTicket) -> None:
        ticket.blocked_on = ""
        if ticket.resume_of is not None:
            cfg = replace(ticket.cfg, restart=True)
            job = self.system.resume_job(ticket.journal, cfg)
        else:
            ticket.journal = JobJournal(self.env)
            if ticket.op == "archive":
                job = self.system.archive(ticket.src, ticket.dst, ticket.cfg,
                                          journal=ticket.journal)
            else:
                job = self.system.retrieve(ticket.src, ticket.dst, ticket.cfg,
                                           journal=ticket.journal)
        ticket.job = job
        ticket.state = ACTIVE
        ticket.dispatched = self.env.now
        ticket.nodes_used = [
            job.ctx.node_of_rank(r) for r in sorted(job.live_ranks)
        ]
        self._admission.on_dispatch(ticket)
        self._active[ticket.job_id] = ticket
        self._active_by_tenant[ticket.tenant] += 1
        self._fair.charge(ticket.tenant, ticket.cost)
        self.dispatch_log.append(ticket.job_id)
        deviation = self._fair.deviation(self._demanding())
        self.deviation_samples.append(deviation)

        self.metrics.counter("sched.dispatched").inc()
        self.metrics.histogram("sched.wait_s").observe(ticket.wait_time)
        self._note_depth()
        tr = self.env.trace
        if tr.enabled:
            tr.instant("sched:dispatch", tid="scheduler",
                       args={"job_id": ticket.job_id,
                             "tenant": ticket.tenant,
                             "wait": round(ticket.wait_time, 9),
                             "cost": ticket.cost})
            tr.counter("sched:fairshare_dev", round(deviation, 9),
                       tid="scheduler")
        job.done.callbacks.append(
            lambda ev, t=ticket: self._on_job_done(t, ev)
        )

    def _on_job_done(self, ticket: JobTicket, ev: Event) -> None:
        self._admission.on_complete(ticket)
        del self._active[ticket.job_id]
        self._active_by_tenant[ticket.tenant] -= 1
        ticket.stats = ev.value if ev.ok else None
        aborted = ticket.stats is None or ticket.stats.aborted
        if ticket.cancel_requested and aborted:
            state = CANCELLED
        elif (ticket.preempt_requested and aborted) or not ev.ok:
            # a preemption that landed, or a crash-failed job: either
            # way the journal survives and the ticket is resumable
            state = PREEMPTED
        else:
            # includes cancel/preempt requests that raced completion —
            # the job finished before the Abort could land
            state = COMPLETED
        self._settle(ticket, state)
        if state == PREEMPTED and ticket.health_requeued and not (
            ticket.cancel_requested
        ):
            # node-drain preemption: requeue immediately on the surviving
            # pool — the resume shares the journal, so nothing re-copies
            self.resume(ticket.job_id)
        self._pump()

    def _settle(self, ticket: JobTicket, state: str) -> None:
        ticket.state = state
        ticket.finished = self.env.now
        self.metrics.counter(f"sched.{state}").inc()
        self._note_depth()
        tr = self.env.trace
        if tr.enabled:
            tr.instant("sched:complete", tid="scheduler",
                       args={"job_id": ticket.job_id,
                             "tenant": ticket.tenant, "state": state})
        if not ticket.done.triggered:
            ticket.done.succeed(ticket.stats)
        self._check_drained()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def active_jobs(self) -> int:
        return len(self._active)

    @property
    def in_flight(self) -> int:
        """Jobs in the system: queued + active."""
        return self.queue_depth + self.active_jobs

    def _note_depth(self) -> None:
        depth, active = self.queue_depth, self.active_jobs
        self.metrics.gauge("sched.queue_depth").set(depth)
        self.metrics.gauge("sched.active").set(active)
        if depth + active > self.peak_in_flight:
            self.peak_in_flight = depth + active
        tr = self.env.trace
        if tr.enabled:
            tr.counter("sched:queue_depth", depth, tid="scheduler")
            tr.counter("sched:active", active, tid="scheduler")

    def drain(self) -> Event:
        """Event that fires when no job is queued or active."""
        ev = self.env.event()
        if self.in_flight == 0:
            ev.succeed(self.summary())
        else:
            self._drain_waiters.append(ev)
        return ev

    def _check_drained(self) -> None:
        if self.in_flight == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            summary = self.summary()
            for ev in waiters:
                ev.succeed(summary)

    def summary(self) -> dict:
        """Deterministic account of everything the service has done."""
        counts = {
            name: self.metrics.counter(f"sched.{name}").snapshot()
            for name in ("submitted", "dispatched", "completed",
                         "cancelled", "preempted", "resumed")
        }
        return {
            **counts,
            "queued": self.queue_depth,
            "active": self.active_jobs,
            "peak_in_flight": self.peak_in_flight,
            "tenants": len(self._tenants),
            "max_deviation": max(self.deviation_samples, default=0.0),
            "dispatched_cost": dict(
                sorted(self._fair.dispatched_cost.items())
            ),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ArchiveService tenants={len(self._tenants)} "
            f"queued={self.queue_depth} active={self.active_jobs}>"
        )
