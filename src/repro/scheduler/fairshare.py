"""Weighted fair-share across tenants (stride scheduling).

Every tenant carries a *virtual time*.  Dispatching a job of cost ``c``
(its Worker-rank count — the scarce FTA data movers) advances the
tenant's virtual time by ``c / weight``; the scheduler always serves the
backlogged tenant with the smallest virtual time (ties broken by name,
so dispatch order is deterministic).  Two classical properties follow:

* **proportional share** — over any interval in which a set of tenants
  stays backlogged, tenant ``t`` receives ``weight_t / sum(weights)`` of
  the dispatched cost, to within one job's cost per tenant pair;
* **no starvation** — each dispatch strictly advances the chosen
  tenant's virtual time while leaving the others in place, so every
  backlogged tenant becomes the minimum after finitely many dispatches.

A tenant idle for a while must not bank credit and then burst past
everyone: when it becomes backlogged again its virtual time is advanced
to the global virtual time (the largest virtual time ever served), the
standard lag-clamp of stride/start-time fair queueing.

:meth:`deviation` is the observability half — the number the S1
benchmark bounds via trace assertions.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.sim import SimulationError

__all__ = ["FairShare"]


class FairShare:
    """Stride-scheduling accountant over a fixed tenant population."""

    def __init__(self) -> None:
        self._weights: dict[str, float] = {}
        self._vtime: dict[str, float] = {}
        #: largest virtual time ever served (lag clamp for idle tenants)
        self._gvt = 0.0
        #: cumulative dispatched cost per tenant (deviation bookkeeping)
        self.dispatched_cost: dict[str, float] = {}

    def add_tenant(self, name: str, weight: float = 1.0) -> None:
        if weight <= 0:
            raise SimulationError(
                f"tenant {name!r} needs a positive weight, got {weight}"
            )
        if name in self._weights:
            raise SimulationError(f"tenant {name!r} already registered")
        self._weights[name] = float(weight)
        self._vtime[name] = self._gvt
        self.dispatched_cost[name] = 0.0

    def weight_of(self, name: str) -> float:
        return self._weights[name]

    def on_backlogged(self, name: str) -> None:
        """Clamp an idle tenant's lag when it becomes backlogged again."""
        if self._vtime[name] < self._gvt:
            self._vtime[name] = self._gvt

    def pick(self, backlogged: Iterable[str]) -> Optional[str]:
        """The backlogged tenant to serve next: min (virtual time, name)."""
        best: Optional[str] = None
        best_vt = 0.0
        for name in backlogged:
            vt = self._vtime[name]
            if best is None or vt < best_vt or (vt == best_vt and name < best):
                best, best_vt = name, vt
        return best

    def charge(self, name: str, cost: float) -> None:
        """Account a dispatch of *cost* against *name*."""
        self._vtime[name] += cost / self._weights[name]
        if self._vtime[name] > self._gvt:
            self._gvt = self._vtime[name]
        self.dispatched_cost[name] += cost

    def deviation(self, among: Iterable[str]) -> float:
        """Max |served fraction − weight fraction| over *among*.

        Both fractions are normalised within *among* (typically the
        currently backlogged tenants): 0.0 is perfect weighted sharing,
        1.0 is one tenant taking everything it wasn't owed.  Returns 0.0
        until anything has been dispatched.
        """
        names = list(among)
        if not names:
            return 0.0
        total_cost = sum(self.dispatched_cost[n] for n in names)
        if total_cost <= 0:
            return 0.0
        total_weight = sum(self._weights[n] for n in names)
        worst = 0.0
        for n in names:
            served = self.dispatched_cost[n] / total_cost
            owed = self._weights[n] / total_weight
            dev = abs(served - owed)
            if dev > worst:
                worst = dev
        return worst

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<FairShare tenants={len(self._weights)} gvt={self._gvt:.3f}>"
