"""Job tickets and per-tenant priority queues.

Every submission becomes a :class:`JobTicket` that lives through the
state machine::

    QUEUED --dispatch--> ACTIVE --+--> COMPLETED
       |                          +--> CANCELLED   (operator cancel)
       +--cancel--> CANCELLED     +--> PREEMPTED   (scheduler preempt /
                                        crash; journal retained, the
                                        ticket is resumable)

Within one tenant the queue is priority-ordered (higher ``priority``
first), FIFO within a priority level.  The heap uses lazy tombstone
cancellation (the same discipline as the kernel's stores): ``remove``
marks the ticket and ``pop`` skips dead entries, so a mid-run cancel of
a deeply queued job is O(log n) amortised, not O(n).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.pftool.config import PftoolConfig
from repro.sim import Event

__all__ = [
    "ACTIVE",
    "CANCELLED",
    "COMPLETED",
    "JobTicket",
    "PREEMPTED",
    "QUEUED",
    "TERMINAL_STATES",
    "TenantQueue",
]

QUEUED = "queued"
ACTIVE = "active"
COMPLETED = "completed"
CANCELLED = "cancelled"
PREEMPTED = "preempted"

TERMINAL_STATES = frozenset({COMPLETED, CANCELLED, PREEMPTED})


@dataclass
class JobTicket:
    """One submission's identity, parameters and lifecycle record."""

    job_id: int
    tenant: str
    op: str  # 'archive' | 'retrieve'
    src: str
    dst: str
    cfg: PftoolConfig
    priority: int = 0
    state: str = QUEUED
    submitted: float = 0.0
    dispatched: Optional[float] = None
    finished: Optional[float] = None
    #: the job's journal (bound at dispatch; survives preemption so a
    #: resume converges to the oracle without re-copying landed chunks)
    journal: object = None
    #: the live PftoolJob while ACTIVE
    job: object = None
    #: final JobStats (None for never-dispatched cancels)
    stats: object = None
    #: fires once, when the ticket reaches a terminal state
    done: Event = None
    #: job_id of the preempted ticket this one resumes, if any
    resume_of: Optional[int] = None
    cancel_requested: bool = False
    preempt_requested: bool = False
    #: preempted by the health plane (node drain) — the service auto-
    #: resumes these once they settle, no operator involved
    health_requeued: bool = False
    #: admission denial reason while head-of-queue (observability)
    blocked_on: str = ""
    #: FTA nodes (one entry per rank) charged to the LoadManager
    nodes_used: list = field(default_factory=list)

    @property
    def cost(self) -> float:
        """Fair-share cost: Worker ranks are the scarce FTA data movers."""
        return float(self.cfg.num_workers)

    @property
    def ranks(self) -> int:
        """Rank-slots this job occupies on the FTA pool."""
        return self.cfg.total_ranks

    @property
    def wait_time(self) -> float:
        """Queue wait: submit -> dispatch (0 until dispatched)."""
        if self.dispatched is None:
            return 0.0
        return self.dispatched - self.submitted

    def snapshot(self) -> dict:
        """Serializable view for ``query`` / operator tooling."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "op": self.op,
            "src": self.src,
            "dst": self.dst,
            "priority": self.priority,
            "state": self.state,
            "submitted": self.submitted,
            "dispatched": self.dispatched,
            "finished": self.finished,
            "wait_time": self.wait_time,
            "resume_of": self.resume_of,
            "blocked_on": self.blocked_on,
        }


class TenantQueue:
    """Priority-ordered queue of one tenant's pending tickets."""

    def __init__(self, tenant: str) -> None:
        self.tenant = tenant
        #: (-priority, seq, ticket): max-priority first, FIFO within
        self._heap: list[tuple[int, int, JobTicket]] = []
        self._seq = itertools.count()
        self._queued_ids: set[int] = set()
        self._removed: set[int] = set()

    def push(self, ticket: JobTicket) -> None:
        heapq.heappush(self._heap, (-ticket.priority, next(self._seq), ticket))
        self._queued_ids.add(ticket.job_id)

    def _compact(self) -> None:
        while self._heap and self._heap[0][2].job_id in self._removed:
            _, _, dead = heapq.heappop(self._heap)
            self._removed.discard(dead.job_id)

    def peek(self) -> Optional[JobTicket]:
        self._compact()
        return self._heap[0][2] if self._heap else None

    def pop(self) -> Optional[JobTicket]:
        self._compact()
        if not self._heap:
            return None
        ticket = heapq.heappop(self._heap)[2]
        self._queued_ids.discard(ticket.job_id)
        return ticket

    def remove(self, job_id: int) -> bool:
        """Tombstone a queued ticket; True if it was present.  O(1) —
        the heap entry dies lazily when it reaches the top."""
        if job_id not in self._queued_ids:
            return False
        self._queued_ids.discard(job_id)
        self._removed.add(job_id)
        return True

    def __len__(self) -> int:
        return len(self._queued_ids)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TenantQueue {self.tenant} depth={len(self)}>"
