"""The LoadManager (§4.1.2 item 1).

Runs periodically, tracks per-node load (active PFTool ranks in our
model, a stand-in for CPU load average), and produces the MPI machine
list sorted ascending by load — so new jobs land on the least busy FTA
nodes first.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim import Environment, SimulationError

__all__ = ["LoadManager"]


class LoadManager:
    """Tracks FTA node load and emits sorted machine lists."""

    def __init__(self, env: Environment, nodes: Sequence[str]) -> None:
        if not nodes:
            raise SimulationError("LoadManager needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self._load: dict[str, int] = {n: 0 for n in self.nodes}

    def machine_list(self) -> list[str]:
        """Nodes sorted by (load, name) — the 'timely MPI machine list'."""
        return sorted(self.nodes, key=lambda n: (self._load[n], n))

    def job_started(self, nodes_used: Sequence[str]) -> None:
        for n in nodes_used:
            if n in self._load:
                self._load[n] += 1

    def job_finished(self, nodes_used: Sequence[str]) -> None:
        for n in nodes_used:
            if n in self._load:
                self._load[n] = max(0, self._load[n] - 1)

    def load_of(self, node: str) -> int:
        return self._load.get(node, 0)

    def __repr__(self) -> str:
        return f"<LoadManager {self._load}>"
