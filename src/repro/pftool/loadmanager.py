"""The LoadManager (§4.1.2 item 1).

Runs periodically, tracks per-node load (active PFTool ranks in our
model, a stand-in for CPU load average), and produces the MPI machine
list sorted ascending by load — so new jobs land on the least busy FTA
nodes first.

Load accounting is *strict*: a node name the LoadManager was never told
about is a machine-list/topology mismatch (the operator edited one list
but not the other), and silently dropping its counts would let the
scheduler over-commit that node forever.  Unknown names raise
:class:`~repro.sim.SimulationError`; a pool that legitimately grows
registers new nodes first via :meth:`register`.
"""

from __future__ import annotations

from typing import Sequence

from repro.sim import Environment, SimulationError

__all__ = ["LoadManager"]


class LoadManager:
    """Tracks FTA node load and emits sorted machine lists."""

    def __init__(self, env: Environment, nodes: Sequence[str]) -> None:
        if not nodes:
            raise SimulationError("LoadManager needs at least one node")
        self.env = env
        self.nodes = list(nodes)
        self._load: dict[str, int] = {n: 0 for n in self.nodes}
        #: nodes temporarily withdrawn from placement (health-fenced);
        #: still registered, still accounted, never in the machine list
        self._fenced: set[str] = set()

    def register(self, node: str) -> None:
        """Add *node* to the pool (idempotent) — the explicit path for a
        growing FTA pool; accounting against unregistered names raises."""
        if node not in self._load:
            self.nodes.append(node)
            self._load[node] = 0

    def deregister(self, node: str) -> None:
        """Permanently remove *node* from the pool.

        Refuses while the node still carries load — a shrinking pool must
        drain (or requeue) its jobs first, or the slot accounting would
        silently leak the in-flight ranks.
        """
        if node not in self._load:
            raise SimulationError(
                f"cannot deregister unknown node {node!r} "
                f"(known: {sorted(self._load)})"
            )
        if self._load[node] != 0:
            raise SimulationError(
                f"cannot deregister node {node!r} with load "
                f"{self._load[node]}; drain or requeue its jobs first"
            )
        self.nodes.remove(node)
        del self._load[node]
        self._fenced.discard(node)

    # -- fencing ---------------------------------------------------------
    def fence(self, node: str) -> None:
        """Withdraw *node* from placement without forgetting it
        (idempotent).  Existing jobs keep their accounting; new machine
        lists skip the node until :meth:`unfence`."""
        if node not in self._load:
            raise SimulationError(
                f"cannot fence unknown node {node!r} "
                f"(known: {sorted(self._load)})"
            )
        self._fenced.add(node)

    def unfence(self, node: str) -> None:
        """Return a fenced node to placement (idempotent)."""
        if node not in self._load:
            raise SimulationError(
                f"cannot unfence unknown node {node!r} "
                f"(known: {sorted(self._load)})"
            )
        self._fenced.discard(node)

    @property
    def fenced(self) -> list[str]:
        return sorted(self._fenced)

    @property
    def active_nodes(self) -> list[str]:
        """Registered nodes currently eligible for placement."""
        return [n for n in self.nodes if n not in self._fenced]

    def machine_list(self) -> list[str]:
        """Nodes sorted by (load, name) — the 'timely MPI machine list'.

        Fenced nodes are excluded: the LoadManager hands the scheduler
        only nodes it may actually place ranks on.
        """
        return sorted(
            (n for n in self.nodes if n not in self._fenced),
            key=lambda n: (self._load[n], n),
        )

    def _check_known(self, nodes_used: Sequence[str]) -> None:
        unknown = sorted({n for n in nodes_used if n not in self._load})
        if unknown:
            raise SimulationError(
                f"LoadManager got unknown node(s) {unknown}; machine list "
                f"and topology disagree (known: {sorted(self._load)}) — "
                "register() new nodes before accounting against them"
            )

    def job_started(self, nodes_used: Sequence[str]) -> None:
        self._check_known(nodes_used)
        fenced = sorted({n for n in nodes_used if n in self._fenced})
        if fenced:
            raise SimulationError(
                f"job placed on fenced node(s) {fenced}; the dispatcher "
                "must re-resolve its machine list after a pool change"
            )
        for n in nodes_used:
            self._load[n] += 1

    def job_finished(self, nodes_used: Sequence[str]) -> None:
        self._check_known(nodes_used)
        for n in nodes_used:
            self._load[n] = max(0, self._load[n] - 1)

    def load_of(self, node: str) -> int:
        if node not in self._load:
            raise SimulationError(
                f"LoadManager was never told about node {node!r} "
                f"(known: {sorted(self._load)})"
            )
        return self._load[node]

    @property
    def total_load(self) -> int:
        """Sum of per-node loads (active rank-slots across the pool)."""
        return sum(self._load.values())

    def free_slots(self, slots_per_node: int) -> int:
        """Rank-slots still available under a per-node concurrency cap.

        Fenced nodes contribute nothing: their remaining headroom is not
        placeable, so advertising it would admit jobs the dispatcher can
        no longer seat.
        """
        return sum(
            max(0, slots_per_node - self._load[n])
            for n in self.nodes
            if n not in self._fenced
        )

    def __repr__(self) -> str:
        return f"<LoadManager {self._load}>"
