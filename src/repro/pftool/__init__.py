"""PFTool: the parallel file/archive tool (the paper's frontend, §4.1).

An MPI-structured program reproduced rank-for-rank on the simulator:

====================  ======================================================
rank                  role (paper §4.1.1)
====================  ======================================================
Manager               conductor: parallel tree walk, DirQ/NameQ/CopyQ/
                      TapeCQ queues, job assignment, completion detection
OutPutProc            collects output/progress lines
WatchDog              periodic progress recorder + stall killer
ReadDir x R           expose directories
Worker x W            stat files, copy data (chunked for large files)
TapeProc x T          tape-ordered restore of migrated files
====================  ======================================================

Commands: :func:`pfls` (parallel list), :func:`pfcp` (parallel copy),
:func:`pfcm` (parallel compare) — §4.1.3.

Key behaviours reproduced: single-large-file N-to-1 chunked copies,
ArchiveFUSE N-to-N for very large files, tape-ordered recall via the
tape index DB, restartable transfers with per-chunk good/bad marks, and
runtime-tunable process counts/chunk sizes (§4.1.2).
"""

from repro.pftool.config import PftoolConfig, RuntimeContext
from repro.pftool.job import PftoolJob, pfcm, pfcp, pfdu, pfls
from repro.pftool.loadmanager import LoadManager
from repro.pftool.stats import JobStats

__all__ = [
    "JobStats",
    "LoadManager",
    "PftoolConfig",
    "PftoolJob",
    "RuntimeContext",
    "pfcm",
    "pfcp",
    "pfdu",
    "pfls",
]
