"""PFTool job orchestration and the pfls/pfcp/pfcm commands.

A :class:`PftoolJob` builds the communicator, spawns every rank as a DES
process, and exposes a completion event that fires with the job's
:class:`~repro.pftool.stats.JobStats`.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.monitor import default_monitor
from repro.mpisim import SimComm
from repro.pftool.config import PftoolConfig, RuntimeContext
from repro.pftool.manager import Abort, Manager
from repro.pftool.messages import TAG_RESULT
from repro.pftool.ranks import (
    output_proc,
    readdir_proc,
    tape_proc,
    watchdog_proc,
    worker_proc,
)
from repro.pftool.stats import JobStats
from repro.sim import Environment, Event, SimulationError

__all__ = ["PftoolJob", "pfcm", "pfcp", "pfdu", "pfls"]


class PftoolJob:
    """One invocation of pfls / pfcp / pfcm.

    Rank layout: 0 Manager, 1 OutPutProc, 2 WatchDog, then ReadDir
    ranks, Worker ranks, TapeProc ranks.
    """

    def __init__(
        self,
        env: Environment,
        ctx: RuntimeContext,
        op: str,
        src: str,
        dst: Optional[str] = None,
        cfg: Optional[PftoolConfig] = None,
    ) -> None:
        if op not in ("copy", "list", "compare", "du"):
            raise SimulationError(f"unknown pftool op {op!r}")
        if op in ("copy", "compare") and dst is None:
            raise SimulationError(f"{op} needs a destination")
        self.env = env
        self.ctx = ctx
        self.op = op
        self.cfg = cfg or PftoolConfig()
        self.stats = JobStats(op=op)
        self.done: Event = env.event()
        self.comm = SimComm(env, self.cfg.total_ranks)
        self._manager = Manager(
            env, self.comm, self.cfg, ctx, op, src, dst, self.stats, self.done
        )
        #: ranks that actually run a process (tape ranks may be skipped)
        self.live_ranks: set[int] = set()
        monitor = ctx.monitor if ctx.monitor is not None else default_monitor()
        if monitor is not None:
            monitor.attach(self)
        self._spawn_ranks()

    def _spawn_ranks(self) -> None:
        env, comm, cfg, ctx = self.env, self.comm, self.cfg, self.ctx
        env.process(self._manager.run(), name="pftool-manager")
        env.process(output_proc(env, comm, 1, self.stats), name="pftool-output")
        env.process(
            watchdog_proc(env, comm, 2, cfg, self.stats), name="pftool-watchdog"
        )
        self.live_ranks.update((0, 1, 2))
        rank = 3
        for _ in range(cfg.num_readdir):
            env.process(
                readdir_proc(env, comm, rank, cfg, ctx), name=f"pftool-readdir{rank}"
            )
            self.live_ranks.add(rank)
            rank += 1
        for _ in range(cfg.num_workers):
            env.process(
                worker_proc(env, comm, rank, cfg, ctx), name=f"pftool-worker{rank}"
            )
            self.live_ranks.add(rank)
            rank += 1
        for _ in range(cfg.num_tapeprocs):
            if ctx.tsm is not None:
                env.process(
                    tape_proc(env, comm, rank, cfg, ctx), name=f"pftool-tape{rank}"
                )
                self.live_ranks.add(rank)
            rank += 1

    def cancel(self, reason: str = "cancelled by user") -> None:
        """Abort the job (used by restart experiments / operators)."""
        self.comm.send(0, 0, Abort(reason), TAG_RESULT)

    def __repr__(self) -> str:
        return f"<PftoolJob {self.op} ranks={self.cfg.total_ranks}>"


def pfcp(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    dst: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel copy (``pfcp``): tree-walk *src* and copy to *dst*.

    Returns the job; ``env.run(job.done)`` yields its JobStats.
    """
    return PftoolJob(env, ctx, "copy", src, dst, cfg)


def pfls(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel list (``pfls``): tree-walk and stat, no data movement."""
    return PftoolJob(env, ctx, "list", src, None, cfg)


def pfdu(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel disk-usage rollup (``pfdu``): per-subtree file/byte totals
    from a parallel tree walk — the tape-safe answer to ``du -s *``."""
    return PftoolJob(env, ctx, "du", src, None, cfg)


def pfcm(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    dst: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel compare (``pfcm``): byte-content verification of a copy."""
    return PftoolJob(env, ctx, "compare", src, dst, cfg)
