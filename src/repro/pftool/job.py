"""PFTool job orchestration and the pfls/pfcp/pfcm commands.

A :class:`PftoolJob` builds the communicator, spawns every rank as a DES
process, and exposes a completion event that fires with the job's
:class:`~repro.pftool.stats.JobStats`.

Crash recovery (see :mod:`repro.recovery`): pass a
:class:`~repro.recovery.journal.JobJournal` and the Manager appends a
completion record as each chunk/file lands; :meth:`PftoolJob.crash` and
:meth:`PftoolJob.crash_rank` model the whole job (or one FTA rank) dying
mid-flight; :meth:`PftoolJob.resume` rebuilds a job from the journal and
re-copies only what never made it.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.analysis.monitor import default_monitor
from repro.faults import CrashFault
from repro.mpisim import SimComm
from repro.pftool.config import PftoolConfig, RuntimeContext
from repro.pftool.manager import Abort, Manager
from repro.pftool.messages import TAG_RESULT
from repro.pftool.ranks import (
    output_proc,
    readdir_proc,
    tape_proc,
    watchdog_proc,
    worker_proc,
)
from repro.pftool.stats import JobStats
from repro.recovery.journal import JobJournal
from repro.sim import Environment, Event, Process, SimulationError

__all__ = ["PftoolJob", "pfcm", "pfcp", "pfdu", "pfls"]


class PftoolJob:
    """One invocation of pfls / pfcp / pfcm.

    Rank layout: 0 Manager, 1 OutPutProc, 2 WatchDog, then ReadDir
    ranks, Worker ranks, TapeProc ranks.
    """

    def __init__(
        self,
        env: Environment,
        ctx: RuntimeContext,
        op: str,
        src: str,
        dst: Optional[str] = None,
        cfg: Optional[PftoolConfig] = None,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if op not in ("copy", "list", "compare", "du"):
            raise SimulationError(f"unknown pftool op {op!r}")
        if op in ("copy", "compare") and dst is None:
            raise SimulationError(f"{op} needs a destination")
        self.env = env
        self.ctx = ctx
        self.op = op
        self.src = src
        self.dst = dst
        self.cfg = cfg or PftoolConfig()
        self.stats = JobStats(op=op)
        self.done: Event = env.event()
        self.journal = journal
        if journal is not None:
            if journal.job_meta is None:
                journal.open_job(
                    op, src, dst or "",
                    src_fs=getattr(ctx.src_fs, "name", ""),
                    dst_fs=getattr(ctx.dst_fs, "name", ""),
                )
            elif not self.cfg.restart:
                # A used journal on a fresh job would silently inherit the
                # previous job's meta — and its chunk/file records would
                # dedupe work this job never did.  Only the restart path
                # (PftoolJob.resume) may bind a journal with history.
                meta = journal.job_meta
                raise SimulationError(
                    f"journal already belongs to a job ({meta['op']} "
                    f"{meta['src']!r} -> {meta['dst']!r}); pass a fresh "
                    "journal, or resume via PftoolJob.resume"
                )
        self.comm = SimComm(env, self.cfg.total_ranks)
        if ctx.fault_injector is not None:
            ctx.fault_injector.bind_comm(self.comm, ctx.node_of_rank)
        self._manager = Manager(
            env, self.comm, self.cfg, ctx, op, src, dst, self.stats,
            self.done, journal=journal,
        )
        #: ranks that actually run a process (tape ranks may be skipped)
        self.live_ranks: set[int] = set()
        #: rank -> its kernel Process, for crash injection
        self.rank_procs: dict[int, Process] = {}
        monitor = ctx.monitor if ctx.monitor is not None else default_monitor()
        if monitor is not None:
            monitor.attach(self)
            # Long-running services reuse one monitor across thousands of
            # jobs; detach on completion (success or crash-fail) so the
            # monitor never accumulates dead jobs' state.
            self.done.callbacks.append(lambda _ev: monitor.detach(self))
        self._spawn_ranks()

    def _spawn_ranks(self) -> None:
        env, comm, cfg, ctx = self.env, self.comm, self.cfg, self.ctx
        procs = self.rank_procs
        procs[0] = env.process(self._manager.run(), name="pftool-manager")
        procs[1] = env.process(
            output_proc(env, comm, 1, self.stats), name="pftool-output"
        )
        procs[2] = env.process(
            watchdog_proc(env, comm, 2, cfg, self.stats), name="pftool-watchdog"
        )
        self.live_ranks.update((0, 1, 2))
        rank = 3
        for _ in range(cfg.num_readdir):
            procs[rank] = env.process(
                readdir_proc(env, comm, rank, cfg, ctx), name=f"pftool-readdir{rank}"
            )
            self.live_ranks.add(rank)
            rank += 1
        for _ in range(cfg.num_workers):
            procs[rank] = env.process(
                worker_proc(env, comm, rank, cfg, ctx), name=f"pftool-worker{rank}"
            )
            self.live_ranks.add(rank)
            rank += 1
        for _ in range(cfg.num_tapeprocs):
            if ctx.tsm is not None:
                procs[rank] = env.process(
                    tape_proc(env, comm, rank, cfg, ctx), name=f"pftool-tape{rank}"
                )
                self.live_ranks.add(rank)
            rank += 1

    @property
    def worker_ranks(self) -> list[int]:
        """The Worker (FTA data-mover) ranks, in rank order."""
        first = 3 + self.cfg.num_readdir
        return list(range(first, first + self.cfg.num_workers))

    def cancel(self, reason: str = "cancelled by user") -> None:
        """Abort the job (used by restart experiments / operators).

        A cancel that races completion (the Manager already broadcast
        Exit and will never read its mailbox again) is a no-op — sending
        the Abort anyway would strand it, which the InvariantMonitor
        rightly flags as lost protocol traffic.
        """
        if self.done.triggered or self._manager.finishing:
            return
        self.comm.send(0, 0, Abort(reason), TAG_RESULT)

    # -- crash model ---------------------------------------------------
    def crash(self, cause=None) -> None:
        """Kill every rank at once (the whole MPI job dies).

        In-flight chunk copies are torn down mid-transfer; nothing is
        retried and no statistics settle.  ``done`` fails with the crash
        so ``env.run(job.done)`` surfaces it — recovery goes through
        :meth:`resume` with the job's journal.
        """
        if not isinstance(cause, BaseException):
            cause = CrashFault(
                f"pftool {self.op} crashed at t={self.env.now:.1f}"
            )
        for proc in self.rank_procs.values():
            proc.kill(cause)
        self.stats.aborted = True
        self.stats.abort_reason = str(cause)
        if not self.done.triggered:
            self.done.fail(cause)

    def crash_rank(self, rank: int, cause=None) -> None:
        """Kill a single rank (one FTA node's mover process dies).

        The rest of the job keeps draining; work assigned to the dead
        rank never completes, so the WatchDog's stall detector aborts the
        job once everything else has finished — the operator then resumes
        from the journal.
        """
        proc = self.rank_procs.get(rank)
        if proc is None:
            return
        if not isinstance(cause, BaseException):
            cause = CrashFault(
                f"pftool rank {rank} crashed at t={self.env.now:.1f}"
            )
        proc.kill(cause)

    @classmethod
    def resume(
        cls,
        env: Environment,
        ctx: RuntimeContext,
        journal: JobJournal,
        cfg: Optional[PftoolConfig] = None,
    ) -> "PftoolJob":
        """Rebuild a job from its journal and finish the remaining work.

        The restart re-walks the tree (directory state is authoritative)
        but consults the journal in ``_dst_current`` / ``_restart_ranges``
        so whole files and chunk ranges recorded complete are never
        re-copied.
        """
        meta = journal.job_meta
        if meta is None:
            raise SimulationError("journal has no job_open record to resume")
        cfg = replace(cfg or PftoolConfig(), restart=True)
        return cls(env, ctx, meta["op"], meta["src"], meta["dst"] or None,
                   cfg, journal=journal)

    def __repr__(self) -> str:
        return f"<PftoolJob {self.op} ranks={self.cfg.total_ranks}>"


def pfcp(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    dst: str,
    cfg: Optional[PftoolConfig] = None,
    journal: Optional[JobJournal] = None,
) -> PftoolJob:
    """Parallel copy (``pfcp``): tree-walk *src* and copy to *dst*.

    Returns the job; ``env.run(job.done)`` yields its JobStats.
    """
    return PftoolJob(env, ctx, "copy", src, dst, cfg, journal=journal)


def pfls(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel list (``pfls``): tree-walk and stat, no data movement."""
    return PftoolJob(env, ctx, "list", src, None, cfg)


def pfdu(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel disk-usage rollup (``pfdu``): per-subtree file/byte totals
    from a parallel tree walk — the tape-safe answer to ``du -s *``."""
    return PftoolJob(env, ctx, "du", src, None, cfg)


def pfcm(
    env: Environment,
    ctx: RuntimeContext,
    src: str,
    dst: str,
    cfg: Optional[PftoolConfig] = None,
) -> PftoolJob:
    """Parallel compare (``pfcm``): byte-content verification of a copy."""
    return PftoolJob(env, ctx, "compare", src, dst, cfg)
