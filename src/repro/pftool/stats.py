"""Job statistics and the WatchDog's progress history.

The Manager owns a single :class:`JobStats`; the WatchDog samples it on
an interval, keeping the windowed counters the paper describes (files /
bytes moved in the last T minutes) and detecting stalls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobStats", "WatchdogSample"]


@dataclass
class WatchdogSample:
    """One WatchDog observation window."""

    t: float
    files_total: int
    bytes_total: int
    files_window: int
    bytes_window: int


@dataclass
class JobStats:
    """Counters for one PFTool job (the §4.1.1 'final statistics report')."""

    op: str = "copy"
    started: float = 0.0
    finished: float = 0.0
    dirs_walked: int = 0
    files_seen: int = 0
    files_copied: int = 0
    files_skipped: int = 0  # restart: destination already current
    files_failed: int = 0
    files_compared: int = 0
    compare_mismatches: int = 0
    bytes_copied: int = 0
    bytes_skipped: int = 0
    tape_files_restored: int = 0
    tape_bytes_restored: int = 0
    tape_volumes_touched: int = 0
    chunks_copied: int = 0
    fuse_files: int = 0
    aborted: bool = False
    abort_reason: str = ""
    #: requeued work units per failure class ('drive', 'tsm', 'fs', ...)
    retries_by_class: dict[str, int] = field(default_factory=dict)
    #: permanent (retry-exhausted or non-retryable) failures per class
    failures_by_class: dict[str, int] = field(default_factory=dict)
    #: InvariantMonitor findings by kind ('leaked-receive', ...) when the
    #: monitor runs in counting (non-strict) mode
    invariant_violations: dict[str, int] = field(default_factory=dict)
    watchdog_history: list[WatchdogSample] = field(default_factory=list)
    output_lines: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    @property
    def data_rate(self) -> float:
        """Average copy rate in bytes/second."""
        d = self.duration
        return self.bytes_copied / d if d > 0 else 0.0

    @property
    def avg_file_size(self) -> float:
        return self.bytes_copied / self.files_copied if self.files_copied else 0.0

    @property
    def total_retries(self) -> int:
        return sum(self.retries_by_class.values())

    def to_dict(self) -> dict:
        """Serializable record of the job (for operation logs / replays)."""
        return {
            "op": self.op,
            "started": self.started,
            "finished": self.finished,
            "duration": self.duration,
            "dirs_walked": self.dirs_walked,
            "files_seen": self.files_seen,
            "files_copied": self.files_copied,
            "files_skipped": self.files_skipped,
            "files_failed": self.files_failed,
            "files_compared": self.files_compared,
            "compare_mismatches": self.compare_mismatches,
            "bytes_copied": self.bytes_copied,
            "bytes_skipped": self.bytes_skipped,
            "data_rate": self.data_rate,
            "avg_file_size": self.avg_file_size,
            "tape_files_restored": self.tape_files_restored,
            "tape_bytes_restored": self.tape_bytes_restored,
            "tape_volumes_touched": self.tape_volumes_touched,
            "chunks_copied": self.chunks_copied,
            "fuse_files": self.fuse_files,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "retries_by_class": dict(self.retries_by_class),
            "failures_by_class": dict(self.failures_by_class),
            "invariant_violations": dict(self.invariant_violations),
            "watchdog_samples": len(self.watchdog_history),
        }

    def report(self) -> str:
        """The end-of-job summary PFTool prints."""
        mb = self.bytes_copied / 1e6
        rate = self.data_rate / 1e6
        lines = [
            f"pftool {self.op}: {self.files_copied} files, {mb:.1f} MB "
            f"in {self.duration:.1f}s ({rate:.1f} MB/s)",
            f"  dirs={self.dirs_walked} seen={self.files_seen} "
            f"skipped={self.files_skipped} failed={self.files_failed}",
        ]
        if self.tape_files_restored:
            lines.append(
                f"  tape: {self.tape_files_restored} files / "
                f"{self.tape_bytes_restored / 1e6:.1f} MB from "
                f"{self.tape_volumes_touched} volumes"
            )
        if self.files_compared:
            lines.append(
                f"  compare: {self.files_compared} files, "
                f"{self.compare_mismatches} mismatches"
            )
        if self.retries_by_class:
            by_class = " ".join(
                f"{k}={v}" for k, v in sorted(self.retries_by_class.items())
            )
            lines.append(f"  retries: {self.total_retries} ({by_class})")
        if self.aborted:
            lines.append(f"  ABORTED: {self.abort_reason}")
        return "\n".join(lines)
