"""Job statistics and the WatchDog's progress history.

The Manager owns a single :class:`JobStats`; the WatchDog samples it on
an interval, keeping the windowed counters the paper describes (files /
bytes moved in the last T minutes) and detecting stalls.

Since the :mod:`repro.trace` refactor the numeric fields are backed by a
:class:`~repro.trace.metrics.MetricsRegistry`: ``stats.files_copied``
is a property over the ``pftool.files_copied`` counter, so the figure
benchmarks and the end-of-job report read the same registry a traced
run exports.  The attribute interface is unchanged — ``stats.field``
reads and ``stats.field += n`` writes work exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.metrics import MetricsRegistry

__all__ = ["JobStats", "WatchdogSample"]


@dataclass
class WatchdogSample:
    """One WatchDog observation window."""

    t: float
    files_total: int
    bytes_total: int
    files_window: int
    bytes_window: int


#: registry-backed integer counters, in report order
_COUNTERS = (
    "dirs_walked",
    "files_seen",
    "files_copied",
    "files_skipped",  # restart: destination already current
    "files_failed",
    "files_compared",
    "compare_mismatches",
    "bytes_copied",
    "bytes_skipped",
    "tape_files_restored",
    "tape_bytes_restored",
    "tape_volumes_touched",
    "chunks_copied",
    "fuse_files",
    # restart-from-journal accounting: chunk ranges a resumed job skipped
    # because the JobJournal recorded them complete before the crash
    "journal_chunks_skipped",
    "journal_bytes_skipped",
)

#: registry-backed time gauges
_GAUGES = ("started", "finished")


class JobStats:
    """Counters for one PFTool job (the §4.1.1 'final statistics report').

    Every numeric field lives in :attr:`registry` under the
    ``pftool.<field>`` name; non-numeric state (op, abort reason,
    per-class dicts, watchdog history) stays on the instance.
    """

    def __init__(self, op: str = "copy",
                 registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        for name in _COUNTERS:
            self.registry.counter(f"pftool.{name}")
        for name in _GAUGES:
            self.registry.gauge(f"pftool.{name}")
        #: observed sizes of files seen by the stat phase
        self.registry.histogram("pftool.file_size_bytes")
        self.op = op
        self.aborted = False
        self.abort_reason = ""
        #: requeued work units per failure class ('drive', 'tsm', 'fs', ...)
        self.retries_by_class: dict[str, int] = {}
        #: permanent (retry-exhausted or non-retryable) failures per class
        self.failures_by_class: dict[str, int] = {}
        #: InvariantMonitor findings by kind ('leaked-receive', ...) when the
        #: monitor runs in counting (non-strict) mode
        self.invariant_violations: dict[str, int] = {}
        self.watchdog_history: list[WatchdogSample] = []
        self.output_lines: list[str] = []

    # counter/gauge properties are attached after the class body, one per
    # name in _COUNTERS/_GAUGES

    def observe_file_size(self, nbytes: int) -> None:
        self.registry.histogram("pftool.file_size_bytes").observe(nbytes)

    @property
    def duration(self) -> float:
        return max(0.0, self.finished - self.started)

    @property
    def data_rate(self) -> float:
        """Average copy rate in bytes/second."""
        d = self.duration
        return self.bytes_copied / d if d > 0 else 0.0

    @property
    def avg_file_size(self) -> float:
        return self.bytes_copied / self.files_copied if self.files_copied else 0.0

    @property
    def total_retries(self) -> int:
        return sum(self.retries_by_class.values())

    def to_dict(self) -> dict:
        """Serializable record of the job (for operation logs / replays)."""
        return {
            "op": self.op,
            "started": self.started,
            "finished": self.finished,
            "duration": self.duration,
            "dirs_walked": self.dirs_walked,
            "files_seen": self.files_seen,
            "files_copied": self.files_copied,
            "files_skipped": self.files_skipped,
            "files_failed": self.files_failed,
            "files_compared": self.files_compared,
            "compare_mismatches": self.compare_mismatches,
            "bytes_copied": self.bytes_copied,
            "bytes_skipped": self.bytes_skipped,
            "data_rate": self.data_rate,
            "avg_file_size": self.avg_file_size,
            "tape_files_restored": self.tape_files_restored,
            "tape_bytes_restored": self.tape_bytes_restored,
            "tape_volumes_touched": self.tape_volumes_touched,
            "chunks_copied": self.chunks_copied,
            "fuse_files": self.fuse_files,
            "journal_chunks_skipped": self.journal_chunks_skipped,
            "journal_bytes_skipped": self.journal_bytes_skipped,
            "aborted": self.aborted,
            "abort_reason": self.abort_reason,
            "retries_by_class": dict(self.retries_by_class),
            "failures_by_class": dict(self.failures_by_class),
            "invariant_violations": dict(self.invariant_violations),
            "watchdog_samples": len(self.watchdog_history),
        }

    def report(self) -> str:
        """The end-of-job summary PFTool prints."""
        mb = self.bytes_copied / 1e6
        rate = self.data_rate / 1e6
        lines = [
            f"pftool {self.op}: {self.files_copied} files, {mb:.1f} MB "
            f"in {self.duration:.1f}s ({rate:.1f} MB/s)",
            f"  dirs={self.dirs_walked} seen={self.files_seen} "
            f"skipped={self.files_skipped} failed={self.files_failed}",
        ]
        if self.tape_files_restored:
            lines.append(
                f"  tape: {self.tape_files_restored} files / "
                f"{self.tape_bytes_restored / 1e6:.1f} MB from "
                f"{self.tape_volumes_touched} volumes"
            )
        if self.files_compared:
            lines.append(
                f"  compare: {self.files_compared} files, "
                f"{self.compare_mismatches} mismatches"
            )
        if self.journal_chunks_skipped:
            lines.append(
                f"  resume: {self.journal_chunks_skipped} chunks / "
                f"{self.journal_bytes_skipped / 1e6:.1f} MB from journal"
            )
        if self.retries_by_class:
            by_class = " ".join(
                f"{k}={v}" for k, v in sorted(self.retries_by_class.items())
            )
            lines.append(f"  retries: {self.total_retries} ({by_class})")
        if self.aborted:
            lines.append(f"  ABORTED: {self.abort_reason}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JobStats {self.op} files={self.files_copied} "
            f"bytes={self.bytes_copied} failed={self.files_failed}>"
        )


def _counter_property(name: str) -> property:
    key = f"pftool.{name}"

    def fget(self: JobStats):
        return self.registry.counter(key).value

    def fset(self: JobStats, value) -> None:
        self.registry.counter(key).set(value)

    return property(fget, fset, doc=f"registry counter {key}")


def _gauge_property(name: str) -> property:
    key = f"pftool.{name}"

    def fget(self: JobStats) -> float:
        return self.registry.gauge(key).value

    def fset(self: JobStats, value: float) -> None:
        self.registry.gauge(key).set(value)

    return property(fget, fset, doc=f"registry gauge {key}")


for _name in _COUNTERS:
    setattr(JobStats, _name, _counter_property(_name))
for _name in _GAUGES:
    setattr(JobStats, _name, _gauge_property(_name))
del _name
