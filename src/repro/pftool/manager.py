"""The Manager rank: queues, job assignment, completion detection.

Mirrors §4.1.1's responsibility list: starts the parallel tree walk,
feeds DirQ to ReadDir procs, batches exposed files into NameQ stat jobs,
classifies stated files into CopyQ (with N-to-1 chunking and ArchiveFUSE
N-to-N for the largest files) or TapeCQs (tape-ordered restore), hands
restored tape files back to Workers for the archive->scratch hop, pushes
progress lines to the OutPutProc, and finalises by broadcasting Exit.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import replace
from typing import Iterable, Optional

from repro.faults import FailureRecord
from repro.mpisim import SimComm
from repro.pfs import PathError
from repro.pftool.config import PftoolConfig, RuntimeContext
from repro.pftool.messages import (
    Abort,
    CompareJob,
    CompareResult,
    ContainerDst,
    CopyJob,
    CopyResult,
    DirJob,
    DirResult,
    Exit,
    FileSpec,
    FuseChunkDst,
    Retry,
    StatJob,
    StatResult,
    TAG_JOB,
    TAG_OUTPUT,
    TAG_RETRY,
    TAG_TAPEINFO,
    TapeInfo,
    TapeJob,
    TapeResult,
    WorkRequest,
)
from repro.pftool.stats import JobStats
from repro.sim import Environment, Event

__all__ = ["Abort", "Manager"]

#: cap on retained pfls output lines (the rest are counted, not stored)
MAX_OUTPUT_LINES = 10_000

#: failure classes worth retrying — namespace ('path') errors are
#: deterministic and requeueing them only delays the permanent verdict
NON_RETRYABLE_CLASSES = frozenset({"path"})


class Manager:
    """Rank-0 logic for one PFTool job."""

    def __init__(
        self,
        env: Environment,
        comm: SimComm,
        cfg: PftoolConfig,
        ctx: RuntimeContext,
        op: str,
        src_root: str,
        dst_root: Optional[str],
        stats: JobStats,
        done: Event,
        journal=None,
    ) -> None:
        self.env = env
        self.comm = comm
        self.cfg = cfg
        self.ctx = ctx
        self.op = op  # 'copy' | 'list' | 'compare'
        self.src_root = src_root.rstrip("/") or "/"
        self.dst_root = (dst_root.rstrip("/") or "/") if dst_root else None
        self.stats = stats
        self.done = done
        #: optional JobJournal: chunk/file completion records written as
        #: results land, consulted by the restart path so a resumed job
        #: never re-copies past the journal frontier
        self.journal = journal

        self.dir_q: deque[DirJob] = deque()
        self.name_q: deque[StatJob] = deque()
        self.copy_q: deque = deque()  # CopyJob | CompareJob
        self.tape_q: deque[TapeJob] = deque()
        self.idle: dict[str, deque[int]] = {
            "readdir": deque(),
            "worker": deque(),
            "tape": deque(),
        }
        self.out_dir = 0
        self.out_stat = 0
        self.out_copy = 0
        self.out_tape = 0
        self.pending_lookups = 0
        #: dst path -> queued chunk jobs waiting for the create-chunk
        self.waiting_chunks: dict[str, list[CopyJob]] = {}
        #: destinations whose provisioning chunk has completed
        self.created_dsts: set[str] = set()
        #: (archive_path, oid, nbytes, dst) buffered until the walk ends
        self.tape_buffer: list[tuple[str, int, int, str]] = []
        #: member copy jobs waiting for their container's tape recall
        self.parked_container_jobs: dict[str, list[CopyJob]] = {}
        self.tape_arranged = False
        self.pending_small: list[tuple[str, str, int]] = []
        self.pending_compare: list[tuple[str, str, int]] = []
        #: 'du' op: subtree -> [files, bytes]
        self.du_totals: dict[str, list[int]] = {}
        self.aborting = False
        #: True once _finish ran: the Exit broadcast is out and nobody
        #: reads the Manager mailbox again, so late Aborts must not land
        self.finishing = False
        #: open "pftool:job" trace span while the job runs (if tracing)
        self._job_span = None
        # -- failure recovery -------------------------------------------
        #: work-unit key -> retry attempts spent so far
        self.retry_counts: dict[tuple, int] = {}
        #: retries scheduled (backoff running) but not yet requeued
        self.pending_retries = 0
        #: destination paths already counted in ``stats.files_failed``
        self.failed_files: set[str] = set()

    # ------------------------------------------------------------------
    # path mapping
    # ------------------------------------------------------------------
    def map_dst(self, src_path: str) -> str:
        if self.dst_root is None:
            raise PathError("operation has no destination")
        if src_path == self.src_root:
            name = src_path.rsplit("/", 1)[-1]
            return f"{self.dst_root}/{name}"
        if not src_path.startswith(self.src_root + "/") and self.src_root != "/":
            raise PathError(f"{src_path!r} escapes {self.src_root!r}")
        rel = src_path[len(self.src_root):].lstrip("/")
        return f"{self.dst_root}/{rel}" if rel else self.dst_root

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> Iterable[Event]:
        monitor = getattr(self.comm, "monitor", None)
        if monitor is not None:
            # Runs inside the manager process: active_process is us.
            monitor.bind_manager(self, self.env.active_process)
        self.stats.started = self.env.now
        self.stats.op = self.op
        tr = self.env.trace
        if tr.enabled:
            self._job_span = tr.begin(
                "pftool:job", tid="manager", cat="pftool",
                args={"op": self.op, "src": self.src_root,
                      "dst": self.dst_root},
            )
        src = self.ctx.src_fs
        try:
            root_inode = src.lookup(self.src_root)
        except PathError as exc:
            self._finish(error=str(exc))
            return
        if self.dst_root is not None and self.op == "copy":
            self.ctx.dst_fs.mkdir(self.dst_root, parents=True)
        if root_inode.is_dir:
            self.dir_q.append(DirJob(self.src_root))
        else:
            self.name_q.append(StatJob((self.src_root,)))
        self._emit(f"starting {self.op}: {self.src_root} -> {self.dst_root}")

        while True:
            self._dispatch()
            if self._complete():
                break
            msg = yield self.comm.recv(0)
            payload = msg.payload
            if isinstance(payload, WorkRequest):
                self.idle[payload.kind].append(payload.rank)
            elif isinstance(payload, Abort):
                self._handle_abort(payload)
                break
            elif msg.tag == TAG_TAPEINFO:
                self._on_tape_info(payload)
            elif isinstance(payload, Retry):
                self._on_retry(payload)
            elif isinstance(payload, DirResult):
                self._on_dir_result(payload)
            elif isinstance(payload, StatResult):
                self._on_stat_result(payload)
            elif isinstance(payload, CopyResult):
                self._on_copy_result(payload)
            elif isinstance(payload, CompareResult):
                self._on_compare_result(payload)
            elif isinstance(payload, TapeResult):
                self._on_tape_result(payload)
            else:  # pragma: no cover - protocol error
                raise RuntimeError(f"manager got unexpected {payload!r}")
        self._finish()

    def _finish(self, error: str = "") -> None:
        self.finishing = True
        if error:
            self.stats.aborted = True
            self.stats.abort_reason = error
        self.stats.finished = self.env.now
        if self._job_span is not None:
            self._job_span.end(
                files_copied=self.stats.files_copied,
                bytes_copied=self.stats.bytes_copied,
                aborted=self.stats.aborted,
            )
            self._job_span = None
        if self.op == "du":
            for key in sorted(self.du_totals):
                files, nbytes = self.du_totals[key]
                self._emit(f"{nbytes}\t{files}\t{key}")
        self._emit(self.stats.report())  # must precede Exit (FIFO delivery)
        # Exit rides TAG_JOB so the tag-filtered receives of ReadDir /
        # Worker / TapeProc ranks actually match it and the rank loops
        # terminate (a tag-0 Exit would sit in their mailboxes forever —
        # exactly the message leak RA002/the InvariantMonitor flag).
        self.comm.broadcast(0, Exit(), TAG_JOB)

        def _settle():
            # let in-flight output lines land before completing the job
            yield self.env.timeout(2 * self.comm.latency)
            monitor = getattr(self.comm, "monitor", None)
            if monitor is not None:
                monitor.check_completion(self.comm, self.stats)
            if not self.done.triggered:
                self.done.succeed(self.stats)

        self.env.process(_settle(), name="pftool-settle")

    def _handle_abort(self, abort: Abort) -> None:
        self.aborting = True
        self.stats.aborted = True
        self.stats.abort_reason = abort.reason

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _dispatch(self) -> None:
        # Flush accumulated batches once the walk+stat phase has drained.
        if self._stat_phase_done():
            self._flush_small()
            self._flush_compare()
            if self.tape_buffer and self.pending_lookups == 0:
                self._lookup_tape_locations()
        while self.idle["readdir"] and self.dir_q:
            rank = self.idle["readdir"].popleft()
            self.comm.send(0, rank, self.dir_q.popleft(), TAG_JOB)
            self.out_dir += 1
        while self.idle["worker"] and (self.name_q or self.copy_q):
            rank = self.idle["worker"].popleft()
            # NameQ first: exposing work early keeps the pipeline full.
            if self.name_q:
                self.comm.send(0, rank, self.name_q.popleft(), TAG_JOB)
                self.out_stat += 1
            else:
                job = self.copy_q.popleft()
                self.comm.send(0, rank, job, TAG_JOB)
                self.out_copy += 1
        while self.idle["tape"] and self.tape_q:
            rank = self.idle["tape"].popleft()
            self.comm.send(0, rank, self.tape_q.popleft(), TAG_JOB)
            self.out_tape += 1

    def _stat_phase_done(self) -> bool:
        return not self.dir_q and not self.name_q and self.out_dir == 0 and self.out_stat == 0

    def _complete(self) -> bool:
        if self.aborting:
            return True
        return (
            self._stat_phase_done()
            and not self.copy_q
            and not self.tape_q
            and self.out_copy == 0
            and self.out_tape == 0
            and self.pending_lookups == 0
            and self.pending_retries == 0
            and not self.waiting_chunks
            and not self.tape_buffer
            and not self.parked_container_jobs
            and not self.pending_small
            and not self.pending_compare
        )

    # ------------------------------------------------------------------
    # failure recovery (retry with capped exponential backoff)
    # ------------------------------------------------------------------
    def _count_retry(self, key: tuple, fault_class: str) -> bool:
        """Reserve one retry attempt for *key*; False = give up."""
        if fault_class in NON_RETRYABLE_CLASSES or self.cfg.retry_limit == 0:
            return False
        attempts = self.retry_counts.get(key, 0)
        if attempts >= self.cfg.retry_limit:
            return False
        self.retry_counts[key] = attempts + 1
        by_class = self.stats.retries_by_class
        by_class[fault_class] = by_class.get(fault_class, 0) + 1
        return True

    def _retry_delay(self, key: tuple) -> float:
        attempt = self.retry_counts.get(key, 1)
        return min(
            self.cfg.retry_backoff * (2 ** (attempt - 1)),
            self.cfg.retry_backoff_max,
        )

    def _schedule_retry(self, kind: str, payload, delay: float) -> None:
        """Requeue a failed unit after *delay* via a TAG_RETRY message
        (the Manager only ever mutates queues from its own loop)."""
        self.pending_retries += 1
        comm, env = self.comm, self.env

        def _later():
            yield env.timeout(delay)
            comm.send(0, 0, Retry(kind, payload), TAG_RETRY)

        env.process(_later(), name=f"pftool-retry-{kind}")

    def _on_retry(self, retry: Retry) -> None:
        self.pending_retries -= 1
        if retry.kind == "copy":
            # Requeue directly: the waiting_chunks / created_dsts
            # bookkeeping for this job was done on first enqueue.
            self.copy_q.append(retry.payload)
        else:  # 'tape'
            volume, entry = retry.payload
            self.tape_q.append(TapeJob(volume, (entry,)))

    def _permanent_failure(self, dst: str, record: FailureRecord) -> None:
        """Account one file that recovery gave up on (at most once)."""
        by_class = self.stats.failures_by_class
        by_class[record.fault_class] = by_class.get(record.fault_class, 0) + 1
        if dst not in self.failed_files:
            self.failed_files.add(dst)
            self.stats.files_failed += 1
        self._emit(
            f"FAILED [{record.fault_class}] {record.path}: {record.detail}"
        )

    # ------------------------------------------------------------------
    # result handlers
    # ------------------------------------------------------------------
    def _on_dir_result(self, res: DirResult) -> None:
        self.out_dir -= 1
        self.stats.dirs_walked += 1
        if self.op == "copy" and self.dst_root is not None:
            self.ctx.dst_fs.mkdir(self.map_dst(res.path), parents=True)
        for sub in res.subdirs:
            self.dir_q.append(DirJob(sub))
        files = list(res.files)
        for i in range(0, len(files), self.cfg.stat_batch):
            self.name_q.append(StatJob(tuple(files[i : i + self.cfg.stat_batch])))

    def _on_stat_result(self, res: StatResult) -> None:
        self.out_stat -= 1
        for spec in res.specs:
            self.stats.files_seen += 1
            self.stats.observe_file_size(spec.size)
            if self.op == "list":
                state = "migrated" if spec.migrated else "resident"
                self._list_line(f"{spec.path}\t{spec.size}\t{state}")
                continue
            if self.op == "du":
                self._account_du(spec)
                continue
            if self.op == "compare":
                self.pending_compare.append(
                    (spec.path, self.map_dst(spec.path), spec.size)
                )
                if len(self.pending_compare) >= self.cfg.copy_batch:
                    self._flush_compare()
                continue
            self._plan_copy(spec)

    def _plan_copy(self, spec: FileSpec) -> None:
        dst = self.map_dst(spec.path)
        if spec.is_fuse and self.ctx.fuse is not None:
            self._plan_fuse_restore_or_copy(spec, dst)
            return
        packed = self._packed_location(spec.path)
        if packed is not None:
            self._plan_packed_copy(spec, dst, packed)
            return
        if spec.migrated:
            # Restore direction: data must come off tape first.
            self.tape_buffer.append(
                (spec.path, spec.tsm_object_id, spec.size, dst)
            )
            return
        if self.cfg.restart and self._dst_current(spec, dst):
            self.stats.files_skipped += 1
            self.stats.bytes_skipped += spec.size
            return
        self._enqueue_data_copy(spec.path, dst, spec.size)

    def _packed_location(self, path: str) -> Optional[tuple[str, int]]:
        """(container, offset) when *path* is a §7 packed member entry."""
        try:
            inode = self.ctx.src_fs.lookup(path)
        except PathError:
            return None
        return inode.xattrs.get("__packed_in__")

    def _plan_packed_copy(
        self, spec: FileSpec, dst: str, packed: tuple[str, int]
    ) -> None:
        """Restore/copy one packed member: data streams out of its
        container (recalling the container from tape first if needed)."""
        container, offset = packed
        job = CopyJob(
            chunk_of=(container, dst, spec.size),
            offset=0,
            length=spec.size,
            src_offset=offset,
            token_src=spec.path,
        )
        cnode = self.ctx.src_fs.lookup(container)
        if cnode.is_stub:
            parked = self.parked_container_jobs.setdefault(container, [])
            if not parked:  # first member: queue ONE recall of the container
                self.tape_buffer.append(
                    (container, cnode.tsm_object_id, cnode.size,
                     ContainerDst(container))
                )
            parked.append(job)
            return
        self._enqueue_chunk_job(job, dst)

    def _dst_current(self, spec: FileSpec, dst: str) -> bool:
        try:
            dnode = self.ctx.dst_fs.lookup(dst)
        except PathError:
            return False
        if not dnode.is_file or dnode.size != spec.size:
            return False
        if dnode.mtime < spec.mtime:
            return False
        done_ranges = dnode.xattrs.get("__chunks_done__")
        if done_ranges is not None:
            # dedupe: a re-delivered retry may have recorded a range twice
            # (dict.fromkeys keeps insertion order, unlike a set - RA001)
            covered = sum(l for _, l in dict.fromkeys(map(tuple, done_ranges)))
            return covered >= spec.size
        if self.journal is not None and self.journal.file_done(dst, spec.size):
            return True
        # A bare size/mtime match is NOT proof the data landed: a sized
        # create makes a full-size hole immediately, so a crash before
        # completion (set_token) would otherwise get skipped on resume.
        return "__inflight__" not in dnode.xattrs

    def _enqueue_chunk_job(self, job: CopyJob, dst_key: str) -> None:
        """Serialize destination provisioning: the first chunk job for a
        destination carries ``create=True``; the rest wait until the
        provisioning result arrives (then flow into CopyQ freely)."""
        if dst_key in self.created_dsts:
            self.copy_q.append(job)
        elif dst_key in self.waiting_chunks:
            self.waiting_chunks[dst_key].append(job)
        else:
            self.waiting_chunks[dst_key] = []
            self.copy_q.append(replace(job, create=True))

    def _enqueue_data_copy(self, src: str, dst: str, size: int) -> None:
        cfg = self.cfg
        if (
            cfg.fuse_threshold
            and self.ctx.fuse is not None
            and size >= cfg.fuse_threshold
            and self.ctx.fuse.fs is self.ctx.dst_fs
        ):
            # ArchiveFUSE N-to-N: one worker per fuse chunk.
            n = max(1, math.ceil(size / self.ctx.fuse.chunk_size))
            self.stats.fuse_files += 1
            for i in range(n):
                off = i * self.ctx.fuse.chunk_size
                self._enqueue_chunk_job(
                    CopyJob(
                        chunk_of=(src, dst, size),
                        offset=off,
                        length=min(self.ctx.fuse.chunk_size, size - off),
                        fuse_index=i,
                    ),
                    dst,
                )
            return
        if size >= cfg.chunk_threshold:
            # N-to-1 chunked copy into a single destination file.
            chunk = cfg.copy_chunk_size
            n = max(1, math.ceil(size / chunk))
            done_ranges = self._restart_ranges(dst) if cfg.restart else set()
            jranges = (
                self.journal.chunk_ranges(dst)
                if cfg.restart and self.journal is not None
                else set()
            )
            if done_ranges:
                self.created_dsts.add(dst)
            queued = 0
            for i in range(n):
                off = i * chunk
                length = min(chunk, size - off)
                if (off, length) in done_ranges:
                    self.stats.bytes_skipped += length
                    if (off, length) in jranges:
                        self.stats.journal_chunks_skipped += 1
                        self.stats.journal_bytes_skipped += length
                    continue
                self._enqueue_chunk_job(
                    CopyJob(chunk_of=(src, dst, size), offset=off, length=length),
                    dst,
                )
                queued += 1
            if not queued:
                self.stats.files_skipped += 1
            return
        self.pending_small.append((src, dst, size))
        if len(self.pending_small) >= cfg.copy_batch:
            self._flush_small()

    def _restart_ranges(self, dst: str) -> set:
        try:
            dnode = self.ctx.dst_fs.lookup(dst)
        except PathError:
            # Journalled ranges are only trusted while the destination they
            # were applied to still exists; a vanished dst restarts cold.
            return set()
        ranges = set(map(tuple, dnode.xattrs.get("__chunks_done__", [])))
        if self.journal is not None:
            ranges |= self.journal.chunk_ranges(dst)
        return ranges

    def _plan_fuse_restore_or_copy(self, spec: FileSpec, dst: str) -> None:
        """Archive-side fuse file: treat each chunk as an independent
        (possibly migrated) source, reassembled into *dst* by range."""
        fuse = self.ctx.fuse
        refs = fuse.chunks(spec.path)
        size = fuse.logical_size(spec.path)
        for ref in refs:
            cnode = self.ctx.src_fs.lookup(ref.path)
            if cnode.is_stub:
                self.tape_buffer.append(
                    (ref.path, cnode.tsm_object_id, ref.length,
                     FuseChunkDst(dst, ref.offset, size, spec.path))
                )
            else:
                self._enqueue_chunk_job(
                    CopyJob(
                        chunk_of=(ref.path, dst, size),
                        offset=ref.offset,
                        length=ref.length,
                        src_offset=0,
                        token_src=spec.path,
                    ),
                    dst,
                )

    def _flush_small(self) -> None:
        if self.pending_small:
            batch = tuple(self.pending_small[: self.cfg.copy_batch])
            del self.pending_small[: self.cfg.copy_batch]
            self.copy_q.append(CopyJob(files=batch, pack=self.cfg.tar_pipe))
            if self.pending_small:
                self._flush_small()

    def _flush_compare(self) -> None:
        if self.pending_compare:
            batch = tuple(self.pending_compare[: self.cfg.copy_batch])
            del self.pending_compare[: self.cfg.copy_batch]
            self.copy_q.append(CompareJob(files=batch))
            if self.pending_compare:
                self._flush_compare()

    # ------------------------------------------------------------------
    # tape arrangement (§4.1.2 item 2)
    # ------------------------------------------------------------------
    def _lookup_tape_locations(self) -> None:
        entries = self.tape_buffer
        self.tape_buffer = []
        self.pending_lookups += 1
        db = self.ctx.tapedb
        env = self.env
        comm = self.comm

        def _helper():
            paths = [e[0] for e in entries]
            if db is not None:
                locs = yield db.locate_many(self.ctx.filespace, paths)
            else:
                locs = {}
            comm.send(0, 0, TapeInfo(tuple(entries), locs), TAG_TAPEINFO)

        env.process(_helper(), name="pftool-tapedb-lookup")

    def _on_tape_info(self, info: TapeInfo) -> None:
        self.pending_lookups -= 1
        resolved = []
        for path, oid, nbytes, dst in info.entries:
            loc = info.locs.get(path)
            if loc is None and self.ctx.tsm is not None and oid is not None:
                obj = self.ctx.tsm.locate(oid)  # export-staleness fallback
                if obj is not None:
                    resolved.append((path, obj.object_id, obj.volume, obj.seq,
                                     nbytes, dst))
                    continue
            if loc is None:
                self.stats.files_failed += 1
                self._emit(f"NO TAPE LOCATION for {path}")
                continue
            resolved.append((path, loc.object_id, loc.volume, loc.seq, nbytes, dst))
        by_vol: dict[str, list] = {}
        for path, oid, vol, seq, nbytes, dst in resolved:
            by_vol.setdefault(vol, []).append((path, oid, seq, nbytes, dst))
        tr = self.env.trace
        for vol, items in sorted(by_vol.items()):
            if self.cfg.tape_ordering:
                items.sort(key=lambda e: e[2])  # ascending tape seq
            self.tape_q.append(TapeJob(vol, tuple(items)))
            if tr.enabled:
                tr.instant("pftool:tape_enqueue", tid="manager", cat="pftool",
                           args={"volume": vol, "files": len(items)})
        self.stats.tape_volumes_touched += len(by_vol)

    def _on_tape_result(self, res: TapeResult) -> None:
        self.out_tape -= 1
        for archive_path, nbytes, dst in res.restored:
            self.stats.tape_files_restored += 1
            self.stats.tape_bytes_restored += nbytes
            # "additional restored tape file copy request" -> Workers.
            # The dst is matched structurally — a real path containing
            # '##container##' or '@@' is just a path.
            if isinstance(dst, ContainerDst):
                for job in self.parked_container_jobs.pop(dst.container, []):
                    self._enqueue_chunk_job(job, job.chunk_of[1])
            elif isinstance(dst, FuseChunkDst):
                self._enqueue_chunk_job(
                    CopyJob(
                        chunk_of=(archive_path, dst.dst, dst.total),
                        offset=dst.offset,
                        length=nbytes,
                        src_offset=0,
                        token_src=dst.token_src,
                    ),
                    dst.dst,
                )
            else:
                self._enqueue_data_copy(archive_path, dst, nbytes)
        for entry, record in res.failed:
            path, oid, _seq, _nbytes, dst = entry
            key = ("tape", path, oid)
            if self._count_retry(key, record.fault_class):
                self._schedule_retry(
                    "tape", (res.volume, entry), self._retry_delay(key)
                )
                continue
            self._permanent_tape_failure(entry, record)

    def _permanent_tape_failure(self, entry: tuple, record: FailureRecord) -> None:
        """A tape restore is out of retries; fail every file that depended
        on it so no queue entry waits forever."""
        path, _oid, _seq, _nbytes, dst = entry
        if isinstance(dst, ContainerDst):
            # every member parked behind the container is now unrecoverable
            parked = self.parked_container_jobs.pop(dst.container, [])
            self._permanent_failure(dst.container, record)
            for job in parked:
                self._permanent_failure(job.chunk_of[1], record)
        elif isinstance(dst, FuseChunkDst):
            self._permanent_failure(dst.dst, record)
        else:
            self._permanent_failure(dst, record)

    def _on_copy_result(self, res: CopyResult) -> None:
        self.out_copy -= 1
        if res.error is not None:
            self._recover_chunk_failure(res)
            return
        if res.failures:
            self._recover_batch_failures(res)
        else:
            # legacy path: unstructured failures cannot be retried
            self.stats.files_failed += len(res.failed)
        self.stats.bytes_copied += res.bytes_moved
        if res.chunk_of is not None:
            src, dst, total = res.chunk_of
            self.stats.chunks_copied += 1
            if res.created:
                self.created_dsts.add(dst)
                if dst in self.waiting_chunks:
                    self.copy_q.extend(self.waiting_chunks.pop(dst))
            # Completion accounting per chunked file.  A retried chunk can
            # be delivered more than once (e.g. the work succeeded but a
            # later failure re-ran it), so count each range once and credit
            # the file exactly when coverage crosses the total.
            dnode = self.ctx.dst_fs.lookup(dst)
            ranges = dnode.xattrs.setdefault("__chunks_done__", [])
            distinct = set(map(tuple, ranges))
            before = sum(l for _, l in distinct)
            rng = (res.offset, res.length)
            if rng not in distinct:
                ranges.append(rng)
                distinct.add(rng)
                if self.journal is not None:
                    self.journal.record_chunk(
                        dst, res.offset, res.length, total=total, src=src
                    )
            covered = sum(l for _, l in distinct)
            if before < total <= covered:
                self.stats.files_copied += 1
                try:
                    token_path = res.token_src or src
                    token = self.ctx.src_fs.lookup(token_path).content_token
                    self.ctx.dst_fs.set_token(dst, token)
                except PathError:
                    pass
                if self.journal is not None:
                    self.journal.record_file(src, dst, total)
        else:
            self.stats.files_copied += res.files_done
            if self.journal is not None:
                for s, d, n in res.done_specs:
                    self.journal.record_file(s, d, n)

    def _recover_chunk_failure(self, res: CopyResult) -> None:
        """A chunk (or fuse-chunk) CopyJob died: retry it, or give up and
        unwedge everything parked behind it."""
        src, dst, total = res.chunk_of
        job = res.job
        key = (
            "chunk", dst, res.offset, res.length,
            job.fuse_index if job is not None else None,
        )
        if job is not None and self._count_retry(key, res.error.fault_class):
            self._schedule_retry("copy", job, self._retry_delay(key))
            return
        self._permanent_failure(dst, res.error)
        if job is not None and job.create and not res.created:
            # The provisioning chunk never created the destination, so the
            # parked sibling chunks can never run — drop them with the file
            # instead of leaking them in waiting_chunks forever.
            self.waiting_chunks.pop(dst, None)

    def _recover_batch_failures(self, res: CopyResult) -> None:
        """Per-file retry accounting for a small-file batch (packed or
        not); surviving specs are requeued as one new batch."""
        retry_specs = []
        for spec, record in zip(res.failed_specs, res.failures):
            s, d, _ = spec
            if self._count_retry(("file", s, d), record.fault_class):
                retry_specs.append(spec)
            else:
                self._permanent_failure(d, record)
        if retry_specs:
            pack = res.job.pack if res.job is not None else False
            key = ("file",) + retry_specs[0][:2]
            self._schedule_retry(
                "copy",
                CopyJob(files=tuple(retry_specs), pack=pack),
                self._retry_delay(key),
            )

    def _on_compare_result(self, res: CompareResult) -> None:
        self.out_copy -= 1
        self.stats.files_compared += res.compared
        self.stats.compare_mismatches += len(res.mismatches)
        for path in res.mismatches:
            self._list_line(f"MISMATCH {path}")

    def _account_du(self, spec: FileSpec) -> None:
        """Roll file sizes up into the per-top-level-entry totals the
        paper's users would get from a (tape-safe) parallel ``du``."""
        rel = spec.path[len(self.src_root):].lstrip("/") if self.src_root != "/" else spec.path.lstrip("/")
        top = rel.split("/", 1)[0] if rel else spec.path
        key = f"{self.src_root.rstrip('/')}/{top}" if rel else spec.path
        bucket = self.du_totals.setdefault(key, [0, 0])
        bucket[0] += 1
        bucket[1] += spec.size
        self.stats.bytes_copied += 0  # du moves no data

    # ------------------------------------------------------------------
    # output
    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        self.comm.send(0, 1, line, TAG_OUTPUT)

    def _list_line(self, line: str) -> None:
        if len(self.stats.output_lines) < MAX_OUTPUT_LINES:
            self._emit(line)
