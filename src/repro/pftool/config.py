"""Runtime-tunable parameters and execution context for PFTool jobs.

The paper (§4.1.2 item 5) lists the runtime tunables: number of
processes, number of tape drives/procs, basic copy size, storage pool
info, FUSE chunk size, and the tape-restore optimisation flag.  All of
them live in :class:`PftoolConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.fusefs import ArchiveFuseFS
from repro.hsm import HsmManager
from repro.pfs import GpfsFileSystem
from repro.sim import SimulationError
from repro.tapedb import ShardedTapeIndex, TapeIndexDB
from repro.tsm import TsmServer

__all__ = ["PftoolConfig", "RuntimeContext"]

KiB, MiB, GiB = 1024, 1024**2, 1024**3


@dataclass
class PftoolConfig:
    """Tunable knobs for one PFTool invocation."""

    #: number of Worker ranks (file stat + data copy)
    num_workers: int = 8
    #: number of ReadDir ranks
    num_readdir: int = 2
    #: number of TapeProc ranks (restore direction only)
    num_tapeprocs: int = 4
    #: files per StatJob batch
    stat_batch: int = 64
    #: files per small-file CopyJob batch
    copy_batch: int = 16
    #: split files >= this into parallel chunks (N-to-1), bytes
    chunk_threshold: int = 10 * GiB
    #: chunk size for N-to-1 copies ("basic file copy size"), bytes
    copy_chunk_size: int = 2 * GiB
    #: route files >= this through ArchiveFUSE (N-to-N), bytes
    fuse_threshold: int = 100 * GiB
    #: target storage pool on the destination (None = placement policy)
    storage_pool: Optional[str] = None
    #: sort tape restores by (volume, seq) — the §4.1.2 optimisation
    tape_ordering: bool = True
    #: pack each small-file batch into one container object on the
    #: destination (the §7 "very large number of small files" solution:
    #: one create + one data stream + one eventual tape object per batch)
    tar_pipe: bool = False
    #: skip files whose destination is already current (§4.5 restart)
    restart: bool = False
    #: WatchDog sampling interval, seconds ("T minutes" in the paper)
    watchdog_interval: float = 60.0
    #: abort the job after this long with no copy progress
    stall_timeout: float = 3600.0
    #: simulated cost of one readdir entry (getdents amortised)
    readdir_entry_cost: float = 20e-6
    #: retry attempts per failed work unit before it counts as a
    #: permanent failure (0 disables recovery)
    retry_limit: int = 3
    #: backoff before the first retry, seconds; doubles per attempt
    retry_backoff: float = 1.0
    #: ceiling on the exponential backoff delay
    retry_backoff_max: float = 60.0

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise SimulationError("need at least one Worker")
        if self.num_readdir < 1:
            raise SimulationError("need at least one ReadDir proc")
        if self.num_tapeprocs < 0:
            raise SimulationError("num_tapeprocs must be non-negative")
        if self.copy_chunk_size <= 0 or self.chunk_threshold <= 0:
            raise SimulationError("chunk sizes must be positive")
        if self.stat_batch < 1 or self.copy_batch < 1:
            raise SimulationError("batch sizes must be positive")
        if self.retry_limit < 0:
            raise SimulationError("retry_limit must be non-negative")
        if self.retry_backoff < 0 or self.retry_backoff_max < 0:
            raise SimulationError("retry backoffs must be non-negative")

    @property
    def total_ranks(self) -> int:
        # manager + outputproc + watchdog + readdir + workers + tapeprocs
        return 3 + self.num_readdir + self.num_workers + self.num_tapeprocs


@dataclass
class RuntimeContext:
    """The environment a PFTool job runs against.

    *nodes* is the FTA machine list (already sorted by the LoadManager);
    rank i executes on ``nodes[i % len(nodes)]``.
    """

    src_fs: GpfsFileSystem
    dst_fs: GpfsFileSystem
    nodes: Sequence[str]
    #: ArchiveFUSE over whichever side is the archive (optional)
    fuse: Optional[ArchiveFuseFS] = None
    #: needed for the restore direction
    hsm: Optional[HsmManager] = None
    tsm: Optional[TsmServer] = None
    tapedb: Optional[TapeIndexDB | ShardedTapeIndex] = None
    #: TSM filespace of the archive file system
    filespace: str = "archive"
    #: optional :class:`repro.analysis.monitor.InvariantMonitor`; jobs
    #: built from this context attach it to their communicator (tests
    #: install a strict default via the analysis module instead)
    monitor: Optional[Any] = None
    #: optional armed :class:`repro.faults.FaultInjector`; jobs route
    #: their communicator's deliveries through its node-outage windows
    #: so messages to a downed node stall past the window
    fault_injector: Optional[Any] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            raise SimulationError("RuntimeContext needs at least one node")

    def node_of_rank(self, rank: int) -> str:
        return self.nodes[rank % len(self.nodes)]
