"""The non-manager ranks: ReadDir, Worker, TapeProc, OutPutProc, WatchDog.

Each is a DES process bound to a cluster node; data operations issued by
a rank originate from that node, so copies naturally contend on the
node's NIC/HBA in the fabric — ten workers on one FTA node share one
10GigE link exactly as the hardware would.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.faults import FailureRecord, classify_failure
from repro.pfs import PathError
from repro.pftool.config import PftoolConfig, RuntimeContext
from repro.pftool.messages import (
    Abort,
    CompareJob,
    CompareResult,
    CopyJob,
    CopyResult,
    DirJob,
    DirResult,
    Exit,
    FileSpec,
    StatJob,
    StatResult,
    TAG_JOB,
    TAG_RESULT,
    TAG_WORK_REQ,
    TapeJob,
    TapeResult,
    WorkRequest,
)
from repro.pftool.stats import JobStats, WatchdogSample
from repro.mpisim import SimComm
from repro.sim import AllOf, Environment, Event, SimulationError

__all__ = [
    "output_proc",
    "readdir_proc",
    "tape_proc",
    "watchdog_proc",
    "worker_proc",
]


def readdir_proc(
    env: Environment, comm: SimComm, rank: int, cfg: PftoolConfig, ctx: RuntimeContext
) -> Iterable[Event]:
    """Expose directories: readdir + classify entries (§4.1.1 ReadDir)."""
    fs = ctx.src_fs
    while True:
        comm.send(rank, 0, WorkRequest(rank, "readdir"), TAG_WORK_REQ)
        msg = yield comm.recv(rank, source=0, tag=TAG_JOB)
        job = msg.payload
        if isinstance(job, Exit):
            return
        assert isinstance(job, DirJob)
        t0 = env.now
        try:
            entries = fs.readdir(job.path)
        except PathError:
            entries = []
        cost = max(len(entries), 1) * cfg.readdir_entry_cost
        yield env.timeout(cost)
        base = job.path.rstrip("/")
        subdirs = tuple(
            f"{base}/{name}"
            for name, node in entries
            if node.is_dir and not name.startswith(".")
        )
        files = tuple(
            f"{base}/{name}"
            for name, node in entries
            if node.is_file and not name.startswith(".")
        )
        comm.send(
            rank, 0, DirResult(job.path, subdirs, files, env.now - t0), TAG_RESULT
        )


def worker_proc(
    env: Environment, comm: SimComm, rank: int, cfg: PftoolConfig, ctx: RuntimeContext
) -> Iterable[Event]:
    """Stat + copy + compare execution (§4.1.1 Worker)."""
    node = ctx.node_of_rank(rank)
    src, dst = ctx.src_fs, ctx.dst_fs
    while True:
        comm.send(rank, 0, WorkRequest(rank, "worker"), TAG_WORK_REQ)
        msg = yield comm.recv(rank, source=0, tag=TAG_JOB)
        job = msg.payload
        if isinstance(job, Exit):
            return
        if isinstance(job, StatJob):
            specs = []
            for path in job.paths:
                try:
                    inode = yield src.stat_op(path)
                except PathError:
                    continue
                is_fuse = ctx.fuse is not None and ctx.fuse.fs is src and (
                    ctx.fuse.is_fuse_file(path)
                )
                size = (
                    ctx.fuse.logical_size(path)
                    if is_fuse
                    else inode.size
                )
                specs.append(
                    FileSpec(
                        path=path,
                        size=size,
                        migrated=inode.is_stub,
                        tsm_object_id=inode.tsm_object_id,
                        mtime=inode.mtime,
                        is_fuse=is_fuse,
                    )
                )
            comm.send(rank, 0, StatResult(tuple(specs)), TAG_RESULT)
        elif isinstance(job, CopyJob):
            try:
                result = yield env.process(
                    _do_copy(env, node, cfg, ctx, job), name=f"w{rank}-copy"
                )
            except (PathError, SimulationError) as exc:
                # The copy died, the worker must not: report the failure so
                # the Manager's out_copy counter always drains (a crashed
                # worker would wedge completion detection forever).
                result = _copy_failure(job, exc)
            comm.send(rank, 0, result, TAG_RESULT)
        elif isinstance(job, CompareJob):
            try:
                result = yield env.process(
                    _do_compare(env, node, ctx, job), name=f"w{rank}-cmp"
                )
            except (PathError, SimulationError):
                result = CompareResult(
                    len(job.files), 0, tuple(s for s, _, _ in job.files)
                )
            comm.send(rank, 0, result, TAG_RESULT)
        else:  # pragma: no cover
            raise RuntimeError(f"worker got unexpected {job!r}")


_pack_seq = itertools.count(1)


def _copy_failure(job: CopyJob, exc: BaseException) -> CopyResult:
    """A CopyResult describing a CopyJob that died wholesale."""
    if job.chunk_of is not None:
        record = FailureRecord(
            job.chunk_of[0], classify_failure(exc), str(exc)
        )
        return CopyResult(
            0, 0,
            chunk_of=job.chunk_of,
            offset=job.offset,
            length=job.length,
            token_src=job.token_src,
            error=record,
            job=job,
        )
    records = tuple(
        FailureRecord(s, classify_failure(exc), str(exc)) for s, _, _ in job.files
    )
    return CopyResult(
        0, 0,
        failed=tuple(s for s, _, _ in job.files),
        failed_specs=job.files,
        failures=records,
        job=job,
    )


def _do_copy(env, node, cfg, ctx, job: CopyJob):
    src_fs, dst_fs = ctx.src_fs, ctx.dst_fs
    if job.chunk_of is None:
        if job.pack and job.files:
            return (yield from _do_packed_copy(env, node, cfg, ctx, job))
        # Batch of whole small files.
        files_done = 0
        nbytes = 0
        done_specs = []
        failed = []
        failed_specs = []
        failures = []
        for s, d, n in job.files:
            try:
                token = src_fs.lookup(s).content_token
                read = src_fs.read_range(node, s, 0, n)
                create = dst_fs.create_sized(d, n, pool=cfg.storage_pool)
                yield create
                write = dst_fs.write_range(node, d, 0, n)
                yield AllOf(env, [read, write])
                dst_fs.set_token(d, token)
                files_done += 1
                nbytes += n
                done_specs.append((s, d, n))
            except (PathError, SimulationError) as exc:
                failed.append(s)
                failed_specs.append((s, d, n))
                failures.append(
                    FailureRecord(s, classify_failure(exc), str(exc))
                )
        return CopyResult(
            files_done, nbytes,
            failed=tuple(failed),
            failed_specs=tuple(failed_specs),
            failures=tuple(failures),
            job=job,
            done_specs=tuple(done_specs),
        )

    s, d, total = job.chunk_of
    created = False
    tr = env.trace
    span = tr.begin(
        "copy:chunk", tid=node, cat="pftool",
        args={"dst": d, "offset": job.offset, "length": job.length,
              "total": total},
    ) if tr.enabled else None
    if job.create:
        if job.fuse_index is not None and ctx.fuse is not None:
            yield ctx.fuse.create_large(d, total, pool=cfg.storage_pool)
        else:
            yield dst_fs.create_sized(d, total, pool=cfg.storage_pool)
        created = True
    read = src_fs.read_range(node, s, job.read_offset, job.length)
    if job.fuse_index is not None and ctx.fuse is not None:
        write = ctx.fuse.write_chunk(node, d, job.fuse_index)
    else:
        write = dst_fs.write_range(node, d, job.offset, job.length)
    yield AllOf(env, [read, write])
    if span is not None:
        span.end()
    return CopyResult(
        0,
        job.length,
        chunk_of=job.chunk_of,
        offset=job.offset,
        length=job.length,
        created=created,
        token_src=job.token_src,
    )


def _do_packed_copy(env, node, cfg, ctx, job: CopyJob):
    """§7 grass-files mode: the whole batch becomes ONE container object.

    One ``create_sized`` + one combined data stream replace per-file
    creates and per-file streams; member entries are namespace-only
    records pointing into the container (a tar index, in effect).  The
    container later migrates to tape as a single object, extending the
    aggregation win end-to-end.
    """
    src_fs, dst_fs = ctx.src_fs, ctx.dst_fs
    total = sum(n for _, _, n in job.files)
    dst_dir = job.files[0][1].rsplit("/", 1)[0] or "/"
    container = f"{dst_dir}/.pftar_{next(_pack_seq):08d}"
    reads = [src_fs.read_range(node, s, 0, n) for s, _, n in job.files]
    yield dst_fs.create_sized(container, total, pool=cfg.storage_pool)
    write = dst_fs.write_range(node, container, 0, total)
    yield AllOf(env, reads + [write])
    # member entries: metadata-only, batched into one timed op
    if dst_fs.metadata_op_time:
        yield env.timeout(dst_fs.metadata_op_time)
    offset = 0
    failed = []
    failed_specs = []
    failures = []
    for s, d, n in job.files:
        try:
            token = src_fs.lookup(s).content_token
        except PathError as exc:
            failed.append(s)
            failed_specs.append((s, d, n))
            failures.append(FailureRecord(s, classify_failure(exc), str(exc)))
            offset += n
            continue
        try:
            member = dst_fs.lookup(d)
        except PathError:
            parent = d.rsplit("/", 1)[0] or "/"
            if not dst_fs.exists(parent):
                dst_fs.mkdir(parent, parents=True)
            member = dst_fs.namespace.create(d, env.now)
        member.size = n
        member.content_token = token
        member.xattrs["__packed_in__"] = (container, offset)
        offset += n
    return CopyResult(
        len(job.files) - len(failed), total,
        failed=tuple(failed),
        failed_specs=tuple(failed_specs),
        failures=tuple(failures),
        job=job,
        done_specs=tuple(
            spec for spec in job.files if spec[0] not in set(failed)
        ),
    )


def _do_compare(env, node, ctx, job: CompareJob):
    src_fs, dst_fs = ctx.src_fs, ctx.dst_fs
    compared = 0
    nbytes = 0
    mismatches = []
    for s, d, n in job.files:
        try:
            r1 = src_fs.read_file(node, s)
            r2 = dst_fs.read_file(node, d)
            got = yield AllOf(env, [r1, r2])
            (_, t1), (_, t2) = got[r1], got[r2]
            compared += 1
            nbytes += 2 * n
            if t1 != t2:
                mismatches.append(s)
        except (PathError, SimulationError):  # missing dest counts as mismatch
            compared += 1
            mismatches.append(s)
    return CompareResult(compared, nbytes, tuple(mismatches))


def tape_proc(
    env: Environment, comm: SimComm, rank: int, cfg: PftoolConfig, ctx: RuntimeContext
) -> Iterable[Event]:
    """Restore migrated files from tape, in the Manager's given order
    (§4.1.1 TapeProc)."""
    node = ctx.node_of_rank(rank)
    session = ctx.tsm.open_session(node, lan_free=True) if ctx.tsm else None
    while True:
        comm.send(rank, 0, WorkRequest(rank, "tape"), TAG_WORK_REQ)
        msg = yield comm.recv(rank, source=0, tag=TAG_JOB)
        job = msg.payload
        if isinstance(job, Exit):
            return
        assert isinstance(job, TapeJob)
        restored = []
        failed = []
        for entry in job.entries:
            path, oid, seq, nbytes, dst = entry
            tr = env.trace
            span = tr.begin(
                "tape:restore", tid=node, cat="pftool",
                args={"path": path, "volume": job.volume, "seq": seq,
                      "nbytes": nbytes},
            ) if tr.enabled else None
            try:
                retrieve = ctx.tsm.retrieve_objects(session, [oid])
                ctx.src_fs.restore_data(path)
                writeback = ctx.src_fs.write_range(node, path, 0, nbytes)
                yield AllOf(env, [retrieve, writeback])
                if span is not None:
                    span.end()
            except (PathError, SimulationError) as exc:
                # one bad entry must not kill the volume run — later
                # entries may live on healthy media
                failed.append(
                    (entry, FailureRecord(path, classify_failure(exc), str(exc)))
                )
                continue
            restored.append((path, nbytes, dst))
        comm.send(
            rank, 0,
            TapeResult(job.volume, tuple(restored), tuple(failed)),
            TAG_RESULT,
        )


def output_proc(
    env: Environment, comm: SimComm, rank: int, stats: JobStats
) -> Iterable[Event]:
    """Collect output/progress lines (§4.1.1 OutPutProc)."""
    while True:
        msg = yield comm.recv(rank)
        if isinstance(msg.payload, Exit):
            return
        stats.output_lines.append(str(msg.payload))


def watchdog_proc(
    env: Environment,
    comm: SimComm,
    rank: int,
    cfg: PftoolConfig,
    stats: JobStats,
) -> Iterable[Event]:
    """Progress recorder + stall killer (§4.1.1 WatchDog).

    Samples the shared job counters every ``watchdog_interval``; if no
    bytes move for ``stall_timeout`` the job is aborted — the paper's
    'forces the termination of PFTool if the data copy is stalled'.
    """
    last_files = 0
    last_bytes = 0
    stalled_since: Optional[float] = None
    while True:
        wake = env.timeout(cfg.watchdog_interval)
        incoming = comm.recv(rank)
        yield wake | incoming
        if incoming.triggered:
            # The message was consumed from the mailbox even if the timer
            # fired in the same instant — always honour it.
            if isinstance(incoming.value.payload, Exit):
                return
        else:
            # Withdraw the unused receive eagerly.  Merely dropping the
            # callbacks would leave a live get in the mailbox queue that
            # silently swallows the next message — including Exit, leaving
            # the watchdog running (and aborting) after the job finished.
            incoming.cancel()
        files = stats.files_copied + stats.tape_files_restored
        nbytes = stats.bytes_copied + stats.tape_bytes_restored
        stats.watchdog_history.append(
            WatchdogSample(
                env.now, files, nbytes, files - last_files, nbytes - last_bytes
            )
        )
        if nbytes == last_bytes and files == last_files:
            if stalled_since is None:
                stalled_since = env.now
            elif env.now - stalled_since >= cfg.stall_timeout:
                comm.send(rank, 0, Abort("watchdog: no progress"), TAG_RESULT)
                stalled_since = None
        else:
            stalled_since = None
        last_files, last_bytes = files, nbytes
