"""Message types exchanged between PFTool's MPI ranks.

Tag space::

    TAG_WORK_REQ   proc -> manager   "give me work"
    TAG_JOB        manager -> proc   a *Job payload (or Exit)
    TAG_RESULT     proc -> manager   a *Result payload
    TAG_OUTPUT     any -> OutPutProc text line
    TAG_TAPEINFO   helper -> manager tape locations arrived
    TAG_RETRY      helper -> manager a backed-off Retry is due
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

from repro.faults import FailureRecord

__all__ = [
    "Abort",
    "CompareJob",
    "CompareResult",
    "ContainerDst",
    "CopyJob",
    "CopyResult",
    "DirJob",
    "DirResult",
    "Exit",
    "FileSpec",
    "FuseChunkDst",
    "Retry",
    "StatJob",
    "StatResult",
    "TAG_JOB",
    "TAG_OUTPUT",
    "TAG_PAYLOADS",
    "TAG_RESULT",
    "TAG_RETRY",
    "TAG_TAPEINFO",
    "TAG_WORK_REQ",
    "TapeDst",
    "TapeInfo",
    "TapeJob",
    "TapeResult",
    "WorkRequest",
]

TAG_WORK_REQ = 1
TAG_JOB = 2
TAG_RESULT = 3
TAG_OUTPUT = 4
TAG_TAPEINFO = 5
TAG_RETRY = 6


@dataclass(frozen=True)
class WorkRequest:
    """Idle announcement; *kind* is 'readdir' | 'worker' | 'tape'."""

    rank: int
    kind: str


@dataclass(frozen=True)
class Exit:
    """Shut down, final stats follow via the job object."""


@dataclass(frozen=True)
class Abort:
    """Sent to the Manager to kill the job (WatchDog stall or user)."""

    reason: str


@dataclass(frozen=True)
class DirJob:
    """Expose one directory of the source tree."""

    path: str


@dataclass(frozen=True)
class DirResult:
    path: str
    subdirs: tuple[str, ...]
    files: tuple[str, ...]
    readdir_cost: float = 0.0


@dataclass(frozen=True)
class StatJob:
    """Stat a batch of source files."""

    paths: tuple[str, ...]


@dataclass(frozen=True)
class FileSpec:
    """Stat output for one file."""

    path: str
    size: int
    migrated: bool
    tsm_object_id: Optional[int]
    mtime: float
    is_fuse: bool = False


@dataclass(frozen=True)
class StatResult:
    specs: tuple[FileSpec, ...]


@dataclass(frozen=True)
class CopyJob:
    """Copy work for one Worker.

    Either a batch of whole small files (``files``) or one chunk of a
    large file (``chunk_of`` set).  ``fuse_index`` selects ArchiveFUSE
    N-to-N mode for the chunk.  ``create`` asks the worker to provision
    the destination before writing.
    """

    files: tuple[tuple[str, str, int], ...] = ()  # (src, dst, nbytes)
    #: pack the batch into one container object (§7 grass-files mode)
    pack: bool = False
    chunk_of: Optional[tuple[str, str, int]] = None  # (src, dst, total_size)
    offset: int = 0  # destination offset of the chunk
    length: int = 0
    create: bool = False
    fuse_index: Optional[int] = None
    #: source-side read offset when it differs from the destination offset
    #: (fuse chunk files are read from 0 but land at their logical offset;
    #: packed members are read from their offset inside the container)
    src_offset: Optional[int] = None
    #: path whose content token the destination should receive, when it is
    #: not ``chunk_of[0]`` (packed members: data comes from the container,
    #: identity from the member entry)
    token_src: Optional[str] = None

    @property
    def read_offset(self) -> int:
        return self.offset if self.src_offset is None else self.src_offset


@dataclass(frozen=True)
class CopyResult:
    files_done: int
    bytes_moved: int
    chunk_of: Optional[tuple[str, str, int]] = None
    offset: int = 0
    length: int = 0
    created: bool = False
    failed: tuple[str, ...] = ()
    token_src: Optional[str] = None
    #: per-succeeded-file (src, dst, nbytes) specs for small-file batches
    #: — the Manager journals these so a resumed job can skip them
    done_specs: tuple[tuple[str, str, int], ...] = ()
    #: per-failed-file (src, dst, nbytes) specs, parallel to ``failures``
    #: — lets the Manager rebuild a retry batch
    failed_specs: tuple[tuple[str, str, int], ...] = ()
    #: structured failure records, parallel to ``failed_specs``
    failures: tuple[FailureRecord, ...] = ()
    #: set when the whole job died (chunk copy / packed batch): the
    #: failure that killed it, plus the original job for requeueing
    error: Optional[FailureRecord] = None
    job: Optional[CopyJob] = None


@dataclass(frozen=True)
class CompareJob:
    files: tuple[tuple[str, str, int], ...]  # (src, dst, nbytes)


@dataclass(frozen=True)
class CompareResult:
    compared: int
    bytes_read: int
    mismatches: tuple[str, ...] = ()


@dataclass(frozen=True)
class ContainerDst:
    """Tape destination marker: the restored object is a §7 container
    whose parked member jobs should be released, not a real file path.

    Replaces the old ``"##container##<path>"`` string sentinel, which
    broke for real paths containing that substring.
    """

    container: str


@dataclass(frozen=True)
class FuseChunkDst:
    """Tape destination marker: the restored object is one ArchiveFUSE
    chunk that lands at ``offset`` inside ``dst`` (logical size
    ``total``), taking its content token from ``token_src``.

    Replaces the old ``"<dst>@@<off>@@<total>@@<src>"`` string sentinel,
    which broke for real paths containing ``@@``.
    """

    dst: str
    offset: int
    total: int
    token_src: str


#: a tape entry's destination: a plain scratch path, or a structured marker
TapeDst = Union[str, ContainerDst, FuseChunkDst]


@dataclass(frozen=True)
class TapeJob:
    """Restore a run of objects from one volume, in tape order.

    entries: (archive_path, object_id, seq, nbytes, dst) where *dst* is
    a :data:`TapeDst`.
    """

    volume: str
    entries: tuple[tuple[str, int, int, int, Any], ...]


@dataclass(frozen=True)
class TapeResult:
    volume: str
    restored: tuple[tuple[str, int, Any], ...]  # (archive_path, nbytes, dst)
    #: entries that errored: (full TapeJob entry, failure record)
    failed: tuple[tuple[tuple, FailureRecord], ...] = ()


@dataclass(frozen=True)
class Retry:
    """A backed-off work unit coming due (helper -> manager, TAG_RETRY).

    *kind* is 'copy' (payload: CopyJob) or 'tape' (payload: (volume,
    TapeJob entry)).
    """

    kind: str
    payload: Any


@dataclass(frozen=True)
class TapeInfo:
    """Resolved tape locations for a batch of buffered restore entries
    (helper -> manager, TAG_TAPEINFO).

    entries: the Manager's buffered (archive_path, object_id, nbytes,
    dst) tuples; locs: archive_path -> tape-index row (or absent when
    the export was stale).  Replaces the old raw ``(entries, locs)``
    tuple payload, which the RA004 payload-schema rule forbids.
    """

    entries: tuple[tuple[str, Optional[int], int, Any], ...]
    locs: Any  # Mapping[str, TapeLocation]


#: The protocol's payload schema: which dataclass family each tag may
#: carry.  This table is the single source of truth for both the RA004
#: static rule (``repro.analysis.lint`` parses it) and the runtime
#: :class:`repro.analysis.monitor.InvariantMonitor` (isinstance checks
#: on every send).  Extending the protocol means extending this table —
#: an unlisted tag is a lint error at the send site.
TAG_PAYLOADS: dict[int, tuple[type, ...]] = {
    TAG_WORK_REQ: (WorkRequest,),
    TAG_JOB: (DirJob, StatJob, CopyJob, CompareJob, TapeJob, Exit),
    TAG_RESULT: (DirResult, StatResult, CopyResult, CompareResult, TapeResult, Abort),
    TAG_OUTPUT: (str,),
    TAG_TAPEINFO: (TapeInfo,),
    TAG_RETRY: (Retry,),
}
