"""Message types exchanged between PFTool's MPI ranks.

Tag space::

    TAG_WORK_REQ   proc -> manager   "give me work"
    TAG_JOB        manager -> proc   a *Job payload (or Exit)
    TAG_RESULT     proc -> manager   a *Result payload
    TAG_OUTPUT     any -> OutPutProc text line
    TAG_TAPEINFO   helper -> manager tape locations arrived
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "CompareJob",
    "CompareResult",
    "CopyJob",
    "CopyResult",
    "DirJob",
    "DirResult",
    "Exit",
    "FileSpec",
    "StatJob",
    "StatResult",
    "TAG_JOB",
    "TAG_OUTPUT",
    "TAG_RESULT",
    "TAG_TAPEINFO",
    "TAG_WORK_REQ",
    "TapeJob",
    "TapeResult",
    "WorkRequest",
]

TAG_WORK_REQ = 1
TAG_JOB = 2
TAG_RESULT = 3
TAG_OUTPUT = 4
TAG_TAPEINFO = 5


@dataclass(frozen=True)
class WorkRequest:
    """Idle announcement; *kind* is 'readdir' | 'worker' | 'tape'."""

    rank: int
    kind: str


@dataclass(frozen=True)
class Exit:
    """Shut down, final stats follow via the job object."""


@dataclass(frozen=True)
class DirJob:
    """Expose one directory of the source tree."""

    path: str


@dataclass(frozen=True)
class DirResult:
    path: str
    subdirs: tuple[str, ...]
    files: tuple[str, ...]
    readdir_cost: float = 0.0


@dataclass(frozen=True)
class StatJob:
    """Stat a batch of source files."""

    paths: tuple[str, ...]


@dataclass(frozen=True)
class FileSpec:
    """Stat output for one file."""

    path: str
    size: int
    migrated: bool
    tsm_object_id: Optional[int]
    mtime: float
    is_fuse: bool = False


@dataclass(frozen=True)
class StatResult:
    specs: tuple[FileSpec, ...]


@dataclass(frozen=True)
class CopyJob:
    """Copy work for one Worker.

    Either a batch of whole small files (``files``) or one chunk of a
    large file (``chunk_of`` set).  ``fuse_index`` selects ArchiveFUSE
    N-to-N mode for the chunk.  ``create`` asks the worker to provision
    the destination before writing.
    """

    files: tuple[tuple[str, str, int], ...] = ()  # (src, dst, nbytes)
    #: pack the batch into one container object (§7 grass-files mode)
    pack: bool = False
    chunk_of: Optional[tuple[str, str, int]] = None  # (src, dst, total_size)
    offset: int = 0  # destination offset of the chunk
    length: int = 0
    create: bool = False
    fuse_index: Optional[int] = None
    #: source-side read offset when it differs from the destination offset
    #: (fuse chunk files are read from 0 but land at their logical offset;
    #: packed members are read from their offset inside the container)
    src_offset: Optional[int] = None
    #: path whose content token the destination should receive, when it is
    #: not ``chunk_of[0]`` (packed members: data comes from the container,
    #: identity from the member entry)
    token_src: Optional[str] = None

    @property
    def read_offset(self) -> int:
        return self.offset if self.src_offset is None else self.src_offset


@dataclass(frozen=True)
class CopyResult:
    files_done: int
    bytes_moved: int
    chunk_of: Optional[tuple[str, str, int]] = None
    offset: int = 0
    length: int = 0
    created: bool = False
    failed: tuple[str, ...] = ()
    token_src: Optional[str] = None


@dataclass(frozen=True)
class CompareJob:
    files: tuple[tuple[str, str, int], ...]  # (src, dst, nbytes)


@dataclass(frozen=True)
class CompareResult:
    compared: int
    bytes_read: int
    mismatches: tuple[str, ...] = ()


@dataclass(frozen=True)
class TapeJob:
    """Restore a run of objects from one volume, in tape order.

    entries: (archive_path, object_id, seq, nbytes, scratch_dst)
    """

    volume: str
    entries: tuple[tuple[str, int, int, int, str], ...]


@dataclass(frozen=True)
class TapeResult:
    volume: str
    restored: tuple[tuple[str, int, str], ...]  # (archive_path, nbytes, dst)
