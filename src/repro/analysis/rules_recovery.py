"""RA007 — journal-before-mutate: archive mutations need a durable intent.

The crash-recovery design (see :mod:`repro.recovery`) only works if
every code path that mutates durable archive state — TSM deletes and
stores, GPFS unlinks in the delete/migrate machinery — first writes a
journal intent/lease.  A mutating call added without its bracket is
exactly the half-applied state :class:`~repro.recovery.agent.
RecoveryAgent` cannot see, so the bracket is enforced statically:
within deleter/migrator/recovery code, a call to a known
archive-mutating method must be preceded (same enclosing top-level
function, earlier line) by some call through a ``journal`` attribute.

The scope is deliberately narrow: only the packages that own the
two-phase protocols are covered.  The legacy reconcile walk
(:mod:`repro.hsm.reconcile`) stays exempt — deleting an orphan that has
no file-system side *is* its journal-free contract.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["ARCHIVE_MUTATORS", "COVERED_PATHS", "JournalIntentRule"]

#: method names whose call mutates durable archive state
ARCHIVE_MUTATORS = frozenset(
    {
        "delete_object",
        "unlink_op",
        "_unlink_now",
        "store_many",
        "store_aggregate",
        "store_objects",
    }
)

#: relpath prefixes/fragments where the bracket is mandatory
COVERED_PATHS = (
    "repro/archive/",
    "repro/hsm/manager",
    "repro/recovery/",
)


def _covered(relpath: str) -> bool:
    return any(frag in relpath for frag in COVERED_PATHS)


def _mentions_journal(call: ast.Call) -> bool:
    """True for calls routed through a ``journal`` attribute/name."""
    name = dotted_name(call.func)
    return name is not None and "journal" in name.split(".")


class JournalIntentRule(Rule):
    """Flag archive-mutating calls with no preceding journal write."""

    code = "RA007"
    name = "journal-before-mutate"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not _covered(module.relpath):
            return
        # Top-level functions only: a method and the closures it defines
        # (the ubiquitous `_proc` generator) are one protocol scope.
        for scope in self._top_level_functions(module.tree):
            journal_lines = [
                node.lineno for node in ast.walk(scope)
                if isinstance(node, ast.Call) and _mentions_journal(node)
            ]
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in ARCHIVE_MUTATORS):
                    continue
                if any(line < node.lineno for line in journal_lines):
                    continue
                yield Finding(
                    code=self.code,
                    message=(
                        f"archive-mutating call .{func.attr}() in "
                        f"{scope.name}() has no preceding journal "
                        f"intent write"
                    ),
                    path=module.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                )

    @staticmethod
    def _top_level_functions(tree: ast.Module):
        """Module- and class-level function defs (not nested closures)."""
        def walk(node, in_function: bool):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not in_function:
                        yield child
                    yield from walk(child, True)
                elif isinstance(child, ast.ClassDef):
                    yield from walk(child, in_function)
                else:
                    yield from walk(child, in_function)

        yield from walk(tree, False)
