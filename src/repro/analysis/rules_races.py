"""Static schedule-safety rules (RA008-RA011).

The dynamic sanitizer (:mod:`repro.analysis.races`) proves a *run* is
schedule-independent; these rules catch the source patterns that make
runs schedule-dependent in the first place:

* **RA008** — module- or class-level mutable state written from more
  than one simulated process (generator function).  Module globals
  mutated by several processes have no owner, so their final state
  depends on same-instant scheduling order — the restart-dedupe bug
  class.  Share state through a Store / Resource (which the sanitizer
  instruments) or give it a single writer.
* **RA009** — a bare blocking wait (``yield x.recv()/get()/request()``)
  with no timeout race or cancellation path, inside service/scheduler
  code.  A long-running service that parks on an unbounded wait cannot
  be drained, preempted or shut down — the stall class the wait-for
  graph detects at runtime.  Race the wait against a timeout
  (``yield req | env.timeout(t)``) and cancel the loser.
* **RA010** — ``call_later(0, ...)`` without an explicit ``priority=``:
  two zero-delay calls land at the same ``(time, priority)`` and their
  relative order is decided by the layer-3 tie-break, which programs
  may not rely on (see the ordering contract in ``repro.sim.kernel``).
  Pass ``priority=`` to pin the order, or schedule with a real delay.
* **RA011** — per-event ``call_later`` inside a loop whose delay is
  loop-invariant: every iteration schedules a separate timer for the
  *same* instant, paying one heap push + one dispatch per call where
  ``Environment.call_later_batch`` would pay one for the whole cohort.
  Loops that ``yield`` between iterations (simulated time may advance)
  or vary the delay per iteration are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = [
    "SharedMutableStateRule",
    "UnbatchedTimerLoopRule",
    "UnboundedServiceWaitRule",
    "UnorderedZeroDelayRule",
]

#: method names that mutate a container in place
_MUTATORS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "extendleft", "insert", "pop", "popitem", "popleft", "push",
    "remove", "setdefault", "sort", "update",
})

#: constructors whose result is shared mutable state when module-level
_CONTAINER_CTORS = frozenset({
    "dict", "list", "set", "deque", "defaultdict", "Counter",
    "OrderedDict",
})


def _is_mutable_literal(node: ast.AST) -> bool:
    if isinstance(node, (ast.Dict, ast.List, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and name.rsplit(".", 1)[-1] in _CONTAINER_CTORS:
            return True
    return False


class _FunctionIndexer(ast.NodeVisitor):
    """Index every function: qualname, generator-ness, locals, writes."""

    def __init__(self) -> None:
        self.stack: list[dict] = []
        self.functions: list[dict] = []

    def _enter(self, node) -> None:
        qual = ".".join(
            [f["name"] for f in self.stack] + [node.name]
        )
        args = node.args
        params = {
            a.arg
            for a in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        }
        self.stack.append({
            "name": node.name,
            "qual": qual,
            "is_gen": False,
            "locals": params,
            "writes": [],  # (shared name, lineno, col)
        })

    def _exit(self) -> None:
        self.functions.append(self.stack.pop())

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)
        self.generic_visit(node)
        self._exit()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Yield(self, node: ast.Yield) -> None:
        if self.stack:
            self.stack[-1]["is_gen"] = True
        self.generic_visit(node)

    visit_YieldFrom = visit_Yield  # type: ignore[assignment]

    # -- track locals so shadowed names don't count as shared writes ----
    def _add_binding_names(self, tgt: ast.AST) -> None:
        """Plain-name (re)bindings make a name local; ``x[k] =`` does not."""
        if isinstance(tgt, ast.Name):
            self.stack[-1]["locals"].add(tgt.id)
        elif isinstance(tgt, (ast.Tuple, ast.List)):
            for elt in tgt.elts:
                self._add_binding_names(elt)
        elif isinstance(tgt, ast.Starred):
            self._add_binding_names(tgt.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.stack:
            for tgt in node.targets:
                self._add_binding_names(tgt)
        self._note_target_writes(node.targets, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_target_writes([node.target], node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self.stack and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                name = dotted_name(node.func.value)
                if name is not None:
                    self.stack[-1]["writes"].append(
                        (name, node.lineno, node.col_offset)
                    )
        self.generic_visit(node)

    def _note_target_writes(self, targets, node) -> None:
        """``x[k] = v`` / ``x += v`` / ``x.a[k] = v`` count as writes."""
        if not self.stack:
            return
        for tgt in targets:
            base = tgt
            if isinstance(base, ast.Subscript):
                base = base.value
            elif isinstance(tgt, ast.Name) and isinstance(node, ast.Assign):
                continue  # plain rebinding makes it a local, not a write
            name = dotted_name(base)
            if name is not None:
                self.stack[-1]["writes"].append(
                    (name, node.lineno, node.col_offset)
                )


class SharedMutableStateRule(Rule):
    """RA008: module/class state written from >1 simulated process."""

    code = "RA008"
    name = "shared-mutable-state"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        shared: set[str] = set()
        for stmt in module.tree.body:
            if isinstance(stmt, ast.Assign) and _is_mutable_literal(stmt.value):
                for tgt in stmt.targets:
                    if isinstance(tgt, ast.Name):
                        shared.add(tgt.id)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, ast.Assign) and _is_mutable_literal(sub.value):
                        for tgt in sub.targets:
                            if isinstance(tgt, ast.Name):
                                shared.add(f"{stmt.name}.{tgt.id}")
        if not shared:
            return
        indexer = _FunctionIndexer()
        indexer.visit(module.tree)
        #: shared name -> [(writer qualname, lineno, col), ...]
        writers: dict[str, list[tuple[str, int, int]]] = {}
        for fn in indexer.functions:
            if not fn["is_gen"]:
                continue
            for name, lineno, col in fn["writes"]:
                root = name.split(".", 1)[0]
                if name in shared and root not in fn["locals"]:
                    writers.setdefault(name, []).append(
                        (fn["qual"], lineno, col)
                    )
        for name in sorted(writers):
            sites = writers[name]
            distinct = sorted({q for q, _, _ in sites})
            if len(distinct) < 2:
                continue
            for qual, lineno, col in sites:
                yield Finding(
                    code=self.code,
                    message=(
                        f"shared mutable state {name!r} is written from "
                        f"{len(distinct)} simulated processes "
                        f"({', '.join(distinct)}); its final state depends "
                        "on same-instant scheduling order — give it a "
                        "single writer or share it through a Store"
                    ),
                    path=module.relpath,
                    line=lineno,
                    col=col,
                )


#: waitable-producing calls that block unboundedly without a race
_BLOCKING_WAITS = frozenset({"recv", "get", "request", "acquire"})


class UnboundedServiceWaitRule(Rule):
    """RA009: bare blocking wait in service/scheduler code."""

    code = "RA009"
    name = "unbounded-service-wait"

    def __init__(self, service_paths: Sequence[str] = ("scheduler/",)) -> None:
        self.service_paths = tuple(service_paths)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if not any(frag in module.relpath for frag in self.service_paths):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Yield) or node.value is None:
                continue
            call = node.value
            if not (isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr in _BLOCKING_WAITS):
                continue
            target = dotted_name(call.func.value) or "<expr>"
            # `yield env.timeout(...)` style waits are time-bound and the
            # attr names don't collide; anything reaching here is a bare
            # recv/get/request with no timeout race or cancellation path
            yield Finding(
                code=self.code,
                message=(
                    f"service code parks on a bare blocking "
                    f"'yield {target}.{call.func.attr}(...)' with no "
                    "timeout or cancellation path; a drained/preempted "
                    "service cannot wake it — race it against a timeout "
                    "(yield req | env.timeout(t)) and cancel the loser"
                ),
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
            )


def _is_zero(node: Optional[ast.AST]) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
        and node.value == 0
    )


class UnorderedZeroDelayRule(Rule):
    """RA010: ``call_later(0, ...)`` without an explicit priority."""

    code = "RA010"
    name = "unordered-zero-delay"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_call_later = (
                isinstance(func, ast.Attribute) and func.attr == "call_later"
            ) or (isinstance(func, ast.Name) and func.id == "call_later")
            if not is_call_later or not node.args:
                continue
            if not _is_zero(node.args[0]):
                continue
            if any(kw.arg == "priority" for kw in node.keywords):
                continue
            yield Finding(
                code=self.code,
                message=(
                    "call_later(0, ...) chains run at the same (time, "
                    "priority) and their relative order is an arbitrary "
                    "tie-break (the schedule sanitizer permutes it); pass "
                    "priority= to pin the order, or use a real delay"
                ),
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
            )


def _iter_no_nested_funcs(nodes) -> Iterator[ast.AST]:
    """Walk *nodes* skipping nested function/lambda bodies (their code
    does not run once per loop iteration)."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _names_in(node: Optional[ast.AST]) -> set[str]:
    if node is None:
        return set()
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class UnbatchedTimerLoopRule(Rule):
    """RA011: per-event ``call_later`` in a loop the batch API could serve."""

    code = "RA011"
    name = "unbatched-timer-loop"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            body = list(_iter_no_nested_funcs(loop.body))
            # A yield/await between iterations can advance simulated time,
            # so the timers are not a same-instant cohort.
            if any(isinstance(n, (ast.Yield, ast.YieldFrom, ast.Await))
                   for n in body):
                continue
            # Names (re)bound per iteration: the loop target plus anything
            # stored in the body.  A delay built from them legitimately
            # varies per event and cannot batch.
            varying: set[str] = set()
            if isinstance(loop, (ast.For, ast.AsyncFor)):
                varying |= _names_in(loop.target)
            for n in body:
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Store):
                    varying.add(n.id)
            for n in body:
                if not isinstance(n, ast.Call):
                    continue
                func = n.func
                is_call_later = (
                    isinstance(func, ast.Attribute)
                    and func.attr == "call_later"
                ) or (isinstance(func, ast.Name) and func.id == "call_later")
                if not is_call_later:
                    continue
                delay = n.args[0] if n.args else next(
                    (kw.value for kw in n.keywords if kw.arg == "delay"), None
                )
                if delay is None or _names_in(delay) & varying:
                    continue
                prio = next(
                    (kw.value for kw in n.keywords if kw.arg == "priority"),
                    None,
                )
                if _names_in(prio) & varying:
                    continue  # per-event priorities cannot share a batch
                key = (n.lineno, n.col_offset)
                if key in seen:
                    continue
                seen.add(key)
                yield Finding(
                    code=self.code,
                    message=(
                        "call_later with a loop-invariant delay schedules "
                        "one timer per iteration for the same instant; "
                        "collect the callbacks and schedule once with "
                        "call_later_batch(delay, fns) so the cohort pays "
                        "one heap push and one dispatch"
                    ),
                    path=module.relpath,
                    line=n.lineno,
                    col=n.col_offset,
                )
