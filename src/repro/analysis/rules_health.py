"""RA012 — no silent fault swallowing: caught faults must be recorded.

The degraded-mode design (see :mod:`repro.health`) only works if every
handler that catches a classified fault either re-raises it or feeds it
to something that remembers it happened — the health plane's
``on_fault``/``observe``, a breaker's ``record_failure``, the fault
taxonomy's ``classify_failure``, or retry accounting.  A bare

    except TsmFault:
        pass

is the outage nobody pages on: the operation "succeeded", the breaker
never trips, and the detectors have nothing to notice between probes.

The rule flags ``except`` handlers naming a fault type from
:mod:`repro.faults` whose body contains neither a ``raise`` nor a call
through one of the recording names in :data:`RECORDING_CALLS`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["FAULT_TYPES", "RECORDING_CALLS", "SilentFaultSwallowRule"]

#: exception names from the repro.faults taxonomy
FAULT_TYPES = frozenset(
    {
        "FaultError",
        "DriveFault",
        "TsmFault",
        "TransientIOFault",
        "NodeOutageFault",
        "CrashFault",
        "CatalogFault",
    }
)

#: call-name fragments that count as recording the fault: health-plane
#: observations, breaker bookkeeping, taxonomy classification, and the
#: ranks' retry/failure accounting
RECORDING_CALLS = frozenset(
    {
        "on_fault",
        "observe",
        "record_failure",
        "record_success",
        "classify_failure",
        "_record",
        "record",
        "note_failure",
    }
)


def _names_fault(type_node: ast.expr | None) -> str | None:
    """The caught fault-type name, if the handler names one."""
    if type_node is None:
        return None
    candidates = (
        type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    )
    for node in candidates:
        name = dotted_name(node)
        if name is not None and name.split(".")[-1] in FAULT_TYPES:
            return name.split(".")[-1]
    return None


def _records_or_raises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = dotted_name(node.func)
            if name is None:
                continue
            last = name.split(".")[-1]
            if last in RECORDING_CALLS or "health" in name.split("."):
                return True
    return False


class SilentFaultSwallowRule(Rule):
    """Flag fault-catching handlers that neither record nor re-raise."""

    code = "RA012"
    name = "silent-fault-swallow"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _names_fault(node.type)
            if caught is None:
                continue
            if _records_or_raises(node):
                continue
            yield Finding(
                code=self.code,
                message=(
                    f"except {caught}: handler swallows an injected "
                    "fault without recording a health event "
                    "(on_fault/record_failure/classify_failure) or "
                    "re-raising"
                ),
                path=module.relpath,
                line=node.lineno,
                col=node.col_offset,
            )
