"""Command-line linter: ``python -m repro.analysis.lint src/``.

Exit status 0 when clean, 1 when findings remain after suppressions,
2 on usage errors.  ``--format json`` emits a machine-readable report
(CI archives it); ``--select RA001,RA003`` restricts the rule set.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.core import LintResult, Rule, run_lint
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_protocol import PayloadSchemaRule, ProtocolRule
from repro.analysis.rules_queues import (
    BlockingReceiveRule,
    QueueComplexityRule,
    QueueDisciplineRule,
)
from repro.analysis.rules_recovery import JournalIntentRule

__all__ = ["default_rules", "main"]


def default_rules() -> list[Rule]:
    return [
        DeterminismRule(),
        ProtocolRule(),
        QueueDisciplineRule(),
        PayloadSchemaRule(),
        BlockingReceiveRule(),
        QueueComplexityRule(),
        JournalIntentRule(),
    ]


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static checks for repro's determinism, protocol, "
        "queue-discipline and crash-journal invariants (RA001-RA007).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run, e.g. RA001,RA003",
    )
    args = parser.parse_args(argv)

    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in default_rules()}
        unknown = set(select) - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")

    result: LintResult = run_lint(args.paths, default_rules(), select=select)

    if args.format == "json":
        print(result.to_json())
    else:
        for finding in result.findings:
            print(finding.format())
        summary = (
            f"{len(result.findings)} finding(s), {result.suppressed} "
            f"suppressed, {result.files_checked} file(s) checked"
        )
        print(("" if not result.findings else "\n") + summary)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
