"""Command-line linter: ``python -m repro.analysis.lint src/``.

Exit status 0 when clean, 1 when findings remain after suppressions,
2 when the linter itself crashed (or on usage errors).  ``--format
json`` emits a machine-readable report (CI archives it); ``--format
sarif`` emits SARIF 2.1.0 for GitHub code-scanning annotations;
``--select RA001,RA003`` restricts the rule set.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.core import LintResult, Rule, run_lint
from repro.analysis.rules_determinism import DeterminismRule
from repro.analysis.rules_health import SilentFaultSwallowRule
from repro.analysis.rules_protocol import PayloadSchemaRule, ProtocolRule
from repro.analysis.rules_queues import (
    BlockingReceiveRule,
    QueueComplexityRule,
    QueueDisciplineRule,
)
from repro.analysis.rules_races import (
    SharedMutableStateRule,
    UnbatchedTimerLoopRule,
    UnboundedServiceWaitRule,
    UnorderedZeroDelayRule,
)
from repro.analysis.rules_recovery import JournalIntentRule

__all__ = ["default_rules", "main", "to_sarif"]


def default_rules() -> list[Rule]:
    return [
        DeterminismRule(),
        ProtocolRule(),
        QueueDisciplineRule(),
        PayloadSchemaRule(),
        BlockingReceiveRule(),
        QueueComplexityRule(),
        JournalIntentRule(),
        SharedMutableStateRule(),
        UnboundedServiceWaitRule(),
        UnorderedZeroDelayRule(),
        UnbatchedTimerLoopRule(),
        SilentFaultSwallowRule(),
    ]


def to_sarif(result: LintResult, rules: Sequence[Rule]) -> dict:
    """SARIF 2.1.0 log of a lint run (GitHub code-scanning format)."""
    rule_meta = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {
                "text": (rule.__doc__ or rule.name).strip().splitlines()[0]
            },
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path},
                        "region": {
                            "startLine": f.line,
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in result.findings
    ]
    return {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
        "master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": "https://example.invalid/repro",
                        "rules": rule_meta,
                    }
                },
                "results": results,
            }
        ],
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Static checks for repro's determinism, protocol, "
        "queue-discipline, crash-journal, schedule-safety and "
        "fault-visibility invariants (RA001-RA012).",
    )
    parser.add_argument("paths", nargs="+", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run, e.g. RA001,RA003",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    select = None
    if args.select:
        select = [code.strip() for code in args.select.split(",") if code.strip()]
        known = {rule.code for rule in rules}
        unknown = set(select) - known
        if unknown:
            parser.error(f"unknown rule codes: {', '.join(sorted(unknown))}")

    try:
        result: LintResult = run_lint(args.paths, rules, select=select)
    except Exception as exc:  # noqa: BLE001 - exit-code contract: crash = 2
        print(
            f"linter crashed: {type(exc).__name__}: {exc}", file=sys.stderr
        )
        return 2

    if args.format == "json":
        print(result.to_json())
    elif args.format == "sarif":
        print(json.dumps(to_sarif(result, rules), indent=2))
    else:
        for finding in result.findings:
            print(finding.format())
        summary = (
            f"{len(result.findings)} finding(s), {result.suppressed} "
            f"suppressed, {result.files_checked} file(s) checked"
        )
        print(("" if not result.findings else "\n") + summary)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
