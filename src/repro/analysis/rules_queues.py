"""RA003/RA005/RA006 — queue discipline, cancellable receives, queue cost.

RA003 *queue discipline*: the Manager's work queues (``dir_q``,
``copy_q``, the ``idle`` rank pools, …) are single-writer state.  Worker
and helper code observing or mutating them directly would bypass the
Manager's outstanding-work accounting (``out_dir``/``out_copy``…), which
is exactly how quiescence detection goes wrong.  Any mutation of a
Manager-owned queue attribute outside the ``Manager`` class body is
flagged.

RA006 *queue complexity*: the engine's performance contract (see
:mod:`repro.sim.resources`) says wait queues are deques consumed with
``popleft`` and cancellation is tombstone-based.  A ``queue.pop(0)`` or
``queue.remove(x)`` on a known queue attribute inside the engine
packages (``repro/sim/``, ``repro/netsim/``) silently reintroduces the
O(n^2) mass-cancel / drain behaviour PR 3 removed, so it is flagged at
lint time.

RA005 *blocking receive*: a ``comm.recv(...)`` / ``store.get(...)``
raced against another event (``yield get | other``) must be cancelled
on the path where the other event wins — otherwise the mailbox item is
consumed by a get nobody is waiting on and the message is lost.  This
is the WatchDog leaked-receive bug class, caught statically.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Rule

__all__ = [
    "BlockingReceiveRule",
    "ENGINE_QUEUE_ATTRS",
    "MANAGER_OWNED_QUEUES",
    "QueueComplexityRule",
    "QueueDisciplineRule",
]

#: Manager attributes that hold queued work or rank pools
MANAGER_OWNED_QUEUES = frozenset(
    {
        "dir_q",
        "name_q",
        "copy_q",
        "tape_q",
        "idle",
        "waiting_chunks",
        "pending_small",
        "pending_compare",
        "tape_buffer",
        "parked_container_jobs",
    }
)

#: method calls that mutate a deque/list/dict/set in place
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "extendleft",
        "insert",
        "pop",
        "popleft",
        "remove",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
    }
)


def _owned_attr(node: ast.expr, owned: frozenset[str]) -> Optional[str]:
    """The owned-queue attribute a target expression reaches, if any.

    Matches ``x.dir_q`` and one subscript deep, ``x.idle["worker"]``.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute) and node.attr in owned:
        return node.attr
    return None


class QueueDisciplineRule(Rule):
    code = "RA003"
    name = "queue-discipline"

    def __init__(
        self,
        owned: frozenset[str] = MANAGER_OWNED_QUEUES,
        owner_class: str = "Manager",
    ) -> None:
        self.owned = owned
        self.owner_class = owner_class

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        findings: list[Finding] = []
        self._visit(module, module.tree, class_stack=[], findings=findings)
        return iter(findings)

    def _visit(
        self,
        module: ModuleInfo,
        node: ast.AST,
        class_stack: list[str],
        findings: list[Finding],
    ) -> None:
        if isinstance(node, ast.ClassDef):
            class_stack = class_stack + [node.name]
        inside_owner = bool(class_stack) and class_stack[-1] == self.owner_class

        attr: Optional[str] = None
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Delete)):
            targets = (
                node.targets
                if isinstance(node, (ast.Assign, ast.Delete))
                else [node.target]
            )
            for target in targets:
                attr = _owned_attr(target, self.owned)
                if attr:
                    break
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            attr = _owned_attr(node.func.value, self.owned)

        if attr and not inside_owner:
            findings.append(
                Finding(
                    self.code,
                    f"mutation of Manager-owned queue {attr!r} outside the "
                    f"{self.owner_class} class breaks single-writer discipline",
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                )
            )

        for child in ast.iter_child_nodes(node):
            self._visit(module, child, class_stack, findings)


_RECV_ATTRS = frozenset({"recv", "get"})


def _race_operands(value: ast.expr) -> Optional[list[ast.expr]]:
    """Operand expressions when *value* is a multi-event race, else None."""
    if isinstance(value, ast.BinOp) and isinstance(value.op, ast.BitOr):
        operands: list[ast.expr] = []
        stack = [value]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
                stack.extend((node.left, node.right))
            else:
                operands.append(node)
        return operands
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("AnyOf", "any_of")
    ):
        for arg in value.args:
            if isinstance(arg, (ast.List, ast.Tuple)):
                return list(arg.elts)
    return None


def _is_recv_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _RECV_ATTRS
    )


class BlockingReceiveRule(Rule):
    code = "RA005"
    name = "blocking-receive"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for finding in self._check_function(module, node):
                key = (finding.line, finding.col)
                if key not in seen:  # nested defs are walked twice
                    seen.add(key)
                    yield finding

    def _check_function(
        self, module: ModuleInfo, func: ast.AST
    ) -> Iterator[Finding]:
        #: name -> assignment node of a recv/get-producing event
        gets: dict[str, ast.AST] = {}
        raced: dict[str, ast.AST] = {}  # name -> race site
        cancelled: set[str] = set()
        inline_races: list[ast.expr] = []

        for node in ast.walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_recv_call(node.value)
            ):
                gets[node.targets[0].id] = node
            elif isinstance(node, ast.Yield) and node.value is not None:
                operands = _race_operands(node.value)
                if operands is None:
                    continue
                for operand in operands:
                    if isinstance(operand, ast.Name):
                        raced.setdefault(operand.id, node)
                    elif _is_recv_call(operand):
                        inline_races.append(operand)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "cancel"
                and isinstance(node.func.value, ast.Name)
            ):
                cancelled.add(node.func.value.id)

        for name, race_site in sorted(raced.items()):
            if name in gets and name not in cancelled:
                yield Finding(
                    self.code,
                    f"receive {name!r} raced against another event with no "
                    ".cancel() path; the loser keeps consuming the mailbox",
                    module.relpath,
                    race_site.lineno,
                    race_site.col_offset,
                )
        for call in inline_races:
            yield Finding(
                self.code,
                "recv/get constructed inline inside a race can never be "
                "cancelled; bind it to a name and cancel the loser",
                module.relpath,
                call.lineno,
                call.col_offset,
            )


#: engine wait-queue attributes covered by the O(1) performance contract
ENGINE_QUEUE_ATTRS = frozenset(
    {
        "_getq",
        "_putq",
        "_gets",
        "_puts",
        "_waiters",
        "_queue",
        "_call_pool",
        "_mailboxes",
    }
)


class QueueComplexityRule(Rule):
    code = "RA006"
    name = "queue-complexity"

    #: path fragments of the packages the performance contract covers
    engine_paths = ("repro/sim/", "repro/netsim/")

    def __init__(self, attrs: frozenset[str] = ENGINE_QUEUE_ATTRS) -> None:
        self.attrs = attrs

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        relpath = module.relpath.replace("\\", "/")
        if not any(fragment in relpath for fragment in self.engine_paths):
            return
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            attr = _owned_attr(node.func.value, self.attrs)
            if attr is None:
                continue
            meth = node.func.attr
            if meth == "remove":
                yield Finding(
                    self.code,
                    f"O(n) {attr}.remove() on an engine wait queue; cancel "
                    "lazily with a tombstone (callbacks = None) and let the "
                    "queue sweep/compact (see repro.sim.resources)",
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                )
            elif meth == "pop" and node.args:
                # deque/list .pop() from the tail is fine; any indexed pop
                # shifts the remainder and is O(n) per dequeue
                yield Finding(
                    self.code,
                    f"O(n) {attr}.pop(i) on an engine wait queue; use a "
                    "deque with popleft()",
                    module.relpath,
                    node.lineno,
                    node.col_offset,
                )
