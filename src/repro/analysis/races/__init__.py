"""Schedule sanitizer: happens-before races, permutation, deadlocks.

Three-part dynamic companion to the static RA rules (see
``repro.analysis``):

1. :class:`RaceDetector` — vector-clock happens-before tracking over
   SimComm send/recv, Store put/get and Resource acquire/release,
   flagging *schedule-sensitive conflicts* (same-instant, cross-process,
   no HB edge) plus continuous wait-for-graph deadlock scanning and an
   end-of-run stall check.
2. :func:`sanitize_scenario` — the DPOR-lite permuter: re-runs a seeded
   ``repro.perf`` scenario under N permuted same-instant schedules
   (:class:`repro.sim.RandomTiebreakPolicy`) and gates on conserved
   headline keys staying byte-identical; timing-class divergences must
   be mechanically attributed (minimized) to a legal same-``(time,
   priority)`` tie-break pair.
3. :func:`sanitize_soak` — the scheduler chaos soak under FIFO +
   permuted schedules, gating on the service invariant list staying
   empty and the run staying deadlock/stall-free.

CLI::

    python -m repro.analysis.races --permutations 10

Exit codes: 0 = clean, 1 = findings (unexplained divergence, deadlock,
stall or soak violation), 2 = sanitizer crashed.
"""

from repro.analysis.races.clocks import VectorClock
from repro.analysis.races.detector import (
    KernelHooks,
    RaceDetector,
    ScheduleRecorder,
    describe_event,
    find_cycles,
)
from repro.analysis.races.permute import (
    classify_headline_key,
    derive_seed,
    minimize_divergence,
    sanitize_scenario,
    sanitize_soak,
    split_headline,
)

__all__ = [
    "KernelHooks",
    "RaceDetector",
    "ScheduleRecorder",
    "VectorClock",
    "classify_headline_key",
    "derive_seed",
    "describe_event",
    "find_cycles",
    "minimize_divergence",
    "sanitize_scenario",
    "sanitize_soak",
    "split_headline",
]
