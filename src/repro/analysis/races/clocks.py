"""Vector clocks for the happens-before race detector.

A :class:`VectorClock` maps process id -> logical clock value.  The
detector keeps one per simulated process and advances it on every
observable action (send, receive, put, get, acquire, release); a
message or store item carries a frozen snapshot of its producer's clock,
which the consumer merges on delivery — the transitive happens-before
relation falls out of the merges.

The detector's hot path never materialises full clock comparisons: it
uses the *epoch* pair test (``b.vc[pid_a] >= clk_a``) against a single
component.  The full :meth:`compare` is for tests and offline analysis.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

__all__ = ["VectorClock"]


class VectorClock:
    """A sparse vector clock: ``{pid: clock}`` with missing entries = 0."""

    __slots__ = ("c",)

    def __init__(self, entries: Optional[Mapping[int, int]] = None) -> None:
        self.c: dict[int, int] = dict(entries) if entries else {}

    # -- advancement ----------------------------------------------------
    def tick(self, pid: int) -> int:
        """Increment *pid*'s component; return the new value (its epoch)."""
        v = self.c.get(pid, 0) + 1
        self.c[pid] = v
        return v

    def merge(self, other: Mapping[int, int]) -> None:
        """Componentwise max with *other* (message-receive join)."""
        c = self.c
        for pid, v in (other.c if isinstance(other, VectorClock) else other).items():
            if v > c.get(pid, 0):
                c[pid] = v

    def observe(self, pid: int, clk: int) -> None:
        """Raise *pid*'s component to at least *clk*."""
        if clk > self.c.get(pid, 0):
            self.c[pid] = clk

    # -- queries --------------------------------------------------------
    def get(self, pid: int) -> int:
        return self.c.get(pid, 0)

    def dominates(self, pid: int, clk: int) -> bool:
        """Epoch test: does this clock know *pid*'s action *clk*?"""
        return self.c.get(pid, 0) >= clk

    def compare(self, other: "VectorClock") -> Optional[int]:
        """Full comparison: -1 (self < other), 0 (equal), 1 (self > other),
        or None when the clocks are concurrent (incomparable)."""
        le = ge = True
        for pid in set(self.c) | set(other.c):
            a, b = self.c.get(pid, 0), other.c.get(pid, 0)
            if a < b:
                ge = False
            elif a > b:
                le = False
        if le and ge:
            return 0
        if le:
            return -1
        if ge:
            return 1
        return None

    # -- maintenance ----------------------------------------------------
    def copy(self) -> "VectorClock":
        vc = VectorClock()
        vc.c = dict(self.c)
        return vc

    def snapshot(self, drop: Iterable[int] = ()) -> dict[int, int]:
        """A plain-dict copy, optionally omitting the pids in *drop*
        (the detector prunes processes that died before the current
        instant — they can take no further actions, so no future access
        will ever need their component for the epoch test)."""
        if not drop:
            return dict(self.c)
        dropset = set(drop)
        return {p: v for p, v in self.c.items() if p not in dropset}

    def __len__(self) -> int:
        return len(self.c)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{p}:{v}" for p, v in sorted(self.c.items()))
        return f"<VC {{{inner}}}>"
