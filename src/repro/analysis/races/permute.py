"""DPOR-lite schedule permutation driver.

Re-runs seeded :mod:`repro.perf` scenarios under N permuted same-instant
schedules (:class:`~repro.sim.RandomTiebreakPolicy`) and checks that the
simulation's *outcome* does not depend on layer-3 ordering (see the
ordering contract in ``repro.sim.kernel``).  The gate distinguishes two
headline classes:

* **conserved keys** — counts, byte totals, job/file tallies.  These
  must be byte-identical under every permutation; any drift is an
  *unexplained divergence* and fails the gate (it means the simulation
  computes a different answer depending on arbitrary tie-break order —
  the restart-dedupe / WatchDog bug class).
* **timing keys** — end times, durations, peaks, deviations.  Genuinely
  schedule-dependent quantities (two jobs finishing at the same instant
  dispatch their successors in either order, shifting completion
  times).  A timing divergence is tolerated only when the minimizer can
  mechanically attribute it to a same-``(time, priority)`` tie-break
  pair — the *first diverging event pair* — in which case it is
  reported as *explained*.  A divergence whose first differing pops are
  **not** an equal-instant pair would mean the permuted policy changed
  something layers 1-2 should have pinned, and fails the gate too.

Minimization protocol (per diverging permutation, first one per
scenario by default): run base + permuted schedules once more with
digest recorders (crc32 per pop), locate the first differing pop index,
then run both once more recording a +/-3 pop window of full event
descriptions around that index.  Four extra runs, no full-schedule
retention.
"""

from __future__ import annotations

from typing import Any, Callable, Optional
from zlib import crc32

from repro.analysis.races.detector import RaceDetector, ScheduleRecorder
from repro.sim.kernel import (
    RandomTiebreakPolicy,
    _mix64,
    set_default_hb_recorder,
    set_default_schedule_policy,
)

__all__ = [
    "classify_headline_key",
    "derive_seed",
    "sanitize_scenario",
    "sanitize_soak",
    "split_headline",
]

#: substrings marking a headline key as schedule-dependent *timing* data
TIMING_MARKERS = (
    "time",
    "duration",
    "deviation",
    "peak",
    "latency",
    "wait",
    "in_flight",
    "rate",
    "gbps",
    "throughput",
)


def classify_headline_key(key: str) -> str:
    k = key.lower()
    return "timing" if any(m in k for m in TIMING_MARKERS) else "conserved"


def split_headline(headline: dict) -> tuple[dict, dict]:
    """(conserved, timing) partitions of a scenario headline."""
    conserved: dict = {}
    timing: dict = {}
    for key, val in headline.items():
        (timing if classify_headline_key(key) == "timing" else conserved)[key] = val
    return conserved, timing


def derive_seed(base_seed: int, name: str, k: int) -> int:
    """Deterministic per-(scenario, permutation) tie-break seed."""
    return _mix64(base_seed ^ crc32(name.encode("utf-8")), k)


# ---------------------------------------------------------------------------
# single-run plumbing
# ---------------------------------------------------------------------------

def _run_scenario(
    name: str,
    policy_seed: Optional[int],
    recorder_factory: Optional[Callable[[], Any]] = None,
) -> tuple[dict, list]:
    """One scenario run under a tie-break policy, returning
    (headline, recorders).  ``policy_seed=None`` runs the FIFO baseline.
    *recorder_factory* builds one recorder per Environment the scenario
    creates (some scenarios build several)."""
    from repro.perf import SCENARIOS, _ensure_scenarios_loaded

    _ensure_scenarios_loaded()
    fn = SCENARIOS[name]
    recorders: list = []

    def hb_factory(env):
        rec = recorder_factory()
        rec.bind(env)
        recorders.append(rec)
        return rec

    set_default_schedule_policy(
        None if policy_seed is None else (lambda: RandomTiebreakPolicy(policy_seed))
    )
    set_default_hb_recorder(hb_factory if recorder_factory is not None else None)
    try:
        out = fn()
    finally:
        set_default_schedule_policy(None)
        set_default_hb_recorder(None)
    return dict(out.headline), recorders


def _first_digest_diff(
    base: list[ScheduleRecorder], perm: list[ScheduleRecorder]
) -> Optional[tuple[int, int]]:
    """(env index, pop index) of the first differing pop, or None."""
    for env_idx in range(max(len(base), len(perm))):
        if env_idx >= len(base) or env_idx >= len(perm):
            return env_idx, 0
        a, b = base[env_idx].digests, perm[env_idx].digests
        n = min(len(a), len(b))
        for i in range(n):
            if a[i] != b[i]:
                return env_idx, i
        if len(a) != len(b):
            return env_idx, n
    return None


def minimize_divergence(name: str, policy_seed: int, window: int = 3) -> Optional[dict]:
    """Locate and describe the first diverging event pair between the
    FIFO baseline and permutation *policy_seed* of scenario *name*."""
    _, base_rec = _run_scenario(name, None, ScheduleRecorder)
    _, perm_rec = _run_scenario(name, policy_seed, ScheduleRecorder)
    hit = _first_digest_diff(base_rec, perm_rec)
    if hit is None:
        return None
    env_idx, pop_idx = hit
    lo, hi = max(0, pop_idx - window), pop_idx + window + 1

    def _window_recorders(seed):
        _, recs = _run_scenario(name, seed, lambda: ScheduleRecorder(window=(lo, hi)))
        return recs[env_idx].entries if env_idx < len(recs) else []

    base_win = _window_recorders(None)
    perm_win = _window_recorders(policy_seed)
    base_at = next((e for e in base_win if e[0] == pop_idx), None)
    perm_at = next((e for e in perm_win if e[0] == pop_idx), None)
    same_instant = (
        base_at is not None
        and perm_at is not None
        and base_at[1] == perm_at[1]  # time
        and base_at[2] == perm_at[2]  # priority
    )
    fmt = lambda e: {  # noqa: E731 - tiny local shaper
        "pop": e[0], "time": e[1], "priority": e[2], "event": e[3],
    }
    return {
        "env": env_idx,
        "pop_index": pop_idx,
        "same_instant_pair": same_instant,
        "base_event": fmt(base_at) if base_at else None,
        "permuted_event": fmt(perm_at) if perm_at else None,
        "base_window": [fmt(e) for e in base_win],
        "permuted_window": [fmt(e) for e in perm_win],
    }


# ---------------------------------------------------------------------------
# per-scenario sanitizer
# ---------------------------------------------------------------------------

def sanitize_scenario(
    name: str,
    permutations: int = 10,
    seed: int = 0,
    detect: bool = True,
    minimize: bool = True,
    scan_interval: int = 5000,
) -> dict:
    """Full sanitizer pass over one perf scenario.

    Returns a report dict; ``report["ok"]`` is False on any unexplained
    divergence, deadlock or stall.  Conflicts are informational (the
    permutation gate is what proves them benign).
    """
    base_headline, detectors = _run_scenario(
        name,
        None,
        (lambda: RaceDetector(scan_interval=scan_interval)) if detect else None,
    )
    dynamic: dict = {}
    if detect:
        for det in detectors:
            det.finalize()
        dynamic = _merge_dynamic([det.report() for det in detectors])

    conserved_base, timing_base = split_headline(base_headline)
    divergences: list[dict] = []
    minimized = False
    for k in range(1, permutations + 1):
        pseed = derive_seed(seed, name, k)
        perm_headline, _ = _run_scenario(name, pseed)
        conserved_perm, timing_perm = split_headline(perm_headline)
        diff_cons = _diff(conserved_base, conserved_perm)
        diff_time = _diff(timing_base, timing_perm)
        if not diff_cons and not diff_time:
            continue
        record = {
            "permutation": k,
            "tiebreak_seed": pseed,
            "conserved_diffs": diff_cons,
            "timing_diffs": diff_time,
            "explained": False,
            "first_divergence": None,
        }
        if minimize and not minimized:
            record["first_divergence"] = minimize_divergence(name, pseed)
            minimized = True
        first = record["first_divergence"]
        # A divergence is *explained* when nothing conserved moved and
        # (if minimized) the first schedule difference is a legal
        # same-(time, priority) tie-break pair.
        record["explained"] = not diff_cons and (
            first is None or bool(first.get("same_instant_pair"))
        )
        divergences.append(record)

    unexplained = [d for d in divergences if not d["explained"]]
    report = {
        "scenario": name,
        "permutations": permutations,
        "seed": seed,
        "headline": base_headline,
        "conserved_keys": sorted(conserved_base),
        "timing_keys": sorted(timing_base),
        "divergences": divergences,
        "unexplained_divergences": len(unexplained),
        "dynamic": dynamic,
        "deadlocks": len(dynamic.get("deadlocks", [])),
        "stalls": len(dynamic.get("stalls", [])),
    }
    report["ok"] = (
        not unexplained
        and not dynamic.get("deadlocks")
        and not dynamic.get("stalls")
    )
    return report


def _diff(base: dict, perm: dict) -> dict:
    out = {}
    for key in sorted(set(base) | set(perm)):
        a, b = base.get(key), perm.get(key)
        if a != b:
            out[key] = {"base": a, "permuted": b}
    return out


def _merge_dynamic(reports: list[dict]) -> dict:
    """Fold per-Environment detector reports into one (multi-env scenarios)."""
    if not reports:
        return {}
    if len(reports) == 1:
        return reports[0]
    merged = {
        "processes": sum(r.get("processes", 0) for r in reports),
        "conflicts": [c for r in reports for c in r.get("conflicts", [])],
        "deadlocks": [d for r in reports for d in r.get("deadlocks", [])],
        "stalls": [s for r in reports for s in r.get("stalls", [])],
    }
    merged["conflicts"].sort(
        key=lambda c: (-c["count"], c["object"], c["access_a"])
    )
    merged["conflict_signatures"] = len(merged["conflicts"])
    merged["conflict_events"] = sum(c["count"] for c in merged["conflicts"])
    return merged


# ---------------------------------------------------------------------------
# scheduler chaos-soak sanitizer
# ---------------------------------------------------------------------------

def sanitize_soak(permutations: int = 2, seed: int = 0) -> dict:
    """Deadlock/stall + invariant check on the scheduler chaos soak.

    The soak's summary counts are *not* conserved under permutation by
    design (chaos victims are picked from schedule-dependent system
    state), so the gate here is the service's own invariant list: it
    must stay empty under FIFO and under every permuted schedule, and
    the FIFO run must show no deadlock or stall.
    """
    from repro.scheduler.scenario import run_soak

    detectors: list[RaceDetector] = []

    def hb_factory(env):
        det = RaceDetector()
        det.bind(env)
        detectors.append(det)
        return det

    set_default_hb_recorder(hb_factory)
    try:
        base = run_soak()
    finally:
        set_default_hb_recorder(None)
    for det in detectors:
        det.finalize()
    dynamic = _merge_dynamic([det.report() for det in detectors])

    runs = [{"schedule": "fifo", "violations": list(base["violations"])}]
    for k in range(1, permutations + 1):
        pseed = derive_seed(seed, "scheduler_soak", k)
        set_default_schedule_policy(lambda: RandomTiebreakPolicy(pseed))
        try:
            perm = run_soak()
        finally:
            set_default_schedule_policy(None)
        runs.append({
            "schedule": f"random:{pseed}",
            "violations": list(perm["violations"]),
        })

    all_violations = [v for r in runs for v in r["violations"]]
    report = {
        "scenario": "scheduler_soak",
        "permutations": permutations,
        "seed": seed,
        "runs": runs,
        "dynamic": dynamic,
        "deadlocks": len(dynamic.get("deadlocks", [])),
        "stalls": len(dynamic.get("stalls", [])),
        "violations": len(all_violations),
    }
    report["ok"] = (
        not all_violations
        and not dynamic.get("deadlocks")
        and not dynamic.get("stalls")
    )
    return report
