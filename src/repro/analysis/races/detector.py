"""Dynamic happens-before race detection and deadlock/stall analysis.

The :class:`RaceDetector` plugs into ``Environment.hb`` (see
``repro.sim.kernel``) and observes every kernel event pop plus the
store/resource/communicator hook points.  It maintains one
:class:`~repro.analysis.races.clocks.VectorClock` per simulated process
and derives three kinds of findings:

* **schedule-sensitive conflicts** — two same-timestamp accesses from
  different processes to the same store / mailbox / resource with no
  happens-before edge between them.  Every such pair is an ordering
  the FIFO tie-break pins down arbitrarily; the permuter
  (:mod:`repro.analysis.races.permute`) is what proves the pinning is
  benign.  Conflicts are therefore *informational*: they map where the
  simulation's outcome could depend on layer-3 ordering.
* **deadlocks** — cycles in the wait-for graph built from blocked
  ``Request`` -> holder edges and process joins, scanned continuously
  every ``scan_interval`` time advances and once at the end.
* **stalls** — live processes still parked on non-time events when the
  event queue has drained (nothing can ever wake them).

Happens-before edges tracked: program order (per-process clock),
message send -> delivery -> receive (items carry a frozen snapshot of
the producer's clock, merged by the consumer), and resource release ->
next acquire.  Actions taken from kernel context (``call_later``
closures with no active process) share the synthetic pid 0 unless they
deliver a stamped item — message deliveries are stamped by
``SimComm.send``, so the dominant kernel-context writer is attributed
to its true originating process.

Precision notes: the detector never reports a false *ordered* verdict
for accesses it attributes correctly — the epoch pair test
(``vc_b[pid_a] >= clk_a``) is evaluated at the second access against
the first access's exact epoch.  It can over-report (two pid-0 actions
from unrelated timers are treated as one process and their mutual
conflicts suppressed; a resource's release stamp is last-writer-wins,
adding a spurious edge when releases pile up) — both biases are toward
fewer conflicts, never toward false deadlocks.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Any, Optional

from repro.analysis.races.clocks import VectorClock
from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Condition,
    Process,
    Timeout,
    _ScheduledCall,
)
from repro.sim.resources import Request, StoreGet

__all__ = [
    "KernelHooks",
    "RaceDetector",
    "ScheduleRecorder",
    "describe_event",
    "find_cycles",
]


def find_cycles(edges: dict[int, set[int]]) -> list[list[int]]:
    """Cycles in a directed graph (iterative DFS, gray/black coloring).

    Returns each cycle as the list of nodes along it (no closing
    repeat).  Only the first cycle reached through any given node is
    reported — enough for deadlock detection, where one representative
    per strongly-connected knot is what the operator needs.
    """
    cycles: list[list[int]] = []
    color: dict[int, int] = {}  # 1 = on current path, 2 = done
    for root in edges:
        if color.get(root):
            continue
        path = [root]
        on_path = {root}
        color[root] = 1
        iters = [iter(edges.get(root, ()))]
        while iters:
            advanced = False
            for nxt in iters[-1]:
                if nxt in on_path:
                    cycles.append(path[path.index(nxt):])
                    continue
                if color.get(nxt) or nxt not in edges:
                    continue
                color[nxt] = 1
                path.append(nxt)
                on_path.add(nxt)
                iters.append(iter(edges.get(nxt, ())))
                advanced = True
                break
            if not advanced:
                done = path.pop()
                on_path.discard(done)
                color[done] = 2
                iters.pop()
    return cycles

_DIGITS = re.compile(r"\d+")


def _norm(name: str) -> str:
    """Collapse instance numbering so findings dedup across jobs/ranks."""
    return _DIGITS.sub("#", name)


def describe_event(event: Any) -> str:
    """Stable, policy-independent one-line description of a popped event."""
    if type(event) is _ScheduledCall:
        fn = event._fn
        return f"call:{getattr(fn, '__qualname__', repr(fn))}"
    if isinstance(event, Process):
        return f"proc:{event.name}"
    if isinstance(event, Timeout):
        return "timeout"
    return type(event).__name__


class KernelHooks:
    """No-op base for ``Environment.hb`` recorders.

    Subclass and override what you need; the kernel calls:
    ``on_pop`` (every event), ``on_process`` (process creation),
    ``on_comm_send`` / ``on_comm_recv`` (SimComm), ``on_store_put`` /
    ``on_store_get`` (Store family), ``on_request`` / ``on_release``
    (Resource family).
    """

    def bind(self, env: Any) -> None:
        self.env = env

    def on_pop(self, t: float, priority: int, event: Any) -> None:
        pass

    def on_process(self, proc: Any) -> None:
        pass

    def on_comm_send(self, comm: Any, msg: Any, latency: float) -> None:
        pass

    def on_comm_recv(self, comm: Any, rank: int, get: Any) -> None:
        pass

    def on_store_put(self, store: Any, item: Any) -> None:
        pass

    def on_store_get(self, store: Any, get: Any) -> None:
        pass

    def on_request(self, resource: Any, request: Any) -> None:
        pass

    def on_release(self, resource: Any, request: Any) -> None:
        pass


class ScheduleRecorder(KernelHooks):
    """Records the pop stream for schedule comparison / minimization.

    ``window=None`` records a compact digest per pop (crc32 of
    ``time|priority|description``); ``window=(lo, hi)`` records full
    ``(time, priority, description)`` tuples for pops with index in
    ``[lo, hi)`` only — the two-pass protocol the divergence minimizer
    uses to avoid holding millions of tuples.
    """

    def __init__(self, window: Optional[tuple[int, int]] = None) -> None:
        from zlib import crc32

        self._crc32 = crc32
        self.window = window
        self.digests: list[int] = []
        self.entries: list[tuple[int, float, int, str]] = []
        self._idx = 0

    def on_pop(self, t: float, priority: int, event: Any) -> None:
        i = self._idx
        self._idx += 1
        if self.window is None:
            desc = describe_event(event)
            self.digests.append(
                self._crc32(f"{t!r}|{priority}|{desc}".encode("utf-8"))
            )
        elif self.window[0] <= i < self.window[1]:
            self.entries.append((i, t, priority, describe_event(event)))


class RaceDetector(KernelHooks):
    """Happens-before tracker + wait-for-graph deadlock/stall scanner."""

    #: synthetic pid for actions taken outside any process (timers)
    KERNEL_PID = 0

    def __init__(self, scan_interval: int = 5000, max_examples: int = 3) -> None:
        self.scan_interval = scan_interval
        self.max_examples = max_examples
        self.env: Any = None
        # -- processes -------------------------------------------------
        self._pids: dict[Any, int] = {}
        self._names: list[str] = ["<kernel>"]
        self._clocks: list[Optional[VectorClock]] = [VectorClock()]
        self._alive: list[Any] = [None]  # pid -> Process (None once dead)
        self._dying: deque[tuple[float, int]] = deque()
        self._dead: set[int] = set()
        # -- shared-object labels --------------------------------------
        self._labels: dict[int, str] = {}
        self._label_refs: dict[int, Any] = {}  # keep ids stable
        self._type_counts: dict[str, int] = {}
        self._comms: dict[int, int] = {}
        # -- happens-before state --------------------------------------
        #: id(item) -> (producer pid, epoch, clock snapshot)
        self._item_stamp: dict[int, tuple[int, int, dict[int, int]]] = {}
        #: id(request) -> requester pid (holders; for the wait-for graph)
        self._req_pid: dict[int, int] = {}
        #: id(resource) -> release clock snapshot (release -> acquire edge)
        self._res_stamp: dict[int, tuple[int, int, dict[int, int]]] = {}
        #: id(obj) -> [instant, {(pid, kind): latest epoch}] — keeping only
        #: the latest epoch per (pid, kind) is exact (epochs are monotone:
        #: ordered w.r.t. the latest access implies ordered w.r.t. all
        #: earlier ones) and bounds the same-instant scan by distinct
        #: accessors, not accesses
        self._groups: dict[int, list] = {}
        # -- findings --------------------------------------------------
        #: signature -> [count, first time, example detail]
        self.conflicts: dict[tuple, list] = {}
        self.deadlocks: list[dict] = []
        self.stalls: list[dict] = []
        self._deadlock_sigs: set[frozenset] = set()
        self._time = float("-inf")
        self._advances = 0

    # -- registration ---------------------------------------------------
    def bind(self, env: Any) -> None:
        self.env = env

    def on_process(self, proc: Any) -> None:
        pid = len(self._names)
        self._pids[proc] = pid
        self._names.append(proc.name)
        self._clocks.append(VectorClock())
        self._alive.append(proc)

    def _actor(self) -> int:
        proc = self.env.active_process if self.env is not None else None
        if proc is None:
            return self.KERNEL_PID
        pid = self._pids.get(proc)
        if pid is None:
            # process predates the detector (not possible via the factory
            # hook, but harmless): register it late
            self.on_process(proc)
            pid = self._pids[proc]
        return pid

    def _label(self, obj: Any) -> str:
        oid = id(obj)
        label = self._labels.get(oid)
        if label is None:
            tname = type(obj).__name__
            n = self._type_counts.get(tname, 0)
            self._type_counts[tname] = n + 1
            label = f"{tname}#{n}"
            self._labels[oid] = label
            self._label_refs[oid] = obj
        return label

    def _register_comm(self, comm: Any) -> None:
        cid = id(comm)
        if cid in self._comms:
            return
        ci = len(self._comms)
        self._comms[cid] = ci
        self._label_refs[cid] = comm
        for rank, mbox in enumerate(comm._mailboxes):
            self._labels[id(mbox)] = f"comm{ci}.mbox[{rank}]"
            self._label_refs[id(mbox)] = mbox

    # -- clock plumbing -------------------------------------------------
    def _tick(self, pid: int) -> int:
        vc = self._clocks[pid]
        if vc is None:  # dead and pruned; resurrect minimally
            vc = self._clocks[pid] = VectorClock()
        return vc.tick(pid)

    def _snapshot(self, pid: int) -> dict[int, int]:
        vc = self._clocks[pid]
        return vc.snapshot(self._dead) if vc is not None else {}

    def _merge_into(self, pid: int, stamp: tuple[int, int, dict[int, int]]) -> None:
        vc = self._clocks[pid]
        if vc is None:
            return
        spid, sclk, svc = stamp
        vc.merge(svc)
        vc.observe(spid, sclk)

    # -- conflict core ---------------------------------------------------
    def _record(
        self,
        obj: Any,
        pid: int,
        clk: int,
        kind: str,
        vc: Optional[dict[int, int]] = None,
    ) -> None:
        """Record an access and test it against same-instant peers.

        *vc* is the accessor's knowledge (defaults to its live clock);
        a stamped delivery passes the producer's send-time snapshot so
        the test stays exact for kernel-context deliveries.
        """
        oid = id(obj)
        now = self.env.now
        group = self._groups.get(oid)
        name = self._names[pid]
        if group is None or group[0] != now:
            self._groups[oid] = [now, {(pid, kind): (clk, name)}]
            return
        if vc is None:
            live = self._clocks[pid]
            vc = live.c if live is not None else {}
        peers = group[1]
        for (pa, ka), (ca, na) in peers.items():
            if pa == pid:
                continue
            if vc.get(pa, 0) >= ca:
                continue  # ordered: accessor knows the prior access
            self._conflict(obj, now, (na, ka), (name, kind))
        peers[(pid, kind)] = (clk, name)

    def _conflict(
        self, obj: Any, t: float, a: tuple[str, str], b: tuple[str, str]
    ) -> None:
        label = self._label(obj)
        sig = (_norm(label), a[1], _norm(a[0]), b[1], _norm(b[0]))
        entry = self.conflicts.get(sig)
        if entry is None:
            self.conflicts[sig] = [1, t, [f"t={t:.9g} {label}: {a[0]}.{a[1]} ~ {b[0]}.{b[1]}"]]
        else:
            entry[0] += 1
            if len(entry[2]) < self.max_examples:
                entry[2].append(f"t={t:.9g} {label}: {a[0]}.{a[1]} ~ {b[0]}.{b[1]}")

    # -- kernel hooks ----------------------------------------------------
    def on_pop(self, t: float, priority: int, event: Any) -> None:
        if t != self._time:
            self._time = t
            self._advances += 1
            dying = self._dying
            while dying and dying[0][0] < t:
                _, pid = dying.popleft()
                self._dead.add(pid)
                self._clocks[pid] = None  # dead pids take no further actions
                self._alive[pid] = None
            if self._advances % self.scan_interval == 0:
                self.scan_deadlocks()
        if isinstance(event, Process):
            pid = self._pids.get(event)
            if pid is not None and pid not in self._dead:
                self._dying.append((t, pid))

    def on_comm_send(self, comm: Any, msg: Any, latency: float) -> None:
        self._register_comm(comm)
        pid = self._actor()
        clk = self._tick(pid)
        self._item_stamp[id(msg)] = (pid, clk, self._snapshot(pid))

    def on_comm_recv(self, comm: Any, rank: int, get: Any) -> None:
        self._register_comm(comm)

    def on_store_put(self, store: Any, item: Any) -> None:
        pid = self._actor()
        if pid == self.KERNEL_PID:
            stamp = self._item_stamp.get(id(item))
            if stamp is not None:
                # stamped delivery from kernel context: attribute to the
                # producer's send-time epoch (exact HB semantics)
                spid, sclk, svc = stamp
                self._record(store, spid, sclk, "put", vc=svc)
                return
        clk = self._tick(pid)
        self._record(store, pid, clk, "put")
        self._item_stamp[id(item)] = (pid, clk, self._snapshot(pid))

    def on_store_get(self, store: Any, get: Any) -> None:
        pid = self._actor()
        clk = self._tick(pid)
        self._record(store, pid, clk, "get")
        get.callbacks.append(lambda ev, pid=pid: self._on_get_done(pid, ev))

    def _on_get_done(self, pid: int, event: Any) -> None:
        if not event._ok:
            return
        stamp = self._item_stamp.pop(id(event._value), None)
        if stamp is not None:
            self._merge_into(pid, stamp)

    def on_request(self, resource: Any, request: Any) -> None:
        pid = self._actor()
        clk = self._tick(pid)
        self._record(resource, pid, clk, "acquire")
        self._req_pid[id(request)] = pid
        request.callbacks.append(lambda ev, rid=id(resource), pid=pid: self._on_grant(pid, rid))

    def _on_grant(self, pid: int, rid: int) -> None:
        stamp = self._res_stamp.get(rid)
        if stamp is not None:
            self._merge_into(pid, stamp)

    def on_release(self, resource: Any, request: Any) -> None:
        pid = self._actor()
        clk = self._tick(pid)
        self._record(resource, pid, clk, "release")
        self._res_stamp[id(resource)] = (pid, clk, self._snapshot(pid))
        self._req_pid.pop(id(request), None)

    # -- deadlock / stall scanning ---------------------------------------
    def _deps(self, event: Any, depth: int = 0) -> tuple[bool, set[int]]:
        """(blocked-forever-able, wait-for pids) of a process target.

        ``blocked`` is False when the event is time-bound (a Timeout or
        kernel timer will fire it) so it can never be part of a
        deadlock or stall.
        """
        if event is None or event.triggered:
            return False, set()
        if isinstance(event, (Timeout, _ScheduledCall)):
            return False, set()
        if isinstance(event, Request):
            pids = set()
            for holder in event.resource.users:
                hp = self._req_pid.get(id(holder))
                if hp is not None:
                    pids.add(hp)
            return True, pids
        if isinstance(event, Process):
            pid = self._pids.get(event)
            return True, {pid} if pid is not None else set()
        if isinstance(event, AnyOf):
            union: set[int] = set()
            for sub in event._events:
                blocked, pids = self._deps(sub, depth + 1)
                if not blocked:
                    return False, set()  # some branch will fire by itself
                union |= pids
            return True, union
        if isinstance(event, (AllOf, Condition)):
            union = set()
            blocked_any = False
            for sub in event._events:
                if sub.triggered:
                    continue
                blocked, pids = self._deps(sub, depth + 1)
                if blocked:
                    blocked_any = True
                    union |= pids
            return blocked_any, union
        # StoreGet / bare Event: can block forever but waits on no
        # specific process (any producer could satisfy it)
        return True, set()

    def wait_graph(self) -> tuple[dict[int, set[int]], dict[int, str]]:
        """Edges pid -> pids it waits for, plus a what-it-waits-on map."""
        edges: dict[int, set[int]] = {}
        waits: dict[int, str] = {}
        for proc, pid in self._pids.items():
            if not proc.is_alive:
                continue
            blocked, pids = self._deps(proc._target)
            if blocked and pids:
                edges[pid] = pids
                waits[pid] = describe_event(proc._target)
        return edges, waits

    def scan_deadlocks(self) -> list[dict]:
        """Build the wait-for graph over blocked processes; report cycles."""
        edges, waits = self.wait_graph()
        new: list[dict] = []
        for cycle in find_cycles(edges):
            sig = frozenset(cycle)
            if sig in self._deadlock_sigs:
                continue
            self._deadlock_sigs.add(sig)
            finding = {
                "time": self.env.now if self.env is not None else 0.0,
                "cycle": [
                    {"process": self._names[p] if p < len(self._names) else str(p),
                     "waiting_on": waits.get(p, "?")}
                    for p in cycle
                ],
            }
            self.deadlocks.append(finding)
            new.append(finding)
        return new

    def check_stall(self) -> list[dict]:
        """After a run: live processes nothing can ever wake."""
        if self.env is None or self.env._queue:
            return []
        found: list[dict] = []
        for proc, pid in self._pids.items():
            if not proc.is_alive or getattr(proc, "daemon", False):
                continue
            found.append({
                "time": self.env.now,
                "process": proc.name,
                "waiting_on": describe_event(proc._target),
            })
        if found:
            self.stalls.extend(found)
        return found

    def finalize(self) -> None:
        """End-of-run sweep: one last deadlock scan plus the stall check."""
        self.scan_deadlocks()
        self.check_stall()

    # -- reporting -------------------------------------------------------
    def report(self) -> dict:
        conflicts = []
        for sig, (count, first, examples) in self.conflicts.items():
            label, kind_a, name_a, kind_b, name_b = sig
            conflicts.append({
                "object": label,
                "access_a": f"{name_a}.{kind_a}",
                "access_b": f"{name_b}.{kind_b}",
                "count": count,
                "first_time": round(first, 9),
                "examples": examples,
            })
        conflicts.sort(key=lambda c: (-c["count"], c["object"], c["access_a"]))
        return {
            "processes": len(self._names) - 1,
            "conflict_signatures": len(conflicts),
            "conflict_events": sum(c["count"] for c in conflicts),
            "conflicts": conflicts,
            "deadlocks": self.deadlocks,
            "stalls": self.stalls,
        }
