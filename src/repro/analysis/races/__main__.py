"""CLI for the schedule sanitizer: ``python -m repro.analysis.races``.

Runs the happens-before detector + same-instant schedule permuter over
a set of perf scenarios (and optionally the scheduler chaos soak) and
reports schedule-sensitive conflicts, divergences, deadlocks and
stalls.  The whole run is deterministic for a given ``--seed``.

Exit codes: 0 = gate passed, 1 = findings, 2 = sanitizer crashed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis.races.permute import sanitize_scenario, sanitize_soak

#: the acceptance trio: a reduced paper-figure workload, the fabric hot
#: path, and the multi-tenant scheduler flood
DEFAULT_SCENARIOS = "fig8_proxy,fabric_churn,s1_scheduler"

#: convenience aliases accepted on --scenarios
ALIASES = {"fig8": "fig8_proxy", "fig10": "fig10_proxy", "fabric": "fabric_churn"}


def _summarize(report: dict, verbose: bool) -> list[str]:
    lines = []
    name = report["scenario"]
    status = "ok" if report["ok"] else "FINDINGS"
    if "runs" in report:  # soak report
        lines.append(
            f"{name:<16} {status:<9} permutations={report['permutations']} "
            f"violations={report['violations']} deadlocks={report['deadlocks']} "
            f"stalls={report['stalls']}"
        )
    else:
        dyn = report.get("dynamic", {})
        lines.append(
            f"{name:<16} {status:<9} permutations={report['permutations']} "
            f"divergences={len(report['divergences'])} "
            f"(unexplained={report['unexplained_divergences']}) "
            f"conflicts={dyn.get('conflict_signatures', 0)}sig/"
            f"{dyn.get('conflict_events', 0)}ev "
            f"deadlocks={report['deadlocks']} stalls={report['stalls']}"
        )
        for div in report["divergences"]:
            kind = "explained" if div["explained"] else "UNEXPLAINED"
            keys = sorted(div["conserved_diffs"]) + sorted(div["timing_diffs"])
            lines.append(
                f"  permutation {div['permutation']} "
                f"(seed {div['tiebreak_seed']}): {kind} divergence in "
                f"{', '.join(keys)}"
            )
            first = div.get("first_divergence")
            if first is not None:
                base, perm = first["base_event"], first["permuted_event"]
                lines.append(
                    f"    first diverging pop #{first['pop_index']} "
                    f"(same-instant pair: {first['same_instant_pair']})"
                )
                if base and perm:
                    lines.append(
                        f"      base:     t={base['time']:.9g} "
                        f"prio={base['priority']} {base['event']}"
                    )
                    lines.append(
                        f"      permuted: t={perm['time']:.9g} "
                        f"prio={perm['priority']} {perm['event']}"
                    )
        if verbose:
            for c in dyn.get("conflicts", [])[:20]:
                lines.append(
                    f"  conflict x{c['count']:<7} {c['object']}: "
                    f"{c['access_a']} ~ {c['access_b']}"
                )
    for d in report.get("dynamic", {}).get("deadlocks", []):
        chain = " -> ".join(
            f"{e['process']}[{e['waiting_on']}]" for e in d["cycle"]
        )
        lines.append(f"  DEADLOCK at t={d['time']:.9g}: {chain}")
    for s in report.get("dynamic", {}).get("stalls", []):
        lines.append(
            f"  STALL at t={s['time']:.9g}: {s['process']} parked on "
            f"{s['waiting_on']} with an empty event queue"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.races",
        description="schedule sanitizer: HB races, permutations, deadlocks",
    )
    parser.add_argument(
        "--scenarios", default=DEFAULT_SCENARIOS,
        help=f"comma-separated perf scenarios (default: {DEFAULT_SCENARIOS})",
    )
    parser.add_argument(
        "--permutations", type=int, default=10,
        help="permuted schedules per scenario (default: 10)",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--soak", action="store_true",
        help="also sanitize the scheduler chaos soak",
    )
    parser.add_argument(
        "--no-detect", action="store_true",
        help="skip the HB detector (permutation gate only; faster)",
    )
    parser.add_argument(
        "--scan-interval", type=int, default=5000,
        help="deadlock scan cadence in time advances (default: 5000)",
    )
    parser.add_argument("--out", help="write the full JSON report here")
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list top conflict signatures",
    )
    args = parser.parse_args(argv)

    names = [
        ALIASES.get(n.strip(), n.strip())
        for n in args.scenarios.split(",")
        if n.strip()
    ]
    try:
        reports = [
            sanitize_scenario(
                name,
                permutations=args.permutations,
                seed=args.seed,
                detect=not args.no_detect,
                scan_interval=args.scan_interval,
            )
            for name in names
        ]
        if args.soak:
            reports.append(
                sanitize_soak(permutations=args.permutations, seed=args.seed)
            )
    except Exception as exc:  # noqa: BLE001 - exit-code contract
        print(f"sanitizer crashed: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2

    for report in reports:
        print("\n".join(_summarize(report, args.verbose)))
    ok = all(r["ok"] for r in reports)
    print(
        f"\nschedule sanitizer: {'PASS' if ok else 'FAIL'} "
        f"({len(reports)} target(s), {args.permutations} permutations, "
        f"seed {args.seed})"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump({"schema": 1, "reports": reports}, fh, indent=2,
                      sort_keys=True)
            fh.write("\n")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
