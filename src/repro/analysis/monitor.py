"""Runtime invariant monitor for the simulated PFTool message plane.

The static rules (RA001-RA005) catch what the AST can prove; this
monitor watches a *live* job for the dynamic versions of the same
invariants:

* **message conservation** — every send is eventually consumed; at job
  completion no live rank's mailbox holds unread messages and no rank
  has a dangling (posted, never-completed, never-cancelled) receive.
  A leaked receive mid-run — a rank posting a new ``recv`` while its
  previous one is still pending — is the WatchDog bug class and is
  reported at the moment it happens.
* **payload schema** — runtime counterpart of RA004: payloads must be
  instances of the ``TAG_PAYLOADS`` family for their tag.
* **work conservation** — files discovered by the tree walk may not
  exceed files accounted for (copied + skipped + failed) once the job
  completes; anything else means the Manager lost work.
* **single-writer queues** — runtime counterpart of RA003: mutating a
  Manager-owned queue from any process other than the Manager's raises.

``strict=True`` (the test default, installed by ``tests/conftest.py``)
raises :class:`InvariantViolation`; otherwise violations are counted in
``JobStats.invariant_violations`` so experiment sweeps keep running.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Optional

__all__ = [
    "InvariantMonitor",
    "InvariantViolation",
    "default_monitor",
    "set_default_monitor_factory",
]


class InvariantViolation(AssertionError):
    """A runtime invariant of the message plane was broken."""


#: process-wide default factory; tests install a strict monitor here
_default_factory: Optional[Callable[[], "InvariantMonitor"]] = None


def set_default_monitor_factory(
    factory: Optional[Callable[[], "InvariantMonitor"]],
) -> None:
    """Install (or clear, with ``None``) the default monitor factory.

    Every :class:`~repro.pftool.job.PftoolJob` built without an explicit
    ``RuntimeContext.monitor`` asks this factory for one.
    """
    global _default_factory
    _default_factory = factory


def default_monitor() -> Optional["InvariantMonitor"]:
    """A fresh monitor from the installed factory, or None."""
    if _default_factory is None:
        return None
    return _default_factory()


class MonitoredDeque(deque):
    """A deque that reports which process mutates it.

    Wraps the Manager's work queues so that any append/pop issued from a
    process other than the Manager's own trips the single-writer check.
    """

    def __init__(self, iterable=(), *, monitor=None, owner_name=""):
        super().__init__(iterable)
        self._monitor = monitor
        self._owner_name = owner_name

    def _check(self) -> None:
        if self._monitor is not None:
            self._monitor.on_queue_mutation(self._owner_name)

    def append(self, x):  # noqa: D102
        self._check()
        super().append(x)

    def appendleft(self, x):
        self._check()
        super().appendleft(x)

    def extend(self, iterable):
        self._check()
        super().extend(iterable)

    def extendleft(self, iterable):
        self._check()
        super().extendleft(iterable)

    def pop(self):
        self._check()
        return super().pop()

    def popleft(self):
        self._check()
        return super().popleft()

    def remove(self, value):
        self._check()
        super().remove(value)

    def clear(self):
        self._check()
        super().clear()


class InvariantMonitor:
    """Observes one PftoolJob's communicator and Manager queues."""

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        self.violations: list[str] = []
        self.sent = 0
        self.received = 0
        #: rank -> outstanding StoreGet posted by that rank's last recv
        self._pending_recv: dict[int, Any] = {}
        #: delivery times of operator Aborts sent to the current job —
        #: the happens-before evidence for the stranded-Abort audit
        self._abort_deliveries: list[float] = []
        #: jobs currently attached (a long-running service must see this
        #: return to its old size after every job completes — growth here
        #: is the monitor leaking dead jobs)
        self._attached: list[Any] = []
        self._job: Any = None
        self._stats: Any = None
        self._manager: Any = None
        self._manager_process: Any = None
        self._env: Any = None
        self._payload_table: Optional[dict[int, tuple[type, ...]]] = None
        self._tag_work_req: Optional[int] = None

    # -- wiring --------------------------------------------------------
    def attach(self, job: Any) -> None:
        """Hook into *job*'s communicator (called from PftoolJob.__init__)."""
        self._job = job
        self._stats = job.stats
        self._env = job.env
        self._attached.append(job)
        job.comm.monitor = self
        if self._payload_table is None:
            # lazy import: analysis must stay importable without pftool
            from repro.pftool.messages import TAG_PAYLOADS, TAG_WORK_REQ

            self._payload_table = TAG_PAYLOADS
            self._tag_work_req = TAG_WORK_REQ

    def detach(self, job: Any) -> None:
        """Release *job* (PftoolJob arranges this on its ``done`` event).

        Drops the communicator hook and, when *job* is the one currently
        monitored, the per-job state — so a monitor reused across a
        long-running service's job stream holds no dead jobs.  Unknown
        jobs are ignored (detach is idempotent).
        """
        try:
            self._attached.remove(job)
        except ValueError:
            pass
        comm = getattr(job, "comm", None)
        if comm is not None and getattr(comm, "monitor", None) is self:
            comm.monitor = None
        if self._job is job:
            self._job = None
            self._stats = None
            self._manager = None
            self._manager_process = None
            self._pending_recv.clear()
            self._abort_deliveries.clear()

    @property
    def attached_jobs(self) -> int:
        """Number of jobs currently attached (leak canary for services)."""
        return len(self._attached)

    def bind_manager(self, manager: Any, process: Any) -> None:
        """Record the Manager's process and wrap its deque queues
        (called from Manager.run, on the Manager's own process)."""
        self._manager = manager
        self._manager_process = process
        for name in ("dir_q", "name_q", "copy_q", "tape_q"):
            queue = getattr(manager, name, None)
            if isinstance(queue, deque) and not isinstance(queue, MonitoredDeque):
                wrapped = MonitoredDeque(queue, monitor=self, owner_name=name)
                setattr(manager, name, wrapped)

    # -- violation sink ------------------------------------------------
    def _violate(self, kind: str, message: str) -> None:
        self.violations.append(f"{kind}: {message}")
        if self._stats is not None:
            counts = self._stats.invariant_violations
            counts[kind] = counts.get(kind, 0) + 1
        if self.strict:
            raise InvariantViolation(f"{kind}: {message}")

    # -- communicator hooks --------------------------------------------
    def on_send(self, comm: Any, msg: Any) -> None:
        self.sent += 1
        if type(msg.payload).__name__ == "Abort" and self._env is not None:
            # Record when this Abort will *land*: the completion audit
            # excuses a stranded Abort only when its delivery is ordered
            # at-or-after the Manager's last receive (no happens-before
            # path from delivery to consumption).
            self._abort_deliveries.append(
                self._env.now + getattr(comm, "latency", 0.0)
            )
        table = self._payload_table
        if table is not None and msg.tag in table:
            family = table[msg.tag]
            if not isinstance(msg.payload, family):
                names = ", ".join(t.__name__ for t in family)
                self._violate(
                    "payload-schema",
                    f"tag {msg.tag} carried {type(msg.payload).__name__!r}; "
                    f"expected one of {{{names}}} "
                    f"(src={msg.source} dst={msg.dest})",
                )

    def on_recv(self, comm: Any, rank: int, get: Any) -> None:
        prev = self._pending_recv.get(rank)
        if prev is not None and self._leaked(prev):
            self._violate(
                "leaked-receive",
                f"rank {rank} posted a new receive while its previous one "
                "was still pending (neither completed nor cancelled); the "
                "old get will silently swallow the next matching message",
            )
        self._pending_recv[rank] = get
        self.received += 1

    @staticmethod
    def _leaked(get: Any) -> bool:
        """Pending and not cancelled: will still consume a mailbox item."""
        return not get.triggered and get.callbacks is not None

    # -- queue hook ----------------------------------------------------
    def on_queue_mutation(self, queue_name: str) -> None:
        if self._env is None or self._manager_process is None:
            return
        active = self._env.active_process
        if active is None:
            return  # test code driving the Manager directly
        if active is not self._manager_process:
            name = getattr(active, "name", active)
            self._violate(
                "queue-ownership",
                f"process {name!r} mutated Manager-owned queue "
                f"{queue_name!r}; only the Manager process may",
            )

    # -- completion audit ----------------------------------------------
    def check_completion(self, comm: Any, stats: Any) -> None:
        """Audit conservation invariants; Manager calls this after the
        settle delay, just before succeeding the job's done event."""
        if stats.aborted:
            return  # an aborted job legitimately strands messages
        live = getattr(self._job, "live_ranks", None)
        # The Manager stopped receiving when it began finishing; it
        # stamps that instant into ``stats.finished`` (see
        # Manager._finish).  An Abort delivered at-or-after that instant
        # has no happens-before path to any Manager receive, so it
        # legitimately strands (the job won the race against the
        # cancel).  An Abort delivered strictly *before* it would have
        # been consumed by the Manager's FIFO any-source receive loop —
        # one still sitting in the mailbox is lost protocol traffic.
        finished = getattr(stats, "finished", None)
        excusable_aborts = sum(
            1
            for t in self._abort_deliveries
            if finished is None or t >= finished
        )
        for rank, store in enumerate(comm._mailboxes):
            if live is not None and rank not in live:
                continue  # e.g. Exit broadcast to never-spawned tape ranks
            # A worker's final WorkRequest legitimately lands after the
            # Manager stopped receiving; an Exit can strand when a rank
            # already terminated.  Anything else is lost protocol
            # traffic — including an Abort whose delivery the
            # happens-before audit above cannot excuse.
            stranded = []
            for msg in store.items:
                if msg.tag == self._tag_work_req or self._is_exit(msg):
                    continue
                if type(msg.payload).__name__ == "Abort" and excusable_aborts:
                    excusable_aborts -= 1
                    continue
                stranded.append(msg)
            if stranded:
                tags = sorted({msg.tag for msg in stranded})
                self._violate(
                    "message-conservation",
                    f"rank {rank} mailbox holds {len(stranded)} unread "
                    f"message(s) at completion (tags {tags})",
                )
        if stats.op == "copy":
            seen = stats.files_seen
            accounted = (
                stats.files_copied + stats.files_skipped + stats.files_failed
            )
            # ">" not "!=": container tape failures count a failure for the
            # container itself, which the tree walk never saw as a file.
            if seen > accounted:
                self._violate(
                    "work-conservation",
                    f"walk saw {seen} file(s) but only {accounted} were "
                    "accounted for (copied+skipped+failed); work was lost",
                )
        elif stats.op == "compare":
            if stats.files_seen > stats.files_compared + stats.files_failed:
                self._violate(
                    "work-conservation",
                    f"walk saw {stats.files_seen} file(s) but only "
                    f"{stats.files_compared} were compared; work was lost",
                )

    @staticmethod
    def _is_exit(msg: Any) -> bool:
        return type(msg.payload).__name__ == "Exit"
