"""Stdlib-only line coverage for the repro tree.

CI measures coverage with ``pytest-cov``; this module is the local,
zero-dependency equivalent so the ratchet number in ``ci.yml`` can be
reproduced (and re-derived after a refactor) on a bare interpreter::

    PYTHONPATH=src python -m repro.analysis.coverage -q tests

It installs a :func:`sys.settrace` hook that records executed lines for
files under ``src/repro`` only (frames outside the tree opt out of line
tracing entirely, which keeps the slowdown tolerable), runs pytest on
the given arguments, and prints a per-package table against the set of
*executable* lines derived from each module's compiled code objects —
the same universe ``coverage.py`` uses, so the two agree to within a
fraction of a percent.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
from types import CodeType

__all__ = ["LineCoverage", "executable_lines", "main"]


def executable_lines(path: str) -> set:
    """Line numbers that can execute in *path*, per the compiled code.

    Walks the module code object and every nested code constant
    (functions, comprehensions, class bodies) collecting ``co_lines()``
    line numbers.  Lines that never reach the bytecode — comments,
    blank lines, ``else:`` headers — are excluded by construction.
    """
    with open(path, "rb") as fh:
        source = fh.read()
    code = compile(source, path, "exec")
    lines: set = set()
    stack = [code]
    while stack:
        co = stack.pop()
        for _start, _end, lineno in co.co_lines():
            if lineno is not None:
                lines.add(lineno)
        for const in co.co_consts:
            if isinstance(const, CodeType):
                stack.append(const)
    return lines


class LineCoverage:
    """Records executed lines for files under *root* via sys.settrace."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root) + os.sep
        self.hits: dict = {}
        self._include: dict = {}
        self._prev_trace = None
        self._prev_thread_trace = None

    # -- trace hook -----------------------------------------------------
    def _trace(self, frame, event, arg):
        fn = frame.f_code.co_filename
        include = self._include.get(fn)
        if include is None:
            include = self._include[fn] = fn.startswith(self.root)
        if not include:
            return None  # no line events for foreign frames
        if event == "line":
            try:
                self.hits[fn].add(frame.f_lineno)
            except KeyError:
                self.hits[fn] = {frame.f_lineno}
        return self._trace

    def start(self) -> None:
        # save whatever hook is active so stop() can restore it — without
        # this, measuring a suite that itself exercises LineCoverage (the
        # tool's own tests) silently disables the outer trace for the
        # rest of the run and under-reports everything after it
        self._prev_trace = sys.gettrace()
        self._prev_thread_trace = getattr(threading, "gettrace", lambda: None)()
        threading.settrace(self._trace)
        sys.settrace(self._trace)

    def stop(self) -> None:
        sys.settrace(self._prev_trace)
        threading.settrace(self._prev_thread_trace)

    # -- reporting ------------------------------------------------------
    def report(self) -> dict:
        """Per-package and total coverage over every .py under root."""
        packages: dict = {}
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                rel = os.path.relpath(path, self.root)
                top = rel.split(os.sep)[0] if os.sep in rel else "(root)"
                want = executable_lines(path)
                got = self.hits.get(path, set()) & want
                pkg = packages.setdefault(top, {"lines": 0, "covered": 0})
                pkg["lines"] += len(want)
                pkg["covered"] += len(got)
        total = {
            "lines": sum(p["lines"] for p in packages.values()),
            "covered": sum(p["covered"] for p in packages.values()),
        }
        for entry in list(packages.values()) + [total]:
            entry["percent"] = round(
                100.0 * entry["covered"] / entry["lines"], 2
            ) if entry["lines"] else 100.0
        return {"packages": packages, "total": total}


def _print_table(report: dict, out=sys.stdout) -> None:
    packages, total = report["packages"], report["total"]
    width = max(len(n) for n in list(packages) + ["TOTAL"])
    print(f"{'package':<{width}}  {'lines':>6} {'cov':>6} {'%':>7}", file=out)
    for name in sorted(packages):
        p = packages[name]
        print(f"{name:<{width}}  {p['lines']:>6} {p['covered']:>6} "
              f"{p['percent']:>6.2f}%", file=out)
    print(f"{'TOTAL':<{width}}  {total['lines']:>6} {total['covered']:>6} "
          f"{total['percent']:>6.2f}%", file=out)


def _default_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.analysis.coverage",
        description="run pytest under a stdlib line-coverage trace",
    )
    ap.add_argument("--cov-root", default=_default_root(),
                    help="tree to measure (default: the repro package)")
    ap.add_argument("--json", metavar="PATH",
                    help="also write the report as JSON")
    ap.add_argument("--fail-under", type=float, default=None,
                    help="exit 1 if total coverage is below this percent")
    ap.add_argument("pytest_args", nargs="*",
                    help="arguments forwarded to pytest (default: -q tests)")
    ns, extra = ap.parse_known_args(argv)
    ns.pytest_args = extra + ns.pytest_args

    import pytest

    cov = LineCoverage(ns.cov_root)
    cov.start()
    try:
        rc = pytest.main(ns.pytest_args or ["-q", "tests"])
    finally:
        cov.stop()
    report = cov.report()
    _print_table(report)
    if ns.json:
        with open(ns.json, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if rc != 0:
        return int(rc)
    if ns.fail_under is not None and report["total"]["percent"] < ns.fail_under:
        print(f"coverage {report['total']['percent']:.2f}% is below "
              f"--fail-under={ns.fail_under}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
