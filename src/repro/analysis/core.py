"""AST lint framework for the repro codebase's unwritten invariants.

The framework is deliberately tiny: a :class:`Rule` sees parsed modules
(:class:`ModuleInfo`), emits :class:`Finding`\\s, and the runner handles
file discovery, ``# noqa:RA###`` suppressions, rule selection and
output formatting.  Rules come in two shapes:

* per-module (``check_module``) — determinism, queue discipline,
  blocking receives;
* whole-project (``check_project``) — protocol rules that must see
  every send/receive site at once.

No third-party dependencies and no imports of the code under analysis:
everything is derived from the AST, so the linter runs on a bare
python (CI's lint job) and on synthetic trees (the rule unit tests).
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Optional

__all__ = [
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Project",
    "Rule",
    "dotted_name",
    "iter_python_files",
    "run_lint",
]

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    code: str
    message: str
    path: str
    line: int
    col: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "col": self.col,
        }


@dataclass
class ModuleInfo:
    """A parsed source file plus its suppression map."""

    path: Path
    relpath: str  # posix-style, relative to the scan root
    tree: ast.Module
    #: line -> set of suppressed codes; ``None`` means suppress all
    noqa: dict[int, Optional[frozenset[str]]] = field(default_factory=dict)

    def suppressed(self, finding: Finding) -> bool:
        codes = self.noqa.get(finding.line, frozenset())
        if codes is None:
            return True
        return finding.code in codes


@dataclass
class Project:
    """Every module of one lint run (cross-file rules see all of them)."""

    modules: list[ModuleInfo] = field(default_factory=list)


class Rule:
    """Base class; subclasses set ``code`` and override one hook."""

    code = "RA000"
    name = "base"

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _parse_noqa(source: str) -> dict[int, Optional[frozenset[str]]]:
    noqa: dict[int, Optional[frozenset[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(line)
        if m is None:
            continue
        codes = m.group("codes")
        if codes is None:
            noqa[lineno] = None  # bare noqa: everything
        else:
            noqa[lineno] = frozenset(c.strip() for c in codes.split(","))
    return noqa


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[tuple[Path, str]]:
    """(absolute path, relpath) for every .py under *paths*."""
    for root in paths:
        root = Path(root)
        if root.is_file():
            yield root, root.name
            continue
        for p in sorted(root.rglob("*.py")):
            yield p, p.relative_to(root).as_posix()


def load_module(path: Path, relpath: str) -> Optional[ModuleInfo]:
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError):
        return None
    return ModuleInfo(path=path, relpath=relpath, tree=tree, noqa=_parse_noqa(source))


@dataclass
class LintResult:
    findings: list[Finding]
    suppressed: int
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> str:
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "suppressed": self.suppressed,
                "files_checked": self.files_checked,
            },
            indent=2,
        )


def run_lint(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Lint *paths* with *rules*; *select* restricts to specific codes."""
    selected = set(select) if select is not None else None
    project = Project()
    for path, relpath in iter_python_files(paths):
        module = load_module(path, relpath)
        if module is not None:
            project.modules.append(module)

    raw: list[tuple[ModuleInfo, Finding]] = []
    by_rel = {m.relpath: m for m in project.modules}
    for rule in rules:
        if selected is not None and rule.code not in selected:
            continue
        for module in project.modules:
            for finding in rule.check_module(module):
                raw.append((module, finding))
        for finding in rule.check_project(project):
            raw.append((by_rel.get(finding.path), finding))

    findings: list[Finding] = []
    suppressed = 0
    for module, finding in raw:
        if module is not None and module.suppressed(finding):
            suppressed += 1
        else:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        files_checked=len(project.modules),
    )
