"""RA002/RA004 — the Manager/Worker message protocol stays closed.

RA002 *protocol exhaustiveness*: every ``TAG_*`` constant must have at
least one send site and at least one receive/dispatch site, and every
if/elif or ``match`` dispatch over message tags must be exhaustive
(cover every declared tag or carry a terminal ``else``/``case _``).
Orphan tags are how protocol drift starts: a producer keeps emitting a
message no loop consumes, or a consumer waits for a tag nobody sends.

RA004 *payload schema*: the payload sent with a tag must belong to the
dataclass family the ``TAG_PAYLOADS`` table declares for it — no raw
tuples/strings smuggled through the communicator (the ``##container##``
sentinel-string regression, mechanized).

Both rules are whole-project: they need every send/receive site at once.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analysis.core import Finding, ModuleInfo, Project, Rule

__all__ = ["PayloadSchemaRule", "ProtocolRule", "scan_protocol"]


@dataclass
class _Site:
    module: str
    line: int
    col: int
    tag: Optional[str]  # TAG_* name, or None for a wildcard receive
    payload: Optional[ast.expr] = None
    func: Optional[ast.AST] = None  # enclosing function node, for inference


@dataclass
class _ProtocolScan:
    """Everything the protocol rules need, from one AST pass."""

    #: TAG_* name -> (module, line) of the declaration
    declared: dict[str, tuple[str, int]] = field(default_factory=dict)
    sends: list[_Site] = field(default_factory=list)
    recvs: list[_Site] = field(default_factory=list)
    #: tags mentioned in ``msg.tag == TAG_X`` comparisons
    compared: dict[str, list[_Site]] = field(default_factory=dict)
    #: (module, line, tags_in_chain, has_else) for each tag-dispatch chain
    chains: list[tuple[str, int, set[str], bool]] = field(default_factory=list)
    #: TAG_* name -> set of allowed payload class names (from TAG_PAYLOADS)
    payload_table: dict[str, set[str]] = field(default_factory=dict)

    @property
    def has_wildcard_recv(self) -> bool:
        return any(site.tag is None for site in self.recvs)


def _tag_name(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Name) and node.id.startswith("TAG_"):
        return node.id
    return None


def _arg(call: ast.Call, pos: int, kw: str) -> Optional[ast.expr]:
    if len(call.args) > pos:
        return call.args[pos]
    for keyword in call.keywords:
        if keyword.arg == kw:
            return keyword.value
    return None


def _scan_module(module: ModuleInfo, scan: _ProtocolScan) -> None:
    rel = module.relpath

    # module-level TAG_* declarations and the TAG_PAYLOADS table
    for stmt in module.tree.body:
        targets: list[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if (
                target.id.startswith("TAG_")
                and target.id != "TAG_PAYLOADS"
                and isinstance(value, ast.Constant)
                and isinstance(value.value, int)
            ):
                scan.declared[target.id] = (rel, stmt.lineno)
            elif target.id == "TAG_PAYLOADS" and isinstance(value, ast.Dict):
                for key, val in zip(value.keys, value.values):
                    tag = _tag_name(key)
                    if tag is None or not isinstance(val, ast.Tuple):
                        continue
                    names = {
                        elt.id for elt in val.elts if isinstance(elt, ast.Name)
                    }
                    scan.payload_table[tag] = names

    # send / recv / comparison sites, tracking the enclosing function
    def visit(node: ast.AST, func: Optional[ast.AST]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            func = node
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr == "send":
                tag = _arg(node, 3, "tag")
                scan.sends.append(
                    _Site(rel, node.lineno, node.col_offset, _tag_name(tag),
                          payload=_arg(node, 2, "payload"), func=func)
                )
            elif attr == "broadcast":
                tag = _arg(node, 2, "tag")
                scan.sends.append(
                    _Site(rel, node.lineno, node.col_offset, _tag_name(tag),
                          payload=_arg(node, 1, "payload"), func=func)
                )
            elif attr == "recv":
                tag = _arg(node, 2, "tag")
                scan.recvs.append(
                    _Site(rel, node.lineno, node.col_offset, _tag_name(tag))
                )
        elif isinstance(node, ast.Compare) and len(node.ops) == 1 and isinstance(
            node.ops[0], ast.Eq
        ):
            sides = (node.left, node.comparators[0])
            for a, b in (sides, sides[::-1]):
                tag = _tag_name(b)
                if tag and isinstance(a, ast.Attribute) and a.attr == "tag":
                    scan.compared.setdefault(tag, []).append(
                        _Site(rel, node.lineno, node.col_offset, tag)
                    )
        for child in ast.iter_child_nodes(node):
            visit(child, func)

    visit(module.tree, None)

    # if/elif dispatch chains over tags (an elif is an If in orelse)
    elifs: set[int] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.If) and len(node.orelse) == 1 and isinstance(
            node.orelse[0], ast.If
        ):
            elifs.add(id(node.orelse[0]))
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.If) or id(node) in elifs:
            continue
        tags: set[str] = set()
        cursor: ast.stmt = node
        has_else = False
        while isinstance(cursor, ast.If):
            for sub in ast.walk(cursor.test):
                if isinstance(sub, ast.Compare):
                    for side in (sub.left, *sub.comparators):
                        other = [sub.left, *sub.comparators]
                        tag = _tag_name(side)
                        if tag and any(
                            isinstance(o, ast.Attribute) and o.attr == "tag"
                            for o in other
                        ):
                            tags.add(tag)
            if len(cursor.orelse) == 1 and isinstance(cursor.orelse[0], ast.If):
                cursor = cursor.orelse[0]
            else:
                has_else = bool(cursor.orelse)
                break
        if tags:
            scan.chains.append((rel, node.lineno, tags, has_else))

    # match statements over tags
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Match):
            continue
        tags = set()
        has_wildcard = False
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchValue):
                tag = _tag_name(pattern.value)
                if tag:
                    tags.add(tag)
            elif isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                has_wildcard = True
        if tags:
            scan.chains.append((rel, node.lineno, tags, has_wildcard))


def scan_protocol(project: Project) -> _ProtocolScan:
    scan = _ProtocolScan()
    for module in project.modules:
        _scan_module(module, scan)
    return scan


class ProtocolRule(Rule):
    code = "RA002"
    name = "protocol-exhaustiveness"

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = scan_protocol(project)
        sent = {s.tag for s in scan.sends if s.tag}
        recv_specific = {r.tag for r in scan.recvs if r.tag}
        for tag, (module, line) in sorted(scan.declared.items()):
            if tag not in sent:
                yield Finding(
                    self.code,
                    f"{tag} is declared but never sent (orphan producer tag)",
                    module, line,
                )
            received = (
                tag in recv_specific
                or tag in scan.compared
                or scan.has_wildcard_recv
            )
            if not received:
                yield Finding(
                    self.code,
                    f"{tag} is sent but has no receive/dispatch site "
                    "(messages would accumulate unread)",
                    module, line,
                )
        for module, line, tags, has_else in scan.chains:
            missing = set(scan.declared) - tags
            if not has_else and missing:
                yield Finding(
                    self.code,
                    "non-exhaustive tag dispatch: no terminal else and "
                    f"missing {', '.join(sorted(missing))}",
                    module, line,
                )


#: payload literal types, by AST node class
_LITERAL_TYPES = (
    (ast.Tuple, "tuple"),
    (ast.List, "list"),
    (ast.Dict, "dict"),
    (ast.Set, "set"),
)


class PayloadSchemaRule(Rule):
    code = "RA004"
    name = "payload-schema"

    def check_project(self, project: Project) -> Iterator[Finding]:
        scan = scan_protocol(project)
        if not scan.payload_table:
            return  # no TAG_PAYLOADS table in scope: nothing to enforce
        universe = set().union(*scan.payload_table.values())
        for site in scan.sends:
            if site.tag is None or site.payload is None:
                continue
            if site.tag in scan.declared and site.tag not in scan.payload_table:
                yield Finding(
                    self.code,
                    f"{site.tag} has no entry in TAG_PAYLOADS; declare its "
                    "payload dataclass family",
                    site.module, site.line, site.col,
                )
                continue
            family = scan.payload_table.get(site.tag)
            if family is None:
                continue
            bad = self._bad_payload(site.payload, site.func, family, universe)
            if bad is not None:
                yield Finding(
                    self.code,
                    f"payload {bad} sent with {site.tag}, which only carries "
                    f"{{{', '.join(sorted(family))}}}",
                    site.module, site.line, site.col,
                )

    def _bad_payload(
        self,
        payload: ast.expr,
        func: Optional[ast.AST],
        family: set[str],
        universe: set[str],
    ) -> Optional[str]:
        """Name of the offending payload type, or None when acceptable
        (or statically undecidable)."""
        for node_type, type_name in _LITERAL_TYPES:
            if isinstance(payload, node_type):
                return None if type_name in family else f"raw {type_name}"
        if isinstance(payload, ast.Constant):
            type_name = type(payload.value).__name__
            return None if type_name in family else f"raw {type_name}"
        if isinstance(payload, ast.Call) and isinstance(payload.func, ast.Name):
            cls = payload.func.id
            if cls in universe and cls not in family:
                return cls
            return None
        if isinstance(payload, ast.Name) and func is not None:
            # cheap local inference: constructor assignments to this name
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id == payload.id
                    and isinstance(node.value, ast.Call)
                    and isinstance(node.value.func, ast.Name)
                ):
                    cls = node.value.func.id
                    if cls in universe and cls not in family:
                        return cls
        return None
