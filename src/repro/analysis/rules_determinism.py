"""RA001 — all randomness and wall-clock time flows through seeded streams.

The simulation's reproducibility contract: every stochastic draw comes
from ``RandomStreams.stream(name)`` (common-random-numbers discipline)
and simulated time comes from ``env.now`` — never from the host's
``random`` module, ``time.time`` / ``datetime.now`` wall clocks,
``os.urandom``, or module-level ``numpy.random`` state.  Iterating a
``set`` literal/constructor directly is also flagged: element order
depends on the interpreter's hash seed, which silently reorders
otherwise-deterministic runs.

``sim/rng.py`` (the stream factory itself) and ``faults.py`` (which
seeds its plans through RandomStreams) are allowlisted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from repro.analysis.core import Finding, ModuleInfo, Rule, dotted_name

__all__ = ["DeterminismRule"]

#: default modules allowed to touch entropy primitives directly
DEFAULT_ALLOWLIST = ("sim/rng.py", "faults.py")

#: dotted-call chains (suffix match) that leak host nondeterminism
_BANNED_CALL_SUFFIXES = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.perf_counter": "wall clock",
    "datetime.now": "wall clock",
    "datetime.utcnow": "wall clock",
    "datetime.today": "wall clock",
    "date.today": "wall clock",
    "os.urandom": "OS entropy",
    "uuid.uuid4": "OS entropy",
}

#: module prefixes whose *calls* are banned wholesale
_BANNED_CALL_PREFIXES = {
    "random.": "stdlib global RNG",
    "secrets.": "OS entropy",
    "np.random.": "numpy global/unseeded RNG",
    "numpy.random.": "numpy global/unseeded RNG",
}

_BANNED_IMPORTS = {"random", "secrets"}
_BANNED_FROM = {
    ("time", "time"),
    ("time", "time_ns"),
    ("time", "monotonic"),
    ("time", "perf_counter"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
}


class DeterminismRule(Rule):
    code = "RA001"
    name = "determinism"

    def __init__(self, allowlist: Sequence[str] = DEFAULT_ALLOWLIST) -> None:
        self.allowlist = tuple(allowlist)

    def _allowed(self, module: ModuleInfo) -> bool:
        return any(module.relpath.endswith(suffix) for suffix in self.allowlist)

    def check_module(self, module: ModuleInfo) -> Iterator[Finding]:
        if self._allowed(module):
            return
        for node in ast.walk(module.tree):
            finding = self._check_node(module, node)
            if finding is not None:
                yield finding

    def _check_node(self, module: ModuleInfo, node: ast.AST) -> Optional[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _BANNED_IMPORTS:
                    return self._finding(
                        module, node,
                        f"import of {alias.name!r} (stdlib global RNG); "
                        "draw from RandomStreams.stream(name) instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if node.module in _BANNED_IMPORTS or (
                    node.module, alias.name
                ) in _BANNED_FROM:
                    return self._finding(
                        module, node,
                        f"import of {alias.name!r} from {node.module!r} "
                        "(host entropy/clock); use RandomStreams / env.now",
                    )
        elif isinstance(node, ast.Call):
            chain = dotted_name(node.func)
            if chain is None:
                return None
            for suffix, why in _BANNED_CALL_SUFFIXES.items():
                if chain == suffix or chain.endswith("." + suffix):
                    return self._finding(
                        module, node,
                        f"call to {chain}() ({why}); "
                        "simulated time is env.now, entropy is RandomStreams",
                    )
            for prefix, why in _BANNED_CALL_PREFIXES.items():
                if chain.startswith(prefix):
                    return self._finding(
                        module, node,
                        f"call to {chain}() ({why}); "
                        "draw from RandomStreams.stream(name) instead",
                    )
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_set_expr(node.iter):
                return self._finding(
                    module, node.iter,
                    "iteration over a set (hash-seed-dependent order); "
                    "sort it or iterate a sequence",
                )
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for gen in node.generators:
                if self._is_set_expr(gen.iter):
                    return self._finding(
                        module, gen.iter,
                        "comprehension over a set (hash-seed-dependent order); "
                        "sort it or iterate a sequence",
                    )
        return None

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "set"
        )

    def _finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            code=self.code,
            message=message,
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
        )
