"""Static checks + runtime invariant monitoring for the repro codebase.

Two halves, one set of invariants (RA001-RA005, see DESIGN.md):

* ``repro.analysis.lint`` — AST linter, ``python -m repro.analysis.lint src/``
* ``repro.analysis.monitor`` — opt-in runtime monitor for live PFTool jobs

This package must stay importable with nothing but the stdlib: the CI
lint job runs it on a bare interpreter, and ``repro.pftool.job`` imports
:func:`default_monitor` unconditionally.
"""

from repro.analysis.core import Finding, LintResult, Rule, run_lint
from repro.analysis.monitor import (
    InvariantMonitor,
    InvariantViolation,
    default_monitor,
    set_default_monitor_factory,
)

__all__ = [
    "Finding",
    "InvariantMonitor",
    "InvariantViolation",
    "LintResult",
    "Rule",
    "default_monitor",
    "run_lint",
    "set_default_monitor_factory",
]
