"""Tape drive model with LTO-class timing.

Timing model per operation:

* **load**: robot hands the cartridge over (library pays robot exchange
  separately), drive threads + calibrates, then verifies the volume label.
* **locate/seek**: ``seek_base + |distance| / locate_rate`` — LTO locate
  runs at high longitudinal speed (~order 10 GB/s equivalent).
* **write/read streaming**: the data flows over the SAN fabric with the
  drive's native rate as the flow's rate cap, so SAN contention and drive
  speed both apply.
* **backhitch**: every transaction that stops the streaming motion costs a
  reposition cycle.  HSM's one-file-per-transaction behaviour therefore
  costs ``backhitch`` per file — the §6.1 small-file collapse.
* **client handoff**: if the next I/O on a mounted volume comes from a
  different node than the last one, the drive rewinds and re-verifies the
  label before servicing it (§6.2), unless ``handoff_penalty`` is disabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.faults import DriveFault
from repro.netsim.fabric import Fabric
from repro.sim import Environment, Event, Resource, SimulationError
from repro.tapesim.cartridge import TapeCartridge, TapeExtent

__all__ = ["TapeDrive", "TapeSpec"]


@dataclass(frozen=True)
class TapeSpec:
    """Physical/timing parameters of a drive generation (defaults: LTO-4)."""

    native_rate: float = 120e6  # bytes/s streaming
    load_time: float = 19.0  # thread + calibrate, seconds
    unload_time: float = 19.0
    rewind_full: float = 80.0  # full-tape rewind, seconds
    seek_base: float = 2.0  # locate command overhead
    locate_rate: float = 10e9  # bytes of longitudinal distance per second
    label_verify: float = 8.0  # read volume label, seconds
    backhitch: float = 1.93  # reposition cycle per stopped transaction
    capacity: float = 800e9

    def rewind_time(self, from_byte: float) -> float:
        """Rewind from a longitudinal position to BOT."""
        if self.capacity <= 0:
            return 0.0
        frac = min(1.0, max(0.0, from_byte / self.capacity))
        return self.rewind_full * frac

    def locate_time(self, from_byte: float, to_byte: float) -> float:
        return self.seek_base + abs(to_byte - from_byte) / self.locate_rate


class TapeDrive:
    """One tape drive attached to the SAN.

    Operations are strictly serialized per drive (FIFO); concurrency across
    drives is what gives the archive its parallelism.

    Parameters
    ----------
    env, name:
        Environment and drive id.
    fabric, port:
        SAN fabric and the drive's port node name; data streams are fabric
        transfers capped at the drive's native rate.  If *fabric* is None
        the streaming time is computed locally (useful for unit tests).
    spec:
        Timing parameters.
    handoff_penalty:
        Model the §6.2 label re-verification when consecutive clients
        differ.  Disable to simulate the paper's proposed "sticky node"
        fix at the drive level.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        fabric: Optional[Fabric] = None,
        port: Optional[str] = None,
        spec: TapeSpec = TapeSpec(),
        handoff_penalty: bool = True,
    ) -> None:
        self.env = env
        self.name = name
        self.fabric = fabric
        self.port = port
        self.spec = spec
        self.handoff_penalty = handoff_penalty

        self.cartridge: Optional[TapeCartridge] = None
        #: longitudinal head position in bytes (only meaningful when loaded)
        self.position: float = 0.0
        self.last_client: Optional[str] = None
        #: hardware fault flag — operations refuse while set
        self.failed = False
        self._ops = Resource(env, capacity=1)

        # statistics
        self.mounts = 0
        self.dismounts = 0
        self.label_verifies = 0
        self.handoff_rewinds = 0
        self.backhitches = 0
        self.seek_seconds = 0.0
        self.stream_seconds = 0.0
        self.idle_marker = env.now
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        #: open "drive:mounted" trace span (load -> unload), if tracing
        self._mount_span = None

    # -- state ---------------------------------------------------------
    @property
    def loaded(self) -> bool:
        return self.cartridge is not None

    @property
    def busy(self) -> bool:
        return self._ops.count > 0 or self._ops.queue_len > 0

    # -- mount / dismount ------------------------------------------------
    def load(self, cartridge: TapeCartridge) -> Event:
        """Thread + calibrate + label-verify *cartridge* (robot time is paid
        by the library before calling this)."""
        done = self.env.event()

        def _proc() -> Iterable[Event]:
            with self._ops.request() as op:
                yield op
                if self.cartridge is not None:
                    raise SimulationError(
                        f"{self.name}: load while {self.cartridge.volume} mounted"
                    )
                yield self.env.timeout(self.spec.load_time)
                yield self.env.timeout(self.spec.label_verify)
                self.label_verifies += 1
                self.cartridge = cartridge
                self.position = 0.0
                self.last_client = None
                self.mounts += 1
                tr = self.env.trace
                if tr.enabled:
                    self._mount_span = tr.begin(
                        "drive:mounted", tid=self.name, cat="tape",
                        args={"volume": cartridge.volume},
                    )
                    tr.metrics.counter("tape.mounts").inc()
            done.succeed(cartridge)

        self.env.process(_proc(), name=f"{self.name}-load")
        return done

    def unload(self) -> Event:
        """Rewind + unload; returns event -> the removed cartridge."""
        done = self.env.event()

        def _proc() -> Iterable[Event]:
            with self._ops.request() as op:
                yield op
                if self.cartridge is None:
                    raise SimulationError(f"{self.name}: unload with no cartridge")
                rt = self.spec.rewind_time(self.position)
                self.seek_seconds += rt
                yield self.env.timeout(rt)
                yield self.env.timeout(self.spec.unload_time)
                cart = self.cartridge
                self.cartridge = None
                self.position = 0.0
                self.last_client = None
                self.dismounts += 1
                if self._mount_span is not None:
                    self._mount_span.end()
                    self._mount_span = None
            done.succeed(cart)

        self.env.process(_proc(), name=f"{self.name}-unload")
        return done

    # -- data path ---------------------------------------------------------
    def _handoff_check(self, client: str) -> Iterable[Event]:
        """Rewind + re-verify label when the client node changes (§6.2)."""
        if (
            self.handoff_penalty
            and self.last_client is not None
            and client != self.last_client
        ):
            rt = self.spec.rewind_time(self.position)
            self.seek_seconds += rt
            yield self.env.timeout(rt)
            self.position = 0.0
            yield self.env.timeout(self.spec.label_verify)
            self.label_verifies += 1
            self.handoff_rewinds += 1
        self.last_client = client

    def _stream(self, client: str, nbytes: int, inbound: bool) -> Iterable[Event]:
        """Move *nbytes* between client node and the drive at native rate."""
        t0 = self.env.now
        if nbytes > 0:
            if self.fabric is not None and self.port is not None:
                src, dst = (client, self.port) if inbound else (self.port, client)
                yield self.fabric.transfer(
                    src, dst, nbytes, rate_cap=self.spec.native_rate,
                    tag=f"{self.name}",
                )
            else:
                yield self.env.timeout(nbytes / self.spec.native_rate)
        self.stream_seconds += self.env.now - t0

    def write_object(
        self, client: str, object_id: Any, nbytes: int
    ) -> Event:
        """Append one object (one transaction) at EOD.

        Each call pays a backhitch — this is the §6.1 behaviour: HSM issues
        one transaction per file, stopping the drive between files.
        Returns event -> :class:`TapeExtent`.
        """
        done = self.env.event()

        def _proc() -> Iterable[Event]:
            try:
                with self._ops.request() as op:
                    yield op
                    cart = self._require_cart()
                    tr = self.env.trace
                    span = tr.begin(
                        "drive:write", tid=self.name, cat="tape",
                        args={"oid": str(object_id), "nbytes": nbytes},
                    ) if tr.enabled else None
                    yield from self._handoff_check(client)
                    if self.position != cart.eod:
                        st = self.spec.locate_time(self.position, cart.eod)
                        self.seek_seconds += st
                        yield self.env.timeout(st)
                        self.position = cart.eod
                    self.backhitches += 1
                    yield self.env.timeout(self.spec.backhitch)
                    yield from self._stream(client, nbytes, inbound=True)
                    ext = cart.append(object_id, nbytes)
                    self.position = cart.eod
                    self.bytes_written += nbytes
                    if span is not None:
                        span.end()
                        tr.metrics.counter("tape.bytes_written").inc(nbytes)
            except SimulationError as exc:
                # deliver the fault to the waiter instead of crashing the
                # drive process — callers own the retry decision
                done.fail(exc)
                return
            done.succeed(ext)

        self.env.process(_proc(), name=f"{self.name}-write")
        return done

    def read_extent(self, client: str, extent: TapeExtent) -> Event:
        """Recall one extent: locate + stream.  Returns event -> extent.

        Reading the extent that starts exactly at the current head position
        skips the locate (sequential forward read — what PFTool's
        tape-ordering buys).
        """
        done = self.env.event()

        def _proc() -> Iterable[Event]:
            try:
                with self._ops.request() as op:
                    yield op
                    cart = self._require_cart()
                    if extent.volume != cart.volume:
                        raise SimulationError(
                            f"{self.name}: extent on {extent.volume} but "
                            f"{cart.volume} is mounted"
                        )
                    tr = self.env.trace
                    span = tr.begin(
                        "drive:read", tid=self.name, cat="tape",
                        args={"oid": str(extent.object_id),
                              "volume": extent.volume,
                              "seq": extent.seq,
                              "nbytes": extent.nbytes},
                    ) if tr.enabled else None
                    yield from self._handoff_check(client)
                    if self.position != extent.start_byte:
                        st = self.spec.locate_time(self.position, extent.start_byte)
                        self.seek_seconds += st
                        yield self.env.timeout(st)
                        self.position = float(extent.start_byte)
                    # else: the head is already there — back-to-back sequential
                    # reads keep the tape streaming (the win of ordered recall)
                    yield from self._stream(client, extent.nbytes, inbound=False)
                    self.position = float(extent.end_byte)
                    self.bytes_read += extent.nbytes
                    if span is not None:
                        span.end()
                        tr.metrics.counter("tape.bytes_read").inc(extent.nbytes)
            except SimulationError as exc:
                done.fail(exc)
                return
            done.succeed(extent)

        self.env.process(_proc(), name=f"{self.name}-read")
        return done

    def _require_cart(self) -> TapeCartridge:
        if self.failed:
            raise DriveFault(f"{self.name}: drive has failed")
        if self.cartridge is None:
            raise SimulationError(f"{self.name}: no cartridge mounted")
        return self.cartridge

    def __repr__(self) -> str:
        vol = self.cartridge.volume if self.cartridge else "-"
        return f"<TapeDrive {self.name} vol={vol} pos={self.position/1e9:.2f}GB>"
