"""Tape library simulation (LTO-4 class drives + robot + cartridges).

Carries the tape physics that drive the paper's experience results:

* **per-transaction start/stop (backhitch) penalty** — one file = one HSM
  transaction, so migrating millions of 8 MB files ran at ~4 MB/s instead
  of the drive's ~100+ MB/s streaming rate (§6.1);
* **mount / rewind / locate costs** — unordered recalls thrash: the robot
  mounts and the head seeks far more than tape-ordered recalls (§4.1.2);
* **label re-verification on LAN-free client handoff** — when consecutive
  operations on a mounted tape come from *different* cluster nodes the
  drive rewinds and re-verifies the volume label (§6.2's "massive
  performance hit even though the tape is not physically dismounted").

Public surface: :class:`TapeLibrary`, :class:`TapeDrive`,
:class:`TapeCartridge`, :class:`TapeExtent`, :class:`TapeSpec`.
"""

from repro.tapesim.cartridge import TapeCartridge, TapeExtent
from repro.tapesim.drive import TapeDrive, TapeSpec
from repro.tapesim.library import TapeLibrary

__all__ = [
    "TapeCartridge",
    "TapeDrive",
    "TapeExtent",
    "TapeLibrary",
    "TapeSpec",
]
