"""The tape library: drives + robot + cartridge inventory + allocation.

Responsibilities:

* the **robot arm** is a shared resource; every mount/dismount pays an
  exchange time on it (so mount storms serialize);
* **drive allocation** — callers acquire a drive for a volume; the library
  prefers (1) a drive already mounted with that volume, (2) an idle empty
  drive, (3) the least-recently-used idle drive (dismounting its volume);
* **scratch selection** for writes, honouring TSM-style co-location
  groups: pick the filling volume of the group with room, else a fresh
  scratch volume;
* global statistics (mounts, exchanges, per-drive counters).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional

from repro.netsim.fabric import Fabric
from repro.sim import Environment, Event, FilterStore, Resource, SimulationError
from repro.tapesim.cartridge import TapeCartridge, TapeExtent
from repro.tapesim.drive import TapeDrive, TapeSpec

__all__ = ["TapeLibrary"]


class TapeLibrary:
    """A robot library with *n* drives and a cartridge inventory.

    Parameters
    ----------
    env:
        Simulation environment.
    n_drives:
        Number of installed drives (paper: 24 LTO-4).
    fabric, drive_ports:
        Optional SAN fabric and one port node name per drive.
    spec:
        Drive timing spec shared by all drives.
    robot_exchange:
        Seconds the robot needs per cartridge move (fetch or stow).
    n_scratch:
        Size of the initial scratch pool.
    handoff_penalty:
        Passed through to the drives (see :class:`TapeDrive`).
    """

    def __init__(
        self,
        env: Environment,
        n_drives: int = 24,
        fabric: Optional[Fabric] = None,
        drive_ports: Optional[list[str]] = None,
        spec: TapeSpec = TapeSpec(),
        robot_exchange: float = 12.0,
        n_scratch: int = 500,
        handoff_penalty: bool = True,
    ) -> None:
        if n_drives < 1:
            raise SimulationError("library needs at least one drive")
        if drive_ports is not None and len(drive_ports) < n_drives:
            raise SimulationError("need one SAN port per drive")
        self.env = env
        self.spec = spec
        self.robot = Resource(env, capacity=1)
        self.robot_exchange = robot_exchange
        self.drives: list[TapeDrive] = [
            TapeDrive(
                env,
                f"drv{i:02d}",
                fabric=fabric,
                port=drive_ports[i] if drive_ports else None,
                spec=spec,
                handoff_penalty=handoff_penalty,
            )
            for i in range(n_drives)
        ]
        #: idle drives available for allocation
        self._idle: FilterStore = FilterStore(env)
        for d in self.drives:
            self._idle.put(d)
        self._vol_seq = itertools.count(1)
        self.cartridges: dict[str, TapeCartridge] = {}
        self.scratch: list[str] = []
        for _ in range(n_scratch):
            self._add_scratch()
        #: filling volume per co-location group
        self._filling: dict[Optional[str], str] = {}
        #: per-volume mount serialization
        self._vol_locks: dict[str, Resource] = {}
        #: drive id -> (volume, lock request) for held drives
        self._holders: dict[int, tuple[str, object]] = {}
        # stats
        self.robot_moves = 0

    # ------------------------------------------------------------------
    # inventory
    # ------------------------------------------------------------------
    def _add_scratch(self) -> TapeCartridge:
        vol = f"A{next(self._vol_seq):05d}"
        cart = TapeCartridge(vol, capacity_bytes=self.spec.capacity)
        self.cartridges[vol] = cart
        self.scratch.append(vol)
        return cart

    def volume(self, vol: str) -> TapeCartridge:
        try:
            return self.cartridges[vol]
        except KeyError:
            raise SimulationError(f"unknown volume {vol!r}") from None

    def select_output_volume(
        self, nbytes: int, collocation_group: Optional[str] = None
    ) -> TapeCartridge:
        """Pick the volume a new object should be appended to.

        TSM-style: keep appending to the group's current filling volume
        while the object fits; otherwise take a scratch volume and bind it
        to the group.
        """
        filling = self._filling.get(collocation_group)
        if filling is not None:
            cart = self.cartridges[filling]
            if cart.fits(nbytes):
                return cart
        # need a new volume from scratch
        while self.scratch:
            vol = self.scratch.pop(0)
            cart = self.cartridges[vol]
            if cart.fits(nbytes):
                cart.collocation_group = collocation_group
                self._filling[collocation_group] = vol
                return cart
        # auto-extend the pool (sites buy media before running out)
        cart = self._add_scratch()
        self.scratch.remove(cart.volume)
        if not cart.fits(nbytes):
            raise SimulationError(
                f"object of {nbytes}B exceeds cartridge capacity "
                f"{cart.capacity_bytes:.0f}B"
            )
        cart.collocation_group = collocation_group
        self._filling[collocation_group] = cart.volume
        return cart

    # ------------------------------------------------------------------
    # drive allocation
    # ------------------------------------------------------------------
    def mounted_drive(self, vol: str) -> Optional[TapeDrive]:
        for d in self.drives:
            if d.cartridge is not None and d.cartridge.volume == vol:
                return d
        return None

    def _vol_lock(self, vol: str) -> Resource:
        lock = self._vol_locks.get(vol)
        if lock is None:
            lock = Resource(self.env, capacity=1)
            self._vol_locks[vol] = lock
        return lock

    def acquire_drive(self, vol: str) -> Event:
        """Acquire a drive with *vol* mounted; returns event -> TapeDrive.

        The caller must :meth:`release_drive` when done.  Mounting (robot +
        load) happens inside the acquisition, so the returned drive is
        ready for I/O on *vol*.  Acquisitions of the same volume are
        serialized (a cartridge exists exactly once).
        """
        done = self.env.event()
        cart = self.volume(vol)

        def _proc() -> Iterable[Event]:
            lock_req = self._vol_lock(vol).request()
            yield lock_req
            # Prefer a drive already holding the volume; else any idle
            # healthy one (failed drives sit in the pool until repaired).
            get_pref = self._idle.get(
                lambda d: not d.failed
                and d.cartridge is not None
                and d.cartridge.volume == vol
            )
            get_any = self._idle.get(lambda d: not d.failed)
            yield get_pref | get_any
            if get_pref.triggered:
                drive: TapeDrive = get_pref.value
                if get_any.triggered:  # grabbed a second drive: give it back
                    self._idle.put(get_any.value)
                else:
                    get_any.cancel()  # withdraw before it can grab a drive
            else:
                drive = get_any.value
                get_pref.cancel()  # withdraw before it can grab a drive
            tr = self.env.trace
            if drive.cartridge is not None and drive.cartridge.volume != vol:
                # Dismount the stale volume first and stow it.
                yield drive.unload()
                with self.robot.request() as arm:
                    yield arm
                    yield self.env.timeout(self.robot_exchange)
                    self.robot_moves += 1
                if tr.enabled:
                    tr.instant("robot:stow", tid=drive.name, cat="tape",
                               args={"volume": vol})
            if drive.cartridge is None:
                with self.robot.request() as arm:
                    yield arm
                    yield self.env.timeout(self.robot_exchange)
                    self.robot_moves += 1
                if tr.enabled:
                    tr.instant("robot:fetch", tid=drive.name, cat="tape",
                               args={"volume": vol})
                yield drive.load(cart)
            self._holders[id(drive)] = (vol, lock_req)
            done.succeed(drive)

        self.env.process(_proc(), name=f"acquire-{vol}")
        return done

    def release_drive(self, drive: TapeDrive) -> None:
        """Return a drive to the idle pool (volume stays mounted — lazy
        dismount lets the next user of the same volume skip the mount)."""
        held = self._holders.pop(id(drive), None)
        if held is not None:
            vol, lock_req = held
            self._vol_locks[vol].release(lock_req)
        self._idle.put(drive)

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail_drive(self, name: str) -> "TapeDrive":
        """Mark a drive failed.  In-flight operations finish; subsequent
        operations error, and the allocator skips it until repaired.
        A cartridge stuck in the failed drive stays inaccessible (the
        realistic operational pain)."""
        drive = self._drive_by_name(name)
        drive.failed = True
        return drive

    def repair_drive(self, name: str) -> "TapeDrive":
        """Clear the fault; the drive becomes allocatable again."""
        drive = self._drive_by_name(name)
        if drive.failed:
            drive.failed = False
            # poke the idle store: waiters' filters re-evaluate on put/get
            # cycles, so re-inject the drive if it is sitting idle.
            if drive in self._idle.items:
                self._idle.items.remove(drive)
                self._idle.put(drive)
        return drive

    def _drive_by_name(self, name: str) -> "TapeDrive":
        for d in self.drives:
            if d.name == name:
                return d
        raise SimulationError(f"no drive named {name!r}")

    @property
    def healthy_drives(self) -> list["TapeDrive"]:
        return [d for d in self.drives if not d.failed]

    # ------------------------------------------------------------------
    # aggregate stats
    # ------------------------------------------------------------------
    @property
    def total_mounts(self) -> int:
        return sum(d.mounts for d in self.drives)

    @property
    def total_label_verifies(self) -> int:
        return sum(d.label_verifies for d in self.drives)

    @property
    def total_handoff_rewinds(self) -> int:
        return sum(d.handoff_rewinds for d in self.drives)

    @property
    def total_backhitches(self) -> int:
        return sum(d.backhitches for d in self.drives)

    @property
    def total_seek_seconds(self) -> float:
        return sum(d.seek_seconds for d in self.drives)

    @property
    def bytes_on_tape(self) -> int:
        return sum(c.live_bytes for c in self.cartridges.values())

    def find_extent(self, object_id) -> Optional[TapeExtent]:
        """Exhaustive inventory scan (the slow path PFTool's tape DB avoids)."""
        for cart in self.cartridges.values():
            ext = cart.extent_of(object_id)
            if ext is not None:
                return ext
        return None

    def __repr__(self) -> str:
        mounted = sum(1 for d in self.drives if d.loaded)
        return (
            f"<TapeLibrary drives={len(self.drives)} mounted={mounted} "
            f"volumes={len(self.cartridges)} scratch={len(self.scratch)}>"
        )
