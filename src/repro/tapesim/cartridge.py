"""Tape cartridges and the extents written on them.

A cartridge records an append-only sequence of :class:`TapeExtent` s, one
per written object (file or aggregate).  The *sequence id* is the ordinal
used by PFTool's tape-ordered recall: reading extents in ascending seq on
one cartridge means the tape moves strictly forward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional

__all__ = ["TapeCartridge", "TapeExtent"]


@dataclass(frozen=True)
class TapeExtent:
    """One object's placement on a cartridge."""

    volume: str  # cartridge id
    seq: int  # 1-based ordinal on the tape (the "tape sequence number")
    start_byte: int  # longitudinal position of the first byte
    nbytes: int
    object_id: Hashable  # owning object (TSM object id)

    @property
    def end_byte(self) -> int:
        return self.start_byte + self.nbytes


class TapeCartridge:
    """A single tape volume.

    Parameters
    ----------
    volume:
        Volume id (e.g. ``"A00017"``).
    capacity_bytes:
        Native capacity (LTO-4: 800 GB).
    collocation_group:
        Optional co-location key — TSM keeps one client/filespace's data
        together on the same volumes when co-location is enabled (§4.2.2).
    """

    def __init__(
        self,
        volume: str,
        capacity_bytes: float = 800e9,
        collocation_group: Optional[str] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.volume = volume
        self.capacity_bytes = float(capacity_bytes)
        self.collocation_group = collocation_group
        self.extents: list[TapeExtent] = []
        self._by_object: dict[Hashable, TapeExtent] = {}
        #: end-of-data position in bytes
        self.eod: int = 0
        #: volumes can be retired from scratch rotation
        self.read_only = False

    # -- content -----------------------------------------------------------
    @property
    def next_seq(self) -> int:
        return len(self.extents) + 1

    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.eod

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes and not self.read_only

    def append(self, object_id: Hashable, nbytes: int) -> TapeExtent:
        """Record an appended object at EOD; returns its extent."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if not self.fits(nbytes):
            raise ValueError(
                f"volume {self.volume}: object of {nbytes}B does not fit "
                f"({self.free_bytes:.0f}B free, read_only={self.read_only})"
            )
        ext = TapeExtent(self.volume, self.next_seq, self.eod, int(nbytes), object_id)
        self.extents.append(ext)
        self._by_object[object_id] = ext
        self.eod += int(nbytes)
        return ext

    def extent_of(self, object_id: Hashable) -> Optional[TapeExtent]:
        return self._by_object.get(object_id)

    def remove(self, object_id: Hashable) -> bool:
        """Logically delete an object (space is NOT reclaimed until the
        volume is reclaimed/rewritten — true to tape semantics)."""
        ext = self._by_object.pop(object_id, None)
        if ext is None:
            return False
        self.extents = [e for e in self.extents if e.object_id != object_id]
        return True

    @property
    def live_bytes(self) -> int:
        return sum(e.nbytes for e in self.extents)

    @property
    def utilization(self) -> float:
        """Live data as a fraction of written data (reclamation driver)."""
        return self.live_bytes / self.eod if self.eod else 1.0

    def __repr__(self) -> str:
        return (
            f"<TapeCartridge {self.volume} {self.eod/1e9:.1f}/"
            f"{self.capacity_bytes/1e9:.0f} GB written, "
            f"{len(self.extents)} extents>"
        )
