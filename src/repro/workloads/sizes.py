"""File-size distributions for scientific archive workloads.

HPC output files are classically modelled as lognormal within a
campaign: a run writes many similar checkpoint/analysis files whose
sizes cluster around a campaign-specific mode with a heavy right tail.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lognormal_sizes"]


def lognormal_sizes(
    rng: np.random.Generator,
    n: int,
    mean_bytes: float,
    sigma: float = 0.6,
    min_bytes: int = 1024,
) -> np.ndarray:
    """Draw *n* file sizes with the requested arithmetic mean.

    For a lognormal, ``E[X] = exp(mu + sigma^2/2)``; we solve for ``mu``
    so the sample mean targets *mean_bytes*, then rescale exactly so
    that downstream byte accounting is deterministic.

    Returns an int64 array, each entry >= *min_bytes*.
    """
    if n <= 0:
        return np.zeros(0, dtype=np.int64)
    if mean_bytes < min_bytes:
        mean_bytes = float(min_bytes)
    mu = np.log(mean_bytes) - sigma**2 / 2.0
    sizes = rng.lognormal(mean=mu, sigma=sigma, size=n)
    sizes = np.maximum(sizes, min_bytes)
    # exact-mean rescale (keeps total bytes = n * mean_bytes)
    scale = (n * mean_bytes) / sizes.sum()
    sizes = np.maximum((sizes * scale).astype(np.int64), min_bytes)
    return sizes
