"""Workload generation: the Roadrunner Open Science job mix.

Figures 8-11 of the paper characterise 62 production parallel-archive
jobs recorded over 18 operation days (summer 2009):

==============================  =========  ==========  =========
statistic                        min        max         mean
==============================  =========  ==========  =========
files per job (Fig 8)            1          2,920,088   167,491
data per job (Fig 9)             4 GB       32,593 GB   2,442 GB
per-job data rate (Fig 10)       73 MB/s    1,868 MB/s  ~575 MB/s
mean file size per job (Fig 11)  4 KB       4,220 MB    596 MB
==============================  =========  ==========  =========

:func:`generate_open_science_trace` regenerates a statistically matching
62-job trace (Figures 8/9/11 are pure workload figures); the FIG10 bench
then *runs* the trace through the simulated system to measure rates.
"""

from repro.workloads.openscience import (
    JobSpec,
    OpenScienceTrace,
    PAPER_62_JOBS,
    generate_open_science_trace,
)
from repro.workloads.generators import (
    huge_file_campaign,
    materialize_job,
    small_file_flood,
)
from repro.workloads.persistence import (
    load_job_records,
    load_trace,
    save_job_records,
    save_trace,
)
from repro.workloads.sizes import lognormal_sizes

__all__ = [
    "JobSpec",
    "OpenScienceTrace",
    "PAPER_62_JOBS",
    "generate_open_science_trace",
    "huge_file_campaign",
    "load_job_records",
    "load_trace",
    "lognormal_sizes",
    "materialize_job",
    "save_job_records",
    "save_trace",
    "small_file_flood",
]
