"""Persisting traces and job records to JSON.

The paper's evaluation is built on 18 operation days of recorded job
statistics.  These helpers give the reproduction the same workflow:
traces and per-job :class:`~repro.pftool.stats.JobStats` records can be
written to disk, reloaded, and re-analysed without re-running the
simulation.
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Sequence, Union

from repro.workloads.openscience import JobSpec, OpenScienceTrace

__all__ = [
    "load_job_records",
    "load_journal",
    "load_trace",
    "save_job_records",
    "save_journal",
    "save_trace",
]

PathLike = Union[str, pathlib.Path]

_TRACE_FORMAT = "repro-openscience-trace-v1"
_RECORDS_FORMAT = "repro-job-records-v1"


def save_trace(trace: OpenScienceTrace, path: PathLike) -> pathlib.Path:
    """Write a trace as JSON; returns the path written."""
    path = pathlib.Path(path)
    payload = {
        "format": _TRACE_FORMAT,
        "seed": trace.seed,
        "jobs": [
            {"job_id": j.job_id, "n_files": j.n_files,
             "total_bytes": j.total_bytes}
            for j in trace.jobs
        ],
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_trace(path: PathLike) -> OpenScienceTrace:
    """Read a trace written by :func:`save_trace`."""
    payload = json.loads(pathlib.Path(path).read_text())
    if payload.get("format") != _TRACE_FORMAT:
        raise ValueError(
            f"{path}: not an open-science trace "
            f"(format={payload.get('format')!r})"
        )
    jobs = [
        JobSpec(j["job_id"], j["n_files"], j["total_bytes"])
        for j in payload["jobs"]
    ]
    return OpenScienceTrace(jobs=jobs, seed=payload.get("seed", 0))


def save_job_records(
    records: Iterable[dict], path: PathLike
) -> pathlib.Path:
    """Write job-stat dicts (see ``JobStats.to_dict``) as JSON lines with
    a header record; returns the path."""
    path = pathlib.Path(path)
    lines = [json.dumps({"format": _RECORDS_FORMAT})]
    lines += [json.dumps(r) for r in records]
    path.write_text("\n".join(lines) + "\n")
    return path


def load_job_records(path: PathLike) -> list[dict]:
    """Read records written by :func:`save_job_records`."""
    raw = pathlib.Path(path).read_text().splitlines()
    if not raw:
        raise ValueError(f"{path}: empty records file")
    header = json.loads(raw[0])
    if header.get("format") != _RECORDS_FORMAT:
        raise ValueError(
            f"{path}: not a job-records file (format={header.get('format')!r})"
        )
    return [json.loads(line) for line in raw[1:] if line.strip()]


def save_journal(journal, path: PathLike) -> pathlib.Path:
    """Write a :class:`~repro.recovery.journal.JobJournal` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(journal.to_payload(), indent=1))
    return path


def load_journal(path: PathLike, env=None):
    """Read a journal written by :func:`save_journal`."""
    from repro.recovery.journal import JobJournal

    payload = json.loads(pathlib.Path(path).read_text())
    return JobJournal.from_payload(payload, env=env)
