"""Materialising workloads onto a (scratch) file system.

These build the directory trees PFTool will walk: an Open Science job
becomes ``<root>/job<k>/run<i>/f<j>`` with lognormal file sizes, plus
the special-purpose generators for the experience-section experiments
(small-file floods for E1, huge-file campaigns for A2/A4).
"""

from __future__ import annotations

import math
from typing import Optional

from repro.pfs import GpfsFileSystem
from repro.sim.rng import RandomStreams
from repro.workloads.openscience import JobSpec
from repro.workloads.sizes import lognormal_sizes

__all__ = [
    "huge_file_campaign",
    "materialize_job",
    "preload_tree",
    "small_file_flood",
]


def _instant_create(
    fs: GpfsFileSystem, client: str, path: str, size: int, token_base: int
) -> None:
    """Create a pre-existing file without charging simulation time.

    Workload *setup* happened before the measured window in the paper
    (the science runs wrote scratch over days); benches must not bill
    that time to the archive job, so setup bypasses the timed data path.
    """
    inode = fs.namespace.create(path, fs.env.now)
    inode.size = int(size)
    pool_name = fs.policy.place(path, inode, fs.env.now)
    pool = fs.pool(pool_name)
    fs._allocate(inode, pool, int(size))
    inode.pool = pool_name
    inode.content_token = token_base + inode.ino


def materialize_job(
    fs: GpfsFileSystem,
    job: JobSpec,
    root: str,
    seed: Optional[int] = None,
    files_per_dir: int = 256,
    sigma: float = 0.6,
) -> dict:
    """Create *job*'s tree under *root* on *fs* (instantaneous setup).

    Returns {'root': ..., 'n_files': ..., 'total_bytes': ...} with the
    exact materialised totals.
    """
    rng = RandomStreams(job.job_id if seed is None else seed).stream("files")
    n = job.n_files
    mean = max(1024.0, job.total_bytes / max(1, n))
    sizes = lognormal_sizes(rng, n, mean, sigma=sigma)
    fs.mkdir(root, parents=True)
    n_dirs = max(1, math.ceil(n / files_per_dir))
    total = 0
    for d in range(n_dirs):
        dpath = f"{root}/run{d:04d}"
        fs.mkdir(dpath, parents=True)
        lo = d * files_per_dir
        hi = min(n, lo + files_per_dir)
        for j in range(lo, hi):
            size = int(sizes[j])
            _instant_create(fs, "setup", f"{dpath}/f{j:07d}", size, job.job_id << 20)
            total += size
    return {"root": root, "n_files": n, "total_bytes": total}


def preload_tree(
    fs: GpfsFileSystem,
    root: str,
    sizes,
    token_base: int = 0x51 << 20,
) -> int:
    """Instantly create ``root/f<i>`` with the given sizes; total bytes.

    The flat-directory generator the scheduler scenarios use: one tiny
    tree per submitted job, thousands of jobs per run — setup must not
    bill simulated time or walk overhead.
    """
    fs.mkdir(root, parents=True)
    total = 0
    for i, size in enumerate(sizes):
        _instant_create(fs, "setup", f"{root}/f{i:04d}", int(size), token_base)
        total += int(size)
    return total


def small_file_flood(
    fs: GpfsFileSystem,
    root: str,
    n_files: int,
    file_size: int = 8_000_000,
) -> list[str]:
    """§6.1's pathology: *n_files* identical small files (default 8 MB).

    Returns the created paths.
    """
    fs.mkdir(root, parents=True)
    paths = []
    for i in range(n_files):
        p = f"{root}/small{i:07d}"
        _instant_create(fs, "setup", p, file_size, 0xE1 << 20)
        paths.append(p)
    return paths


def huge_file_campaign(
    fs: GpfsFileSystem,
    root: str,
    n_files: int,
    file_size: int,
) -> list[str]:
    """A2/A4-style campaign: a few enormous files (checkpoint dumps)."""
    fs.mkdir(root, parents=True)
    paths = []
    for i in range(n_files):
        p = f"{root}/huge{i:03d}.h5"
        _instant_create(fs, "setup", p, file_size, 0xA2 << 20)
        paths.append(p)
    return paths
