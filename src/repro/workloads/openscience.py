"""Regeneration of the 62-job Open Science archive trace (Figs 8-11).

The paper reports only summary statistics of the production trace, so we
synthesise a 62-job population that reproduces them:

* four **anchor jobs** pin the reported extremes exactly — the 1-file
  job with the 4,220 MB mean size (Figs 8 & 11), the 2,920,088-file job
  at the 4 KB mean size (Figs 8 & 11), the 4 GB minimum-data job and
  the 32,593 GB maximum-data job (Fig 9);
* the other 58 jobs draw (mean file size, job bytes) from wide
  lognormals — scientific campaigns are lognormal-ish per Fig 8-11's
  log-scale spreads — with file count derived as bytes/mean-size (the
  empirically necessary anti-correlation: million-file jobs have small
  files);
* a calibration pass rescales the samples so the three population means
  (files/job, bytes/job, mean-size/job) match the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.rng import RandomStreams

__all__ = [
    "JobSpec",
    "OpenScienceTrace",
    "PAPER_62_JOBS",
    "generate_open_science_trace",
]

GB = 1_000_000_000
MB = 1_000_000
KB = 1_000

#: the published Figure 8-11 statistics
PAPER_62_JOBS = {
    "n_jobs": 62,
    "files_min": 1,
    "files_max": 2_920_088,
    "files_mean": 167_491,
    "bytes_min": 4 * GB,
    "bytes_max": 32_593 * GB,
    "bytes_mean": 2_442 * GB,
    "mean_size_min": 4 * KB,
    "mean_size_max": 4_220 * MB,
    "mean_size_mean": 596 * MB,
    "rate_min": 73 * MB,
    "rate_max": 1_868 * MB,
    "rate_mean": 575 * MB,
}


@dataclass(frozen=True)
class JobSpec:
    """One archive job: *n_files* files totalling *total_bytes*."""

    job_id: int
    n_files: int
    total_bytes: int

    @property
    def mean_size(self) -> float:
        return self.total_bytes / self.n_files

    def scaled(self, max_files: int) -> "JobSpec":
        """Downscale the job for DES replay: cap the file count while
        preserving the mean file size (rates are intensive, so this
        keeps the per-job bandwidth behaviour while bounding event
        count)."""
        if self.n_files <= max_files:
            return self
        n = max_files
        return JobSpec(self.job_id, n, int(self.mean_size * n))


@dataclass
class OpenScienceTrace:
    """The synthesised 62-job population."""

    jobs: list[JobSpec] = field(default_factory=list)
    seed: int = 2009

    def files_per_job(self) -> np.ndarray:
        return np.array([j.n_files for j in self.jobs], dtype=np.int64)

    def bytes_per_job(self) -> np.ndarray:
        return np.array([j.total_bytes for j in self.jobs], dtype=np.int64)

    def mean_size_per_job(self) -> np.ndarray:
        return np.array([j.mean_size for j in self.jobs])

    def summary(self) -> dict:
        n = self.files_per_job()
        b = self.bytes_per_job()
        s = self.mean_size_per_job()
        return {
            "n_jobs": len(self.jobs),
            "files_min": int(n.min()),
            "files_max": int(n.max()),
            "files_mean": float(n.mean()),
            "bytes_min": int(b.min()),
            "bytes_max": int(b.max()),
            "bytes_mean": float(b.mean()),
            "mean_size_min": float(s.min()),
            "mean_size_max": float(s.max()),
            "mean_size_mean": float(s.mean()),
        }


def generate_open_science_trace(seed: int = 2009) -> OpenScienceTrace:
    """Build the calibrated 62-job trace (deterministic per *seed*)."""
    rng = RandomStreams(seed).stream("openscience")
    P = PAPER_62_JOBS

    # ---- anchors pin the reported extremes exactly -----------------------
    anchors = [
        # (n_files, total_bytes)
        (1, P["mean_size_max"]),  # 1 file of 4,220 MB: min files, max size
        (P["files_max"], P["files_max"] * P["mean_size_min"]),  # 2.92M x 4KB
        (40, P["bytes_min"]),  # the 4 GB job
        (int(P["bytes_max"] / GB), P["bytes_max"]),  # 32.6 TB of ~1GB files
    ]
    n_rest = P["n_jobs"] - len(anchors)

    # ---- sample the remaining 58 jobs -----------------------------------
    # mean file size: wide lognormal, median ~64 MB
    s = rng.lognormal(mean=np.log(64 * MB), sigma=2.2, size=n_rest)
    s = np.clip(s, 8 * KB, 4.0 * GB)
    # job bytes: lognormal, median ~400 GB
    b = rng.lognormal(mean=np.log(400 * GB), sigma=1.4, size=n_rest)
    b = np.clip(b, 5 * GB, 30_000 * GB)

    # ---- calibrate the three population means ---------------------------
    a_n = np.array([a[0] for a in anchors], dtype=float)
    a_b = np.array([a[1] for a in anchors], dtype=float)
    a_s = a_b / a_n

    # (1) mean of per-job mean size
    target_s_sum = P["mean_size_mean"] * P["n_jobs"] - a_s.sum()
    s *= target_s_sum / s.sum()
    s = np.clip(s, 8 * KB, 4.0 * GB)
    s *= target_s_sum / s.sum()  # second pass fixes clip residue

    # (2) mean bytes per job
    target_b_sum = P["bytes_mean"] * P["n_jobs"] - a_b.sum()
    b *= target_b_sum / b.sum()
    b = np.clip(b, 5 * GB, 30_000 * GB)
    b *= target_b_sum / b.sum()

    # (3) mean files per job: n = b/s, then shift byte-mass between the
    # smallest-size job (count-heavy, byte-light) and the largest-size
    # job (byte-heavy, count-light) to absorb the residual.
    n = np.maximum(1, b / s)
    target_n_sum = P["files_mean"] * P["n_jobs"] - a_n.sum()
    for _ in range(32):
        delta = target_n_sum - n.sum()
        if abs(delta) < 1:
            break
        k = int(np.argmin(s))  # cheapest files to mint/remove
        n[k] = max(1.0, n[k] + delta)
        b[k] = n[k] * s[k]
        # keep mean bytes on target by adjusting the biggest-size job,
        # whose file count barely moves
        j = int(np.argmax(s))
        b_resid = target_b_sum - b.sum()
        b[j] = max(5 * GB, b[j] + b_resid)
        n[j] = max(1.0, b[j] / s[j])

    jobs = []
    jid = 0
    for nf, tb in anchors:
        jobs.append(JobSpec(jid, int(nf), int(tb)))
        jid += 1
    for i in range(n_rest):
        nf = max(1, int(round(n[i])))
        # integer rounding must not push a job's mean size past the
        # anchored maximum (4,220 MB) or below the minimum (4 KB)
        tb = int(min(max(b[i], nf * 8 * KB), nf * 4.19 * GB))
        jobs.append(JobSpec(jid, nf, tb))
        jid += 1
    # interleave deterministically so anchors are not clustered in time
    order = rng.permutation(len(jobs))
    jobs = [
        JobSpec(k, jobs[o].n_files, jobs[o].total_bytes)
        for k, o in enumerate(order)
    ]
    return OpenScienceTrace(jobs=jobs, seed=seed)
