"""Sharded tape index: volume-range routing, LRU hot-entry cache,
streaming k-way recall order.

The paper's tape-index DB is one MySQL export; CASTOR's history is the
name-server outgrowing exactly that design.  :class:`ShardedTapeIndex`
is the next rung: the ``objects`` table is split across N shards, each a
full :class:`~repro.tapedb.engine.Table` with the same ``by_path`` /
``by_volume`` indexes, fronted by an LRU cache of hot locations.

Routing
-------
A *router* maps ``volume -> shard``.  Two deterministic routers ship:

* :class:`VolumeRangeRouter` — explicit split points over the volume
  namespace (``bisect`` over sorted boundaries), the classic range
  partition when volume naming is known (benchmarks use numbered
  volumes and even split points);
* :class:`TokenRangeRouter` — the boundary-free default: the 64-bit
  SHA-256 token of the volume name, with the token space cut into N
  contiguous ranges (Cassandra-style).  Stable across processes, no
  state, balanced for any naming scheme.

Because routing is by volume, ``by_volume`` queries touch one shard and
path/object queries either hit the cache, the ``_oid_dir`` directory
(object id -> shard, O(1)), or fan out to N indexed hash lookups.

Order contract
--------------
Every query answers **byte-identically** to a monolithic
:class:`~repro.tapedb.tapeindex.TapeIndexDB` fed the same upserts in the
same order.  The one subtlety is ties: the monolith resolves duplicate
``(volume, seq)`` keys and duplicate paths by insertion order, which a
shard cannot see globally — so every row carries ``gseq``, a global
upsert sequence number.  Streamed merges key on ``(volume, seq, gseq)``
and path lookups take the max-``gseq`` row, which is exactly the
monolith's last-write-wins.  ``tests/test_tapedb_shard_properties.py``
proves the equivalence with a hypothesis oracle.
"""

from __future__ import annotations

import bisect
import hashlib
from collections import OrderedDict
from typing import Any, Iterable, Iterator, Optional, Sequence

from repro.sim import Environment, Event
from repro.tapedb.engine import Table
from repro.tapedb.stream import merge_sorted
from repro.tapedb.tapeindex import TapeIndexDB, TapeLocation

__all__ = [
    "LruCache",
    "ShardedTapeIndex",
    "TokenRangeRouter",
    "VolumeRangeRouter",
]

_MASK64 = (1 << 64) - 1


class VolumeRangeRouter:
    """Range partition over the volume namespace.

    *boundaries* are strictly ascending split points; volume *v* routes
    to shard ``bisect_right(boundaries, v)``, giving
    ``len(boundaries) + 1`` shards.
    """

    def __init__(self, boundaries: Sequence[str]) -> None:
        self.boundaries = tuple(boundaries)
        if list(self.boundaries) != sorted(set(self.boundaries)):
            raise ValueError("boundaries must be strictly ascending")

    @property
    def n_shards(self) -> int:
        return len(self.boundaries) + 1

    def shard_of(self, volume: str) -> int:
        return bisect.bisect_right(self.boundaries, volume)

    @classmethod
    def for_numbered(
        cls, n_volumes: int, n_shards: int, prefix: str = "VOL", width: int = 6
    ) -> "VolumeRangeRouter":
        """Even split points for ``{prefix}{i:0{width}d}`` volume names."""
        if n_shards < 1:
            raise ValueError("need at least one shard")
        bounds = [
            f"{prefix}{(k * n_volumes) // n_shards:0{width}d}"
            for k in range(1, n_shards)
        ]
        return cls(bounds)

    @classmethod
    def from_sample(
        cls, volumes: Iterable[str], n_shards: int
    ) -> "VolumeRangeRouter":
        """Quantile split points from a sample of volume names."""
        sample = sorted(set(volumes))
        if n_shards < 1:
            raise ValueError("need at least one shard")
        if len(sample) < n_shards:
            return cls(sample[1:] if len(sample) > 1 else [])
        bounds = [
            sample[(k * len(sample)) // n_shards] for k in range(1, n_shards)
        ]
        # duplicates collapse the shard count rather than erroring
        return cls(sorted(set(bounds)))


class TokenRangeRouter:
    """Range partition over the hashed token space (the default).

    The 64-bit SHA-256 token of the volume name lands in one of N equal
    contiguous token ranges.  Needs no knowledge of the naming scheme,
    is balanced for any volume population, and — unlike built-in
    ``hash()`` — is stable across processes and seeds.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("need at least one shard")
        self.n_shards = n_shards
        self._tokens: dict[str, int] = {}

    def shard_of(self, volume: str) -> int:
        shard = self._tokens.get(volume)
        if shard is None:
            token = int.from_bytes(
                hashlib.sha256(volume.encode("utf-8")).digest()[:8], "little"
            )
            shard = (token * self.n_shards) >> 64
            self._tokens[volume] = shard
        return shard


class LruCache:
    """Hot-entry LRU with hit/miss/eviction counters.

    ``capacity <= 0`` disables caching entirely (every get is a miss,
    puts are dropped) so cache-transparency tests can diff against an
    uncached twin without branching.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    _SENTINEL = object()

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key) -> tuple[bool, Any]:
        val = self._data.get(key, self._SENTINEL)
        if val is self._SENTINEL:
            self.misses += 1
            return False, None
        self._data.move_to_end(key)
        self.hits += 1
        return True, val

    def put(self, key, value) -> None:
        if self.capacity <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def invalidate(self, key) -> None:
        self._data.pop(key, None)

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<LruCache {len(self._data)}/{self.capacity} hits={self.hits} "
            f"misses={self.misses} evictions={self.evictions}>"
        )


#: columns of a shard table: the monolith's schema plus the global
#: upsert sequence number that restores cross-shard tie-breaking
_SHARD_COLUMNS = (
    "object_id",
    "path",
    "filespace",
    "volume",
    "seq",
    "nbytes",
    "inserted_at",
    "gseq",
)


class ShardedTapeIndex:
    """Drop-in :class:`TapeIndexDB` replacement, sharded by volume range.

    Same public surface (``upsert`` / ``remove`` / ``location_of`` /
    ``object_for_path`` / ``objects_on_volume`` / ``locate_many`` /
    ``sort_tape_order``) plus the streaming side
    (:meth:`iter_recall_order`, :meth:`bulk_load`) and observability
    (:attr:`cache`, :meth:`shard_sizes`, :meth:`publish_metrics`).
    """

    def __init__(
        self,
        env: Environment,
        n_shards: int = 4,
        router=None,
        cache_entries: int = 4096,
        query_latency: float = 0.001,
    ) -> None:
        self.env = env
        self.router = router if router is not None else TokenRangeRouter(n_shards)
        self.n_shards = self.router.n_shards
        self.query_latency = query_latency
        self.cache = LruCache(cache_entries)
        self._tables = []
        for i in range(self.n_shards):
            t = Table(
                f"objects-s{i}", columns=_SHARD_COLUMNS, primary_key="object_id"
            )
            t.create_index("by_path", ("filespace", "path"))
            t.create_index("by_volume", ("volume", "seq"))
            self._tables.append(t)
        #: object id -> shard index (the directory; O(1) point lookups)
        self._oid_dir: dict[int, int] = {}
        #: global upsert sequence (monolith insertion order, restored)
        self._gseq = 0
        self.queries = 0
        #: rows pulled through streaming cursors (for rate metrics)
        self.stream_rows = 0

    # -- load side -------------------------------------------------------
    def upsert(
        self,
        object_id: int,
        path: str,
        filespace: str,
        volume: str,
        seq: int,
        nbytes: int,
    ) -> None:
        old_shard = self._oid_dir.get(object_id)
        if old_shard is not None:
            old_row = self._tables[old_shard].get(object_id)
            self._tables[old_shard].delete(object_id)
            if old_row is not None:
                self.cache.invalidate(
                    ("path", old_row["filespace"], old_row["path"])
                )
        shard = self.router.shard_of(volume)
        self._gseq += 1
        self._tables[shard].insert(
            {
                "object_id": object_id,
                "path": path,
                "filespace": filespace,
                "volume": volume,
                "seq": seq,
                "nbytes": nbytes,
                "inserted_at": self.env.now,
                "gseq": self._gseq,
            }
        )
        self._oid_dir[object_id] = shard
        self.cache.invalidate(("oid", object_id))
        self.cache.invalidate(("path", filespace, path))

    def bulk_load(self, rows: Iterable[dict]) -> int:
        """Load many ``upsert``-shaped rows at once (one sort per shard).

        Object ids must be new (seeding/import, like
        :meth:`TapeIndexDB.bulk_load`); rows are stamped with ``gseq``
        in iteration order so ordering ties resolve as if each row had
        been upserted individually.
        """
        now = self.env.now
        per_shard: list[list[dict]] = [[] for _ in range(self.n_shards)]
        placed: list[tuple[int, int]] = []
        for row in rows:
            oid = row["object_id"]
            if oid in self._oid_dir:
                raise ValueError(f"bulk_load: object {oid} already indexed")
            shard = self.router.shard_of(row["volume"])
            self._gseq += 1
            per_shard[shard].append(
                {**row, "inserted_at": now, "gseq": self._gseq}
            )
            placed.append((oid, shard))
        for table, shard_rows in zip(self._tables, per_shard):
            if shard_rows:
                table.bulk_load(shard_rows)
        for oid, shard in placed:
            self._oid_dir[oid] = shard
        return len(placed)

    def remove(self, object_id: int) -> bool:
        shard = self._oid_dir.pop(object_id, None)
        if shard is None:
            return False
        row = self._tables[shard].get(object_id)
        ok = self._tables[shard].delete(object_id)
        if row is not None:
            self.cache.invalidate(("path", row["filespace"], row["path"]))
        self.cache.invalidate(("oid", object_id))
        return ok

    def __len__(self) -> int:
        return len(self._oid_dir)

    # -- instant (logic-only) queries ------------------------------------
    def location_of(self, object_id: int) -> Optional[TapeLocation]:
        key = ("oid", object_id)
        hit, val = self.cache.get(key)
        if hit:
            return val
        shard = self._oid_dir.get(object_id)
        row = self._tables[shard].get(object_id) if shard is not None else None
        loc = self._row_to_loc(row) if row else None
        self.cache.put(key, loc)
        return loc

    def object_for_path(self, filespace: str, path: str) -> Optional[TapeLocation]:
        key = ("path", filespace, path)
        hit, val = self.cache.get(key)
        if hit:
            return val
        best = None
        for table in self._tables:
            for row in table.select_eq("by_path", filespace, path):
                if best is None or row["gseq"] > best["gseq"]:
                    best = row
        loc = self._row_to_loc(best) if best else None
        self.cache.put(key, loc)
        return loc

    def objects_on_volume(self, volume: str) -> list[TapeLocation]:
        return list(self.iter_objects_on_volume(volume))

    def iter_objects_on_volume(
        self, volume: str, batch: int = 256, gauge=None
    ) -> Iterator[TapeLocation]:
        """Stream one volume's objects in seq order — a single-shard scan."""
        table = self._tables[self.router.shard_of(volume)]
        for row in table.iter_index(
            "by_volume", prefix=(volume,), batch=batch, gauge=gauge
        ):
            self.stream_rows += 1
            yield self._row_to_loc(row)

    def iter_recall_order(
        self, batch: int = 256, gauge=None
    ) -> Iterator[TapeLocation]:
        """Stream the whole index in global (volume, seq) order.

        A k-way ``heapq`` merge over per-shard ``by_volume`` cursors.
        Each cursor materialises at most *batch* rows, so the merge
        holds at most ``n_shards * batch`` live entries no matter the
        population — the bounded-memory recall sort.  Order is
        byte-identical to the monolithic index (``gseq`` breaks
        duplicate-key ties in global insertion order).
        """
        cursors = [
            table.iter_index("by_volume", batch=batch, gauge=gauge)
            for table in self._tables
        ]
        for row in merge_sorted(
            cursors, key=lambda r: (r["volume"], r["seq"], r["gseq"])
        ):
            self.stream_rows += 1
            yield self._row_to_loc(row)

    # -- timed queries (what PFTool issues) --------------------------------
    def locate_many(self, filespace: str, paths: Sequence[str]) -> Event:
        """Batch lookup; event fires with {path: TapeLocation | None}.

        Same latency model as the monolith (one round trip plus a
        per-row increment) — sharding changes where rows live and what
        the queries cost *us*, not the simulated wire protocol — so a
        sharded site reproduces monolithic timings byte-for-byte.
        """
        done = self.env.event()

        def _proc():
            self.queries += 1
            yield self.env.timeout(self.query_latency + 1e-5 * len(paths))
            out = {p: self.object_for_path(filespace, p) for p in paths}
            if self.env.trace.enabled:
                self.publish_metrics()
            done.succeed(out)

        self.env.process(_proc(), name="tapedb-locate")
        return done

    #: identical grouping semantics to the monolith (it IS the monolith's)
    sort_tape_order = staticmethod(TapeIndexDB.sort_tape_order)

    # -- observability ---------------------------------------------------
    def shard_sizes(self) -> list[int]:
        return [len(t) for t in self._tables]

    def shard_balance(self) -> float:
        """max/mean shard population (1.0 = perfectly balanced)."""
        sizes = self.shard_sizes()
        total = sum(sizes)
        if not total:
            return 1.0
        return max(sizes) / (total / len(sizes))

    def publish_metrics(self) -> None:
        """Export cache and shard-balance counters through repro.trace."""
        m = self.env.trace.metrics
        m.counter("tapedb.cache_hits").set(self.cache.hits)
        m.counter("tapedb.cache_misses").set(self.cache.misses)
        m.counter("tapedb.cache_evictions").set(self.cache.evictions)
        m.counter("tapedb.stream_rows").set(self.stream_rows)
        m.counter("tapedb.queries").set(self.queries)
        sizes = self.shard_sizes()
        m.gauge("tapedb.shards").set(len(sizes))
        m.gauge("tapedb.shard_max_entries").set(max(sizes) if sizes else 0)
        m.gauge("tapedb.shard_balance").set(round(self.shard_balance(), 6))

    @staticmethod
    def _row_to_loc(row: dict) -> TapeLocation:
        return TapeLocation(
            object_id=row["object_id"],
            path=row["path"],
            filespace=row["filespace"],
            volume=row["volume"],
            seq=row["seq"],
            nbytes=row["nbytes"],
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<ShardedTapeIndex shards={self.n_shards} rows={len(self)} "
            f"cache={self.cache!r}>"
        )
