"""Embedded indexed table engine + the tape index database.

TSM 5.5 keeps its object metadata in a proprietary database whose
(volume, tape-sequence) columns are not indexed and cannot be queried
efficiently (§4.2.5).  The paper's fix is an export job that copies the
relevant columns into MySQL with proper indexes; PFTool then asks MySQL
"which tape and where on it?" for every file to recall, and sorts
recalls into tape order.

:mod:`repro.tapedb` supplies the same capability:

* :class:`Table` / :class:`Index` — a small in-memory table engine with
  hash + sorted-range indexes and predicate scans;
* :class:`TapeIndexDB` — the `filespace -> (volume, seq, object id)`
  schema with the queries PFTool and the synchronous deleter need;
* :class:`TsmDbExporter` — the periodic export job from a TSM server.
"""

from repro.tapedb.engine import Index, Table
from repro.tapedb.tapeindex import TapeIndexDB, TapeLocation, TsmDbExporter

__all__ = ["Index", "Table", "TapeIndexDB", "TapeLocation", "TsmDbExporter"]
