"""Embedded indexed table engine + the tape index database.

TSM 5.5 keeps its object metadata in a proprietary database whose
(volume, tape-sequence) columns are not indexed and cannot be queried
efficiently (§4.2.5).  The paper's fix is an export job that copies the
relevant columns into MySQL with proper indexes; PFTool then asks MySQL
"which tape and where on it?" for every file to recall, and sorts
recalls into tape order.

:mod:`repro.tapedb` supplies the same capability, grown past the single
export the paper ran:

* :class:`Table` / :class:`Index` — a small in-memory table engine with
  hash + sorted-range indexes, predicate scans, streaming cursors
  (:meth:`Table.iter_index`) and O(n log n) :meth:`Table.bulk_load`;
* :class:`TapeIndexDB` — the `filespace -> (volume, seq, object id)`
  schema with the queries PFTool and the synchronous deleter need,
  including the streaming recall order;
* :class:`ShardedTapeIndex` — the same surface sharded by volume range
  behind a router (:class:`VolumeRangeRouter` /
  :class:`TokenRangeRouter`) with an :class:`LruCache` of hot entries
  and a bounded-memory k-way merge for recall order — the 10^7-10^8
  file tier (see DESIGN.md "Metadata plane");
* :class:`TsmDbExporter` — the periodic export job from a TSM server;
* :class:`BufferGauge` — live-entry accounting that lets tests *prove*
  the streaming paths hold at most ``shards x batch`` entries.
"""

from repro.tapedb.engine import Index, Table
from repro.tapedb.shard import (
    LruCache,
    ShardedTapeIndex,
    TokenRangeRouter,
    VolumeRangeRouter,
)
from repro.tapedb.stream import BufferGauge, merge_sorted
from repro.tapedb.tapeindex import TapeIndexDB, TapeLocation, TsmDbExporter

__all__ = [
    "BufferGauge",
    "Index",
    "LruCache",
    "ShardedTapeIndex",
    "Table",
    "TapeIndexDB",
    "TapeLocation",
    "TokenRangeRouter",
    "TsmDbExporter",
    "VolumeRangeRouter",
    "merge_sorted",
]
