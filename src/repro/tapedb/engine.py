"""A tiny indexed table engine (the MySQL stand-in).

Rows are dicts; a :class:`Table` enforces a column schema and maintains
secondary :class:`Index` es (hash for equality, sorted arrays for range
scans via :mod:`bisect`).  Just enough SQL-shaped capability for the
archive: equality lookups, ordered range scans, predicate filters,
deletes by key.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Hashable, Iterator, Optional, Sequence

__all__ = ["Index", "Table"]

Row = dict


class Index:
    """Secondary index over one or more columns.

    Maintains both a hash map (equality) and a sorted key list (ordered
    iteration / range queries).  Keys are tuples of the column values.
    """

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if not columns:
            raise ValueError("index needs at least one column")
        self.name = name
        self.columns = tuple(columns)
        self._hash: dict[tuple, list[int]] = {}
        self._sorted_keys: list[tuple] = []

    def key_of(self, row: Row) -> tuple:
        return tuple(row[c] for c in self.columns)

    def add(self, rowid: int, row: Row) -> None:
        key = self.key_of(row)
        bucket = self._hash.get(key)
        if bucket is None:
            self._hash[key] = [rowid]
            bisect.insort(self._sorted_keys, key)
        else:
            bucket.append(rowid)

    def remove(self, rowid: int, row: Row) -> None:
        key = self.key_of(row)
        bucket = self._hash.get(key)
        if not bucket:
            return
        try:
            bucket.remove(rowid)
        except ValueError:
            return
        if not bucket:
            del self._hash[key]
            i = bisect.bisect_left(self._sorted_keys, key)
            if i < len(self._sorted_keys) and self._sorted_keys[i] == key:
                self._sorted_keys.pop(i)

    def lookup(self, key: tuple) -> list[int]:
        return list(self._hash.get(key, ()))

    def range(
        self, lo: Optional[tuple] = None, hi: Optional[tuple] = None
    ) -> Iterator[int]:
        """Row ids with lo <= key < hi, in key order."""
        start = 0 if lo is None else bisect.bisect_left(self._sorted_keys, lo)
        stop = (
            len(self._sorted_keys)
            if hi is None
            else bisect.bisect_left(self._sorted_keys, hi)
        )
        for key in self._sorted_keys[start:stop]:
            yield from self._hash[key]

    def prefix(self, prefix: tuple) -> Iterator[int]:
        """Row ids whose key starts with *prefix*, in key order."""
        lo = prefix
        hi = prefix[:-1] + (_Biggest(prefix[-1]),)
        start = bisect.bisect_left(self._sorted_keys, lo)
        for key in self._sorted_keys[start:]:
            if key[: len(prefix)] != prefix:
                break
            yield from self._hash[key]

    def __len__(self) -> int:
        return len(self._sorted_keys)


class _Biggest:
    """Sorts just after any value equal to its payload (prefix upper bound)."""

    __slots__ = ("payload",)

    def __init__(self, payload: Any) -> None:
        self.payload = payload

    def __lt__(self, other: Any) -> bool:
        return False  # nothing is bigger

    def __gt__(self, other: Any) -> bool:
        return True


class Table:
    """A schema'd in-memory table with a primary key and secondary indexes."""

    def __init__(
        self, name: str, columns: Sequence[str], primary_key: str
    ) -> None:
        if primary_key not in columns:
            raise ValueError(f"primary key {primary_key!r} not in columns")
        self.name = name
        self.columns = tuple(columns)
        self.primary_key = primary_key
        self._rows: dict[int, Row] = {}
        self._next_rowid = 1
        self._pk: dict[Hashable, int] = {}
        self._indexes: dict[str, Index] = {}

    # -- schema ----------------------------------------------------------
    def create_index(self, name: str, columns: Sequence[str]) -> Index:
        if name in self._indexes:
            raise ValueError(f"duplicate index {name!r}")
        idx = Index(name, columns)
        for rowid, row in self._rows.items():
            idx.add(rowid, row)
        self._indexes[name] = idx
        return idx

    def index(self, name: str) -> Index:
        try:
            return self._indexes[name]
        except KeyError:
            raise KeyError(f"table {self.name}: no index {name!r}") from None

    # -- DML -------------------------------------------------------------
    def insert(self, row: Row) -> int:
        missing = set(self.columns) - set(row)
        extra = set(row) - set(self.columns)
        if missing or extra:
            raise ValueError(
                f"table {self.name}: bad columns (missing={sorted(missing)}, "
                f"extra={sorted(extra)})"
            )
        pk = row[self.primary_key]
        if pk in self._pk:
            raise ValueError(f"table {self.name}: duplicate key {pk!r}")
        rowid = self._next_rowid
        self._next_rowid += 1
        stored = dict(row)
        self._rows[rowid] = stored
        self._pk[pk] = rowid
        for idx in self._indexes.values():
            idx.add(rowid, stored)
        return rowid

    def get(self, pk: Hashable) -> Optional[Row]:
        rowid = self._pk.get(pk)
        return dict(self._rows[rowid]) if rowid is not None else None

    def delete(self, pk: Hashable) -> bool:
        rowid = self._pk.pop(pk, None)
        if rowid is None:
            return False
        row = self._rows.pop(rowid)
        for idx in self._indexes.values():
            idx.remove(rowid, row)
        return True

    def update(self, pk: Hashable, **changes: Any) -> bool:
        rowid = self._pk.get(pk)
        if rowid is None:
            return False
        row = self._rows[rowid]
        if self.primary_key in changes and changes[self.primary_key] != pk:
            raise ValueError("cannot change the primary key")
        for idx in self._indexes.values():
            idx.remove(rowid, row)
        row.update(changes)
        for idx in self._indexes.values():
            idx.add(rowid, row)
        return True

    # -- queries -----------------------------------------------------------
    def select_eq(self, index_name: str, *key: Any) -> list[Row]:
        idx = self.index(index_name)
        return [dict(self._rows[r]) for r in idx.lookup(tuple(key))]

    def select_prefix(self, index_name: str, *prefix: Any) -> list[Row]:
        idx = self.index(index_name)
        return [dict(self._rows[r]) for r in idx.prefix(tuple(prefix))]

    def select_range(
        self,
        index_name: str,
        lo: Optional[tuple] = None,
        hi: Optional[tuple] = None,
    ) -> list[Row]:
        idx = self.index(index_name)
        return [dict(self._rows[r]) for r in idx.range(lo, hi)]

    def iter_index(
        self,
        index_name: str,
        prefix: Optional[Sequence[Any]] = None,
        batch: int = 256,
        gauge=None,
    ) -> Iterator[Row]:
        """Stream row copies in index-key order, one *batch* at a time.

        The streaming counterpart of :meth:`select_prefix` /
        :meth:`select_range`: instead of copying the whole result up
        front, at most *batch* row copies are live at any moment (the
        cursor walks the sorted key list positionally and refills its
        buffer as the caller consumes it).  *gauge* is an optional
        :class:`repro.tapedb.stream.BufferGauge` credited/debited per
        batch, which is how bounded-memory tests measure the cursor.

        Cursors are **not** snapshots: do not mutate the table while one
        is open (key positions would shift mid-walk).
        """
        if batch <= 0:
            raise ValueError("batch must be positive")
        idx = self.index(index_name)
        if prefix is not None:
            prefix = tuple(prefix)
            pos = bisect.bisect_left(idx._sorted_keys, prefix)
        else:
            pos = 0
        buf: list[Row] = []
        while pos < len(idx._sorted_keys):
            key = idx._sorted_keys[pos]
            if prefix is not None and key[: len(prefix)] != prefix:
                break
            pos += 1
            for rowid in idx._hash.get(key, ()):
                buf.append(dict(self._rows[rowid]))
                if len(buf) >= batch:
                    if gauge is not None:
                        gauge.add(len(buf))
                    for row in buf:
                        yield row
                    if gauge is not None:
                        gauge.sub(len(buf))
                    buf = []
        if buf:
            if gauge is not None:
                gauge.add(len(buf))
            for row in buf:
                yield row
            if gauge is not None:
                gauge.sub(len(buf))

    def bulk_load(self, rows: Iterable[Row]) -> int:
        """Insert many rows at once, rebuilding indexes with one sort.

        Row-at-a-time :meth:`insert` pays one ``bisect.insort`` per new
        index key — O(n) list movement each, O(n^2) for a load — which
        caps the table around 10^5 rows.  Bulk load stages every row,
        appends to the index hash buckets, then re-sorts each key list
        once: O(n log n) total, the difference between minutes and
        milliseconds at 10^6-10^7 rows.  Schema and duplicate-key checks
        are identical to :meth:`insert`; on error nothing is applied.
        """
        staged: list[Row] = []
        seen_pks: set = set()
        for row in rows:
            missing = set(self.columns) - set(row)
            extra = set(row) - set(self.columns)
            if missing or extra:
                raise ValueError(
                    f"table {self.name}: bad columns (missing={sorted(missing)}, "
                    f"extra={sorted(extra)})"
                )
            pk = row[self.primary_key]
            if pk in self._pk or pk in seen_pks:
                raise ValueError(f"table {self.name}: duplicate key {pk!r}")
            seen_pks.add(pk)
            staged.append(dict(row))
        for row in staged:
            rowid = self._next_rowid
            self._next_rowid += 1
            self._rows[rowid] = row
            self._pk[row[self.primary_key]] = rowid
            for idx in self._indexes.values():
                key = idx.key_of(row)
                bucket = idx._hash.get(key)
                if bucket is None:
                    idx._hash[key] = [rowid]
                else:
                    bucket.append(rowid)
        for idx in self._indexes.values():
            idx._sorted_keys = sorted(idx._hash)
        return len(staged)

    def scan(self, where: Optional[Callable[[Row], bool]] = None) -> Iterator[Row]:
        """Full table scan (what the un-indexed TSM DB forces you into)."""
        for row in self._rows.values():
            if where is None or where(row):
                yield dict(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"<Table {self.name} rows={len(self)} indexes={sorted(self._indexes)}>"
