"""The tape index database and the TSM->MySQL export job.

Schema (one row per migrated object)::

    objects(object_id PK, path, filespace, volume, seq, nbytes, inserted_at)
      index by_path    (filespace, path)      -- file -> location lookup
      index by_volume  (volume, seq)          -- tape-order scans
      index by_object  (object_id)            -- synchronous delete joins

PFTool's recall ordering (§4.2.5) is :meth:`TapeIndexDB.locate_many` +
:meth:`TapeIndexDB.sort_tape_order`; the synchronous deleter (§4.2.6)
uses :meth:`TapeIndexDB.object_for_path`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from repro.sim import Environment, Event
from repro.tapedb.engine import Table

__all__ = ["TapeIndexDB", "TapeLocation", "TsmDbExporter"]


@dataclass(frozen=True)
class TapeLocation:
    """Where one object lives on tape."""

    object_id: int
    path: str
    filespace: str
    volume: str
    seq: int
    nbytes: int


class TapeIndexDB:
    """Indexed mirror of TSM's object->tape mapping.

    Query times are modelled as a fixed per-query latency (an indexed
    MySQL point query on the archive's admin box: ~1 ms) so experiments
    account for lookup storms without a network round-trip model.
    """

    def __init__(self, env: Environment, query_latency: float = 0.001) -> None:
        self.env = env
        self.query_latency = query_latency
        self.table = Table(
            "objects",
            columns=(
                "object_id",
                "path",
                "filespace",
                "volume",
                "seq",
                "nbytes",
                "inserted_at",
            ),
            primary_key="object_id",
        )
        self.table.create_index("by_path", ("filespace", "path"))
        self.table.create_index("by_volume", ("volume", "seq"))
        self.queries = 0

    # -- load side -------------------------------------------------------
    def upsert(
        self,
        object_id: int,
        path: str,
        filespace: str,
        volume: str,
        seq: int,
        nbytes: int,
    ) -> None:
        self.table.delete(object_id)
        self.table.insert(
            {
                "object_id": object_id,
                "path": path,
                "filespace": filespace,
                "volume": volume,
                "seq": seq,
                "nbytes": nbytes,
                "inserted_at": self.env.now,
            }
        )

    def bulk_load(self, rows: Iterable[dict]) -> int:
        """Load many ``upsert``-shaped rows at once (one index sort).

        *rows* carry the :meth:`upsert` fields (``object_id``, ``path``,
        ``filespace``, ``volume``, ``seq``, ``nbytes``); ``inserted_at``
        is stamped here.  Object ids must be new — bulk load is for
        seeding/import, not for refresh.
        """
        now = self.env.now
        return self.table.bulk_load(
            {**row, "inserted_at": now} for row in rows
        )

    def remove(self, object_id: int) -> bool:
        return self.table.delete(object_id)

    def __len__(self) -> int:
        return len(self.table)

    # -- instant (logic-only) queries ------------------------------------
    def location_of(self, object_id: int) -> Optional[TapeLocation]:
        row = self.table.get(object_id)
        return self._row_to_loc(row) if row else None

    def object_for_path(self, filespace: str, path: str) -> Optional[TapeLocation]:
        rows = self.table.select_eq("by_path", filespace, path)
        return self._row_to_loc(rows[-1]) if rows else None

    def objects_on_volume(self, volume: str) -> list[TapeLocation]:
        return list(self.iter_objects_on_volume(volume))

    def iter_objects_on_volume(
        self, volume: str, batch: int = 256, gauge=None
    ) -> Iterator[TapeLocation]:
        """Stream one volume's objects in seq order (bounded memory)."""
        for row in self.table.iter_index(
            "by_volume", prefix=(volume,), batch=batch, gauge=gauge
        ):
            yield self._row_to_loc(row)

    def iter_recall_order(
        self, batch: int = 256, gauge=None
    ) -> Iterator[TapeLocation]:
        """Stream the *whole* index in (volume, seq) order.

        The streaming recall sort: identical global order to flattening
        :meth:`sort_tape_order` over every location (volumes ascending,
        seq ascending within a volume, insertion order on seq ties), but
        at most *batch* row copies are live at any moment instead of the
        full result — a caller that stops after the first tape has paid
        for one batch, not the population.
        """
        for row in self.table.iter_index("by_volume", batch=batch, gauge=gauge):
            yield self._row_to_loc(row)

    # -- timed queries (what PFTool issues) --------------------------------
    def locate_many(
        self, filespace: str, paths: Sequence[str]
    ) -> Event:
        """Batch lookup; event fires with {path: TapeLocation | None}.

        Charged as one round-trip plus a per-row increment — matching an
        indexed ``WHERE path IN (...)`` query.
        """
        done = self.env.event()

        def _proc():
            self.queries += 1
            yield self.env.timeout(
                self.query_latency + 1e-5 * len(paths)
            )
            out = {p: self.object_for_path(filespace, p) for p in paths}
            done.succeed(out)

        self.env.process(_proc(), name="tapedb-locate")
        return done

    @staticmethod
    def sort_tape_order(
        locations: Iterable[TapeLocation],
    ) -> dict[str, list[TapeLocation]]:
        """Group by volume, ascending seq within each volume (§4.1.2's
        TapeCQ arrangement)."""
        by_vol: dict[str, list[TapeLocation]] = {}
        for loc in locations:
            by_vol.setdefault(loc.volume, []).append(loc)
        for vol in by_vol:
            by_vol[vol].sort(key=lambda l: l.seq)
        return dict(sorted(by_vol.items()))

    @staticmethod
    def _row_to_loc(row: dict) -> TapeLocation:
        return TapeLocation(
            object_id=row["object_id"],
            path=row["path"],
            filespace=row["filespace"],
            volume=row["volume"],
            seq=row["seq"],
            nbytes=row["nbytes"],
        )


class TsmDbExporter:
    """The periodic export from the TSM server's DB into the index DB.

    TSM can't serve these queries itself (proprietary DB, no custom
    indexes), so the site exports.  ``run_once`` exports all objects the
    server knows about; ``run_periodic`` keeps doing so on an interval,
    which is how staleness enters (a just-migrated file may not be
    queryable until the next export — callers fall back to TSM itself).
    """

    def __init__(
        self,
        env: Environment,
        tsm_server: "object",
        db: TapeIndexDB,
        row_export_rate: float = 50_000.0,
    ) -> None:
        self.env = env
        self.tsm = tsm_server
        self.db = db
        self.row_export_rate = row_export_rate
        self.exports = 0

    def run_once(self) -> Event:
        """Export a snapshot; event fires with the number of rows."""
        done = self.env.event()

        def _proc():
            rows = list(self.tsm.export_rows())
            yield self.env.timeout(len(rows) / self.row_export_rate)
            for r in rows:
                self.db.upsert(**r)
            self.exports += 1
            done.succeed(len(rows))

        self.env.process(_proc(), name="tsm-export")
        return done

    def run_periodic(self, interval: float) -> None:
        """Fire-and-forget periodic export loop."""

        def _loop():
            while True:
                yield self.run_once()
                yield self.env.timeout(interval)

        self.env.process(_loop(), name="tsm-export-loop")
