"""Streaming primitives for the metadata plane.

The monolithic tape index answered every ordered query by materialising
the full result (``select_prefix`` copies each row, recall sort builds
the whole dict of sorted lists).  At 10^7-10^8 files that is the
catalog-becomes-the-bottleneck failure mode CASTOR's evolution documents,
so the scaled metadata plane streams instead:

* :class:`BufferGauge` — counts entries held live by open cursors and
  records the high-water mark, which is how the bounded-memory claim is
  *asserted*, not assumed (tests wrap cursors in a gauge and check
  ``peak <= shards * batch``);
* :func:`merge_locations` — heapq k-way merge of per-shard cursors that
  are already sorted by ``(volume, seq, gseq)``, yielding the global
  recall order while holding at most one batch per shard.

Cursors themselves live on :meth:`repro.tapedb.engine.Table.iter_index`;
this module only holds the pieces shared between the monolithic and
sharded indexes.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable, Iterator, Optional

__all__ = ["BufferGauge", "merge_sorted"]


class BufferGauge:
    """Live-entry accounting for streaming cursors.

    Cursors ``add`` a batch when they materialise it and ``sub`` it when
    the batch is fully consumed, so ``live`` is the number of row copies
    currently held across every cursor sharing the gauge and ``peak`` is
    the high-water mark a bounded-memory proof asserts against.
    """

    __slots__ = ("live", "peak", "total")

    def __init__(self) -> None:
        self.live = 0
        self.peak = 0
        #: entries ever buffered (batch refill volume, for rate metrics)
        self.total = 0

    def add(self, n: int) -> None:
        self.live += n
        self.total += n
        if self.live > self.peak:
            self.peak = self.live

    def sub(self, n: int) -> None:
        self.live -= n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<BufferGauge live={self.live} peak={self.peak}>"


def merge_sorted(
    iterables: Iterable[Iterator],
    key: Optional[Callable] = None,
) -> Iterator:
    """K-way merge of already-sorted iterators (thin heapq.merge wrapper).

    ``heapq.merge`` is lazy and stable: it holds exactly one element per
    input plus whatever batch each input generator has materialised, so a
    merge over shard cursors with batch size *b* never holds more than
    ``shards * b`` entries — the invariant :class:`BufferGauge` checks.
    """
    return heapq.merge(*iterables, key=key)
