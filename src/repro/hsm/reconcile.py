"""Reconciliation: the slow orphan sweep the paper engineered away.

When a migrated file is deleted (or overwritten) on the file system, its
tape object becomes an orphan.  The traditional cleanup is a *reconcile*:
walk the whole namespace, stat each file, query the backing store for
each of them, and delete tape objects with no live owner.  The paper
(§4.2.6) measures this as "unacceptable" at tens of millions of files —
our E3 benchmark quantifies it against the synchronous deleter.

:meth:`ReconcileAgent.targeted` is the crash-recovery counterpart: when
the two-phase deleter dies mid-intent, the journal names *exactly* the
files whose tape side is in doubt, so recovery pays one indexed lookup
per dangling intent instead of the full walk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.pfs import GpfsFileSystem
from repro.sim import Environment, Event
from repro.tsm import TsmServer

__all__ = ["ReconcileAgent", "ReconcileReport"]


@dataclass
class ReconcileReport:
    """Outcome of one reconcile pass."""

    files_walked: int = 0
    tsm_objects_checked: int = 0
    orphans_found: int = 0
    orphans_deleted: int = 0
    duration: float = 0.0


class ReconcileAgent:
    """Tree-walk reconciliation between GPFS and TSM.

    Parameters
    ----------
    per_file_cost:
        Simulated cost of stat'ing one file system entry during the walk
        (a directory-tree walk does not enjoy GPFS's fast inode scan —
        the paper's point).
    per_query_cost:
        Simulated cost of one TSM DB lookup (unindexed proprietary DB).
    """

    def __init__(
        self,
        env: Environment,
        fs: GpfsFileSystem,
        tsm: TsmServer,
        filespace: str = "archive",
        per_file_cost: float = 0.002,
        per_query_cost: float = 0.004,
    ) -> None:
        self.env = env
        self.fs = fs
        self.tsm = tsm
        self.filespace = filespace
        self.per_file_cost = per_file_cost
        self.per_query_cost = per_query_cost

    def run(self, delete_orphans: bool = True) -> Event:
        """One full reconcile pass; fires with a :class:`ReconcileReport`."""
        done = self.env.event()

        def _proc():
            t0 = self.env.now
            report = ReconcileReport()
            # Phase 1: walk the live namespace (slow, per-entry cost).
            live: dict[str, int] = {}
            batch = 0
            for path, inode in self.fs.walk("/"):
                report.files_walked += 1
                batch += 1
                if batch >= 1000:  # charge time in chunks to bound events
                    yield self.env.timeout(self.per_file_cost * batch)
                    batch = 0
                if inode.is_file and inode.tsm_object_id is not None:
                    live[path] = inode.tsm_object_id
            if batch:
                yield self.env.timeout(self.per_file_cost * batch)
            # Phase 2: compare every TSM object against the live set.
            orphan_ids: list[int] = []
            batch = 0
            for row in self.tsm.objects.scan(
                lambda r: r["filespace"] == self.filespace and r["active"]
            ):
                report.tsm_objects_checked += 1
                batch += 1
                if batch >= 1000:
                    yield self.env.timeout(self.per_query_cost * batch)
                    batch = 0
                if live.get(row["path"]) != row["object_id"]:
                    orphan_ids.append(row["object_id"])
            if batch:
                yield self.env.timeout(self.per_query_cost * batch)
            report.orphans_found = len(orphan_ids)
            # Phase 3: delete the orphans.
            if delete_orphans:
                for oid in orphan_ids:
                    ok = yield self.tsm.delete_object(oid)
                    if ok:
                        report.orphans_deleted += 1
            report.duration = self.env.now - t0
            done.succeed(report)

        self.env.process(_proc(), name="reconcile")
        return done

    def targeted(
        self,
        items: Sequence[tuple[str, Optional[int]]],
        tapedb=None,
        delete_orphans: bool = True,
    ) -> Event:
        """Reconcile only *items*: (original_path, object_id-or-None)
        pairs whose file-system side is known deleted (dangling delete
        intents).  Fires with a :class:`ReconcileReport` whose cost is
        O(len(items)) lookups, not O(all files).
        """
        done = self.env.event()
        items = list(items)

        def _proc():
            t0 = self.env.now
            report = ReconcileReport()
            for path, oid in items:
                if oid is None and tapedb is not None and path:
                    # one indexed tape-DB lookup for this file alone
                    yield self.env.timeout(self.per_query_cost)
                    report.tsm_objects_checked += 1
                    loc = tapedb.object_for_path(self.filespace, path)
                    oid = loc.object_id if loc else None
                if oid is None:
                    continue
                yield self.env.timeout(self.per_query_cost)
                report.tsm_objects_checked += 1
                if self.tsm.locate(oid) is None:
                    continue  # tape side already gone
                report.orphans_found += 1
                if delete_orphans:
                    ok = yield self.tsm.delete_object(oid)
                    if ok:
                        report.orphans_deleted += 1
                    if tapedb is not None:
                        tapedb.remove(oid)
            report.duration = self.env.now - t0
            done.succeed(report)

        self.env.process(_proc(), name="reconcile-targeted")
        return done
