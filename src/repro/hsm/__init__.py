"""HSM: the space-management glue between GPFS and TSM.

* :class:`HsmManager` — premigrate/migrate files to tape (optionally
  aggregating small files), punch stubs, and serve recalls through
  per-node **recall daemons** with pluggable request routing:
  ``naive`` routing reproduces the §6.2 thrashing (no tape affinity
  across nodes -> label re-verification storms); ``sticky`` routes all
  requests for one volume to one node (the paper's proposed fix).
* :class:`ReconcileAgent` — the classic tree-walk reconciliation between
  file system and tape the paper works hard to avoid (§4.2.6): needed as
  the baseline for experiment E3.
"""

from repro.hsm.manager import HsmManager, RecallRequest
from repro.hsm.reconcile import ReconcileAgent, ReconcileReport

__all__ = ["HsmManager", "RecallRequest", "ReconcileAgent", "ReconcileReport"]
