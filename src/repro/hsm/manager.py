"""The HSM manager: migration, stubs, and per-node recall daemons.

Migration (LAN-free) runs the GPFS read and the tape write as concurrent
flows on the fabric — both cross the migrating node's HBA, so the fluid
model naturally reproduces the pipeline (tape rate dominates, but HBA
contention shows up when one node drives several drives at once).

Recall routing policies:

``naive``
    Each request goes to the next node round-robin, with no awareness of
    which tape it touches — TSM HSM's behaviour per §6.2.  Consecutive
    requests for one tape land on different nodes and every handoff
    rewinds + re-verifies the label.
``sticky``
    All requests for a volume go to one (hashed) node, eliminating
    handoffs — the fix the paper asks IBM for.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.faults import CrashFault
from repro.pfs import GpfsFileSystem, HsmState
from repro.recovery.journal import JobJournal
from repro.sim import AllOf, Environment, Event, Process, SimulationError, Store
from repro.tsm import StoredObject, TsmServer

__all__ = ["HsmManager", "RecallRequest"]


@dataclass
class RecallRequest:
    """One queued file recall."""

    path: str
    object_id: int
    volume: str
    seq: int
    nbytes: int
    done: Event = field(repr=False, default=None)  # type: ignore[assignment]


class HsmManager:
    """Connects one GPFS file system to one TSM server.

    Parameters
    ----------
    env, fs, tsm:
        The environment and the two COTS halves.
    nodes:
        Cluster nodes that run HSM daemons (the FTA cluster).
    filespace:
        TSM filespace name for this file system.
    recall_routing:
        ``"naive"`` or ``"sticky"`` (see module docstring).
    aggregate_threshold:
        Files smaller than this are bundled into aggregates during
        migration when ``aggregate=True`` (0 disables).
    journal:
        Optional :class:`~repro.recovery.journal.JobJournal`; every
        migration batch takes a lease before storing to tape so a crash
        between the TSM store and the stub punch leaves a dangling lease
        naming exactly the paths whose objects may need adoption.
    """

    def __init__(
        self,
        env: Environment,
        fs: GpfsFileSystem,
        tsm: TsmServer,
        nodes: Sequence[str],
        filespace: str = "archive",
        recall_routing: str = "naive",
        aggregate_threshold: int = 256 * 1024 * 1024,
        journal: Optional[JobJournal] = None,
    ) -> None:
        if not nodes:
            raise SimulationError("HSM needs at least one daemon node")
        if recall_routing not in ("naive", "sticky"):
            raise SimulationError(f"unknown recall routing {recall_routing!r}")
        self.env = env
        self.fs = fs
        self.tsm = tsm
        self.nodes = list(nodes)
        self.filespace = filespace
        self.recall_routing = recall_routing
        self.aggregate_threshold = aggregate_threshold
        self.sessions = {n: tsm.open_session(n, lan_free=True) for n in self.nodes}
        self._rr = itertools.count(0)
        #: per-node recall queues + daemons
        self._queues: dict[str, Store] = {}
        for n in self.nodes:
            q = Store(env)
            self._queues[n] = q
            env.process(self._recall_daemon(n, q), name=f"hsm-recalld-{n}",
                        daemon=True)
        # stats
        self.files_migrated = 0
        self.bytes_migrated = 0.0
        self.files_recalled = 0
        self.bytes_recalled = 0.0
        #: durable lease log (see class docstring)
        self.journal = journal if journal is not None else JobJournal(env)
        #: in-flight migration processes, for crash injection
        self._active_migrations: list[Process] = []
        # register as the FS's DMAPI recall handler
        fs.recall_handler = self._dmapi_recall

    # ------------------------------------------------------------------
    # crash model
    # ------------------------------------------------------------------
    def crash(self, cause=None) -> None:
        """Kill every in-flight migration batch (the migrator host dies).

        The TSM server keeps running: stores already submitted complete
        *server-side*, producing tape objects whose receipts were never
        applied — the exact orphan inconsistency the dangling lease lets
        recovery adopt.  Recall daemons stay up (the node is modelled as
        losing only its migration work).
        """
        if not isinstance(cause, BaseException):
            cause = CrashFault(f"hsm migrator crashed at t={self.env.now:.1f}")
        for proc in self._active_migrations:
            proc.kill(cause)
        self._active_migrations = []

    # ------------------------------------------------------------------
    # migration
    # ------------------------------------------------------------------
    def migrate(
        self,
        node: str,
        paths: Sequence[str],
        aggregate: bool = False,
        punch: bool = True,
        collocation_group: Optional[str] = None,
    ) -> Event:
        """Migrate *paths* from *node* to tape; fires with receipts.

        One file = one TSM transaction unless *aggregate* bundles the
        small ones.  With ``punch=False`` files end up PREMIGRATED
        (data on both tiers) instead of stubs.
        """
        if node not in self.sessions:
            raise SimulationError(f"{node!r} runs no HSM daemon")
        done = self.env.event()
        paths = list(paths)

        def _proc():
            items: list[tuple[str, int]] = []
            for p in paths:
                inode = self.fs.lookup(p)
                if not inode.is_file:
                    raise SimulationError(f"cannot migrate non-file {p!r}")
                if inode.is_stub:
                    continue  # already migrated
                items.append((p, inode.size))
            if not items:
                done.succeed([])
                return
            session = self.sessions[node]
            group = collocation_group or self.filespace
            tr = self.env.trace
            span = tr.begin(
                "hsm:migrate", tid=node, cat="hsm",
                args={"files": len(items),
                      "nbytes": int(sum(n for _, n in items))},
            ) if tr.enabled else None

            small = [(p, n) for p, n in items if aggregate and n < self.aggregate_threshold]
            large = [(p, n) for p, n in items if not aggregate or n >= self.aggregate_threshold]

            # Lease BEFORE the first store: from here until lease_done the
            # journal names every path whose tape object may lack receipts.
            lease_id = self.journal.migration_lease(
                node, [p for p, _ in items], punch
            )
            # GPFS-side reads race the tape writes on the fabric (pipeline).
            read_side = self.env.process(
                self._read_side(node, [p for p, _ in items]),
                name=f"hsm-readside-{node}",
            )
            receipts: list[StoredObject] = []
            if large:
                got = yield session.store_many(self.filespace, large, group)
                receipts.extend(got)
            if small:
                got = yield session.store_aggregate(self.filespace, small, group)
                receipts.extend(got)
            yield read_side
            for r in receipts:
                self.fs.mark_premigrated(r.path, r.object_id)
                if punch:
                    self.fs.punch_stub(r.path)
                self.files_migrated += 1
                self.bytes_migrated += r.nbytes
            self.journal.migration_done(lease_id)
            if span is not None:
                span.end()
                tr.metrics.counter("hsm.files_migrated").inc(len(receipts))
            done.succeed(receipts)

        proc = self.env.process(_proc(), name=f"hsm-migrate-{node}")
        self._active_migrations = [
            p for p in self._active_migrations if p.is_alive
        ]
        self._active_migrations.append(proc)
        return done

    def _read_side(self, node: str, paths: list[str]):
        """Stream each file off GPFS disk to the migrating node."""
        for p in paths:
            yield self.fs.read_file(node, p)

    def punch_until(
        self, pool: str, target_occupancy: float
    ) -> list[str]:
        """Instant space recovery under pool pressure.

        PREMIGRATED files already have a safe tape copy, so punching
        them to stubs frees disk immediately without any data movement —
        the reason HSM sites keep a premigrated buffer.  Punches
        least-recently-accessed first until the pool occupancy is at or
        below *target_occupancy*; returns the punched paths.
        """
        pool_obj = self.fs.pool(pool)
        candidates = sorted(
            (
                (inode.atime, path, inode)
                for path, inode in self.fs.namespace.iter_inodes()
                if inode.is_file
                and inode.pool == pool
                and inode.hsm_state is HsmState.PREMIGRATED
            ),
        )
        punched = []
        for _, path, inode in candidates:
            if pool_obj.occupancy <= target_occupancy:
                break
            self.fs.punch_stub(path)
            punched.append(path)
        return punched

    # ------------------------------------------------------------------
    # recall
    # ------------------------------------------------------------------
    def _route_node(self, volume: str) -> str:
        if self.recall_routing == "sticky":
            return self.nodes[hash(volume) % len(self.nodes)]
        return self.nodes[next(self._rr) % len(self.nodes)]

    def recall(self, path: str) -> Event:
        """Queue a recall for *path*; fires when data is back on disk."""
        inode = self.fs.lookup(path)
        if inode.hsm_state is not HsmState.MIGRATED:
            ev = self.env.event()
            ev.succeed(inode)  # nothing to do
            return ev
        if inode.tsm_object_id is None:
            raise SimulationError(f"stub {path!r} has no TSM object id")
        obj = self.tsm.locate(inode.tsm_object_id)
        if obj is None:
            raise SimulationError(f"TSM lost object {inode.tsm_object_id} ({path!r})")
        done = self.env.event()
        req = RecallRequest(path, obj.object_id, obj.volume, obj.seq, obj.nbytes, done)
        node = self._route_node(obj.volume)
        self._queues[node].put(req)
        return done

    def recall_many(
        self,
        paths: Sequence[str],
        tape_order: bool = False,
        tapedb=None,
    ) -> Event:
        """Recall several files; fires when all are resident.

        With *tape_order*, requests are enqueued in global (volume, seq)
        order — a k-way merge of per-volume sorted runs, the same
        arrangement PFTool's TapeCQ uses (§4.1.2) — so each daemon
        drains its tape sequentially instead of seeking.  *tapedb* (a
        :class:`~repro.tapedb.TapeIndexDB` or
        :class:`~repro.tapedb.ShardedTapeIndex`) serves the location
        lookups through its hot-entry cache; stubs the index does not
        know yet (export staleness) fall back to TSM's own catalog, and
        non-migrated files sort first (they complete instantly anyway).
        """
        if not tape_order:
            events = [self.recall(p) for p in paths]
            return AllOf(self.env, events)
        runs: dict[str, list[tuple[int, int, str]]] = {}
        for k, p in enumerate(paths):
            inode = self.fs.lookup(p)
            vol, seq = "", 0
            if (
                inode.hsm_state is HsmState.MIGRATED
                and inode.tsm_object_id is not None
            ):
                loc = (
                    tapedb.object_for_path(self.filespace, p)
                    if tapedb is not None
                    else None
                )
                if loc is not None and loc.object_id == inode.tsm_object_id:
                    vol, seq = loc.volume, loc.seq
                else:
                    obj = self.tsm.locate(inode.tsm_object_id)
                    if obj is not None:
                        vol, seq = obj.volume, obj.seq
            runs.setdefault(vol, []).append((seq, k, p))
        merged = heapq.merge(
            *(
                [(vol, seq, k, p) for seq, k, p in sorted(run)]
                for vol, run in sorted(runs.items())
            )
        )
        events = [self.recall(p) for _, _, _, p in merged]
        return AllOf(self.env, events)

    def _dmapi_recall(self, path: str, inode, client: str) -> Event:
        """FS read of a stub lands here (DMAPI read event)."""
        return self.recall(path)

    def _recall_daemon(self, node: str, queue: Store):
        session = self.sessions[node]
        while True:
            req: RecallRequest = yield queue.get()
            tr = self.env.trace
            span = tr.begin(
                "hsm:recall", tid=node, cat="hsm",
                args={"path": req.path, "volume": req.volume,
                      "seq": req.seq, "nbytes": req.nbytes},
            ) if tr.enabled else None
            try:
                yield self.tsm.retrieve_objects(session, [req.object_id])
                self.fs.restore_data(req.path)
                # Write the recalled data back to GPFS disk.
                inode = self.fs.lookup(req.path)
                self.files_recalled += 1
                self.bytes_recalled += req.nbytes
                if span is not None:
                    span.end()
                    tr.metrics.counter("hsm.files_recalled").inc()
                req.done.succeed(inode)
            except Exception as exc:  # surface to the waiter, keep daemon up
                if not req.done.triggered:
                    req.done.fail(exc)

    # ------------------------------------------------------------------
    @property
    def queue_depths(self) -> dict[str, int]:
        return {n: len(q.items) for n, q in self._queues.items()}

    def __repr__(self) -> str:
        return (
            f"<HsmManager nodes={len(self.nodes)} routing={self.recall_routing} "
            f"migrated={self.files_migrated} recalled={self.files_recalled}>"
        )
