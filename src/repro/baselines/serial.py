"""The non-parallel archive comparator (§5.2's ~70 MB/s).

A classic single-node archiver: one mover machine with a GigE-class
NIC, copying one file at a time with store-and-forward (read the file,
then write it — no read/write overlap, no parallel streams).  On a
125 MB/s NIC, store-and-forward alone caps throughput at ~62 MB/s,
which is exactly the class of system the paper benchmarks its ~575 MB/s
average against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pfs import GpfsFileSystem
from repro.sim import Environment, Event

__all__ = ["SerialArchiver", "SerialResult"]

MB = 1_000_000


@dataclass
class SerialResult:
    files: int = 0
    bytes: int = 0
    duration: float = 0.0

    @property
    def rate(self) -> float:
        return self.bytes / self.duration if self.duration > 0 else 0.0


class SerialArchiver:
    """One mover node, one stream, no overlap.

    Parameters
    ----------
    mover_node:
        Fabric node the mover runs on.  Attach it with a GigE-class link
        (the default topology helper does this) — the node's NIC is the
        bottleneck, as in the real systems of that era.
    """

    def __init__(
        self,
        env: Environment,
        src_fs: GpfsFileSystem,
        dst_fs: GpfsFileSystem,
        mover_node: str,
        per_file_overhead: float = 0.05,
    ) -> None:
        self.env = env
        self.src_fs = src_fs
        self.dst_fs = dst_fs
        self.mover_node = mover_node
        self.per_file_overhead = per_file_overhead

    @staticmethod
    def attach_mover(system, nic_bw: float = 125 * MB, name: str = "serial-mover") -> str:
        """Add the mover node to an archive site's fabric (GigE NIC)."""
        fab = system.topology.fabric
        fab.add_link("archive-lan", name, capacity=nic_bw, latency=100e-6,
                     name=f"nic-{name}")
        return name

    def archive_tree(self, src_root: str, dst_root: str) -> Event:
        """Walk and copy sequentially; fires with a :class:`SerialResult`."""
        done = self.env.event()

        def _proc():
            t0 = self.env.now
            result = SerialResult()
            self.dst_fs.mkdir(dst_root, parents=True)
            for path, inode in list(self.src_fs.walk(src_root)):
                rel = path[len(src_root):].lstrip("/")
                dst = f"{dst_root}/{rel}" if rel else dst_root
                if inode.is_dir:
                    if rel:
                        self.dst_fs.mkdir(dst, parents=True)
                    continue
                yield self.env.timeout(self.per_file_overhead)
                # store... (read fully to the mover)
                _, token = yield self.src_fs.read_file(self.mover_node, path)
                # ...and forward (write out of the mover)
                yield self.dst_fs.write_file(
                    self.mover_node, dst, inode.size, token=token
                )
                result.files += 1
                result.bytes += inode.size
            result.duration = self.env.now - t0
            done.succeed(result)

        self.env.process(_proc(), name="serial-archiver")
        return done
