"""Baselines the paper compares against (implicitly or explicitly).

* :class:`SerialArchiver` — the "non-parallel archive storage system
  with about 70 MB/sec archival bandwidth" of §5.2: one mover node with
  a single GigE-class NIC, store-and-forward, one file at a time.
* :class:`GpfsNativeMigrator` — GPFS's own parallel migration execution
  (§4.2.4's foil): no size balancing, and processes may all land on one
  machine.
* the reconcile-based deleter baseline lives in
  :class:`repro.hsm.ReconcileAgent` (§4.2.6's foil).
"""

from repro.baselines.native_migrator import GpfsNativeMigrator
from repro.baselines.serial import SerialArchiver

__all__ = ["GpfsNativeMigrator", "SerialArchiver"]
