"""GPFS's native migration execution, as §4.2.4 criticises it.

Two deficiencies relative to the balanced migrator:

* candidates are split by **file count in scan order**, not by bytes —
  "one process may be responsible for all of the large files in the
  list while another has nothing but small files";
* the migration processes may all be created **on a single machine
  despite multiple machines being available**.

``spread=False`` reproduces the single-machine failure mode;
``spread=True`` spreads by round-robin count (still size-oblivious).
"""

from __future__ import annotations

from typing import Sequence

from repro.archive.migrator import MigrationReport
from repro.hsm import HsmManager
from repro.pfs.policy import PolicyHit
from repro.sim import AllOf, Environment, Event

__all__ = ["GpfsNativeMigrator"]


class GpfsNativeMigrator:
    """Size-oblivious migration driver (the A3 baseline)."""

    def __init__(self, env: Environment, hsm: HsmManager, spread: bool = True):
        self.env = env
        self.hsm = hsm
        self.spread = spread

    @staticmethod
    def partition_round_robin(
        hits: Sequence[PolicyHit], nodes: Sequence[str]
    ) -> dict[str, list[PolicyHit]]:
        """Count-balanced, size-oblivious split in scan (inode) order."""
        buckets: dict[str, list[PolicyHit]] = {n: [] for n in nodes}
        for i, hit in enumerate(hits):
            buckets[nodes[i % len(nodes)]].append(hit)
        return buckets

    def migrate(
        self,
        hits: Sequence[PolicyHit],
        aggregate: bool = False,
        punch: bool = True,
    ) -> Event:
        done = self.env.event()
        hits = list(hits)
        nodes = list(self.hsm.nodes) if self.spread else [self.hsm.nodes[0]]

        def _proc():
            t0 = self.env.now
            report = MigrationReport()
            buckets = self.partition_round_robin(hits, nodes)
            report.assignment = {
                n: (len(b), sum(h.inode.size for h in b))
                for n, b in buckets.items()
            }
            watchers = []
            for node, bucket in buckets.items():
                if not bucket:
                    report.node_finish[node] = self.env.now
                    continue
                ev = self.hsm.migrate(
                    node, [h.path for h in bucket],
                    aggregate=aggregate, punch=punch,
                    collocation_group=node,
                )

                def _watch(ev=ev, node=node):
                    yield ev
                    report.node_finish[node] = self.env.now

                watchers.append(self.env.process(_watch()))
            if watchers:
                yield AllOf(self.env, watchers)
            report.files = len(hits)
            report.bytes = sum(h.inode.size for h in hits)
            report.duration = self.env.now - t0
            done.succeed(report)

        self.env.process(_proc(), name="native-migrate")
        return done
