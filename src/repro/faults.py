"""Deterministic fault injection for archive-system experiments.

The paper's operational story is that the archive keeps moving data when
parts misbehave: the WatchDog exists to kill stalled jobs (§4.1.1) and
restartable chunked transfers exist because multi-hour jobs fail.  This
module supplies the *misbehaving parts*: a :class:`FaultPlan` describes
seeded, reproducible faults — tape-drive failures, transient TSM
retrieve errors, FTA-node outages and transient filesystem errors — and
a :class:`FaultInjector` arms the plan against a running site by
scheduling drive fail/repair processes and installing fault hooks on the
TSM server and file systems.

Determinism: probabilistic faults draw from named
:class:`~repro.sim.rng.RandomStreams` streams derived from the plan's
seed, so a given (plan, workload) pair always injects the same faults at
the same points — a prerequisite for debugging recovery logic.

Failure taxonomy
----------------
Every injected (or hardware-model) error is classified into a short
``fault_class`` string used by PFTool's retry accounting:

==========  ===========================================================
class       meaning
==========  ===========================================================
``drive``   tape drive hardware fault (:class:`DriveFault`)
``tsm``     TSM server retrieve/store error (:class:`TsmFault`)
``fs``      transient parallel-file-system I/O error
``node``    FTA node outage window (data ops from that node fail)
``path``    namespace error (missing/changed file)
``io``      any other simulation-level I/O error
``crash``   a component process was killed mid-flight (:class:`CrashFault`)
==========  ===========================================================

Crash faults differ from every other class: they are not *raised* into a
retryable operation but delivered by :meth:`~repro.sim.Process.kill`,
tearing down a component's in-flight state.  Recovery is therefore not a
retry but a restart — see :mod:`repro.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence

from repro.sim import Environment, RandomStreams, SimulationError

__all__ = [
    "CatalogCorruption",
    "CatalogFault",
    "CrashFault",
    "DriveFault",
    "DriveOutage",
    "ErrorBurst",
    "FailureRecord",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "LibraryOutage",
    "NodeOutage",
    "NodeOutageFault",
    "PoolLoss",
    "ProcessCrash",
    "TransientIOFault",
    "TsmBrownout",
    "TsmFault",
    "classify_failure",
]


# ----------------------------------------------------------------------
# exception taxonomy
# ----------------------------------------------------------------------
class FaultError(SimulationError):
    """Base of all classified faults; ``fault_class`` feeds JobStats."""

    fault_class = "fault"


class DriveFault(FaultError):
    """A tape drive refused an operation because its hardware failed."""

    fault_class = "drive"


class TsmFault(FaultError):
    """The TSM server errored a retrieve/store transaction."""

    fault_class = "tsm"


class TransientIOFault(FaultError):
    """A transient parallel-file-system I/O error (EIO-style)."""

    fault_class = "fs"


class NodeOutageFault(FaultError):
    """An FTA node is down; data operations from it fail."""

    fault_class = "node"


class CrashFault(FaultError):
    """A component process was killed mid-flight (crash, not an error)."""

    fault_class = "crash"


class CatalogFault(FaultError):
    """The tape-index catalog disagrees with TSM (corrupt/missing rows)."""

    fault_class = "catalog"


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its retry-accounting class."""
    if isinstance(exc, FaultError):
        return exc.fault_class
    # PathError subclasses SimulationError in some layers; sniff by name to
    # avoid importing repro.pfs here (faults must stay dependency-light).
    if type(exc).__name__ == "PathError":
        return "path"
    if isinstance(exc, SimulationError):
        return "io"
    return "error"


@dataclass(frozen=True)
class FailureRecord:
    """One structured failure carried inside a rank's *Result message."""

    path: str
    fault_class: str
    detail: str = ""


# ----------------------------------------------------------------------
# plan entries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriveOutage:
    """Fail *drive* at sim time *at*; repair it *repair_after* seconds
    later (None = never repaired)."""

    at: float
    drive: str
    repair_after: Optional[float] = None


@dataclass(frozen=True)
class NodeOutage:
    """FTA node *node* is down during ``[start, start + duration)``."""

    node: str
    start: float
    duration: float

    def covers(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class ErrorBurst:
    """Probabilistic transient errors against one subsystem.

    Each eligible operation fails independently with probability *rate*
    until *max_failures* have been injected (bounding the burst keeps
    jobs completable) within the ``[start, until)`` window.
    """

    subsystem: str  # 'tsm' | 'fs'
    rate: float
    max_failures: int
    start: float = 0.0
    until: float = float("inf")
    #: restrict fs errors to one op kind ('read'/'write'/'create'/'stat')
    op: Optional[str] = None
    #: restrict fs errors to paths containing this substring
    path_contains: Optional[str] = None

    def active(self, now: float) -> bool:
        return self.start <= now < self.until


# ----------------------------------------------------------------------
# sustained-failure regimes (long-lived, composable windows)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LibraryOutage:
    """The whole tape library is offline during ``[start, start+duration)``.

    Every drive fails at *start* and the drives that this regime failed
    are repaired at the end (drives already failed by a
    :class:`DriveOutage` stay failed — the regimes compose).  Mounts in
    flight park on the idle-drive store until repair.
    """

    start: float
    duration: float

    def covers(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class PoolLoss:
    """Correlated FTA-node outage windows (a rack/PDU loss).

    Expands at arm time into one :class:`NodeOutage` per node; each
    node's start is offset by a seeded draw in ``[0, stagger)`` so the
    loss rolls through the pool the way a real PDU brownout does.
    """

    nodes: tuple[str, ...]
    start: float
    duration: float
    stagger: float = 0.0


@dataclass(frozen=True)
class TsmBrownout:
    """TSM session brownout during ``[start, start+duration)``.

    Metadata transaction latency is inflated by *latency_factor* for the
    window, and (optionally) retrieves fail intermittently at
    *error_rate* up to *max_errors* — the paper's "TSM session loss"
    presented as a sustained regime rather than a point burst.
    """

    start: float
    duration: float
    latency_factor: float = 8.0
    error_rate: float = 0.0
    max_errors: int = 0

    def covers(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class CatalogCorruption:
    """Seeded tapedb row damage at sim time *at*.

    *rows* rows get their volume/seq/nbytes scrambled in place and
    *drop* further rows are deleted outright.  TSM's own catalog is the
    ground truth and stays intact, so a reconcile (re-export) repairs
    the index — the D3 disaster drill exercises exactly that loop.
    """

    at: float
    rows: int = 8
    drop: int = 0


@dataclass(frozen=True)
class ProcessCrash:
    """Kill the component registered under *target* at sim time *at*.

    Targets are symbolic names ("manager", "worker", "deleter",
    "migrator", ...) bound late via
    :meth:`FaultInjector.register_crash_target`, because the component
    (e.g. a PFTool job) usually does not exist yet when the plan is armed.
    """

    at: float
    target: str


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class FaultPlan:
    """A reproducible schedule of faults (builder-style, chainable).

    >>> plan = (FaultPlan(seed=7)
    ...         .drive_failure(at=120.0, drive="drv00", repair_after=90.0)
    ...         .tsm_retrieve_errors(rate=0.3, max_failures=4)
    ...         .fs_errors(rate=0.1, max_failures=2, op="write"))
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.drive_outages: list[DriveOutage] = []
        self.node_outages: list[NodeOutage] = []
        self.tsm_bursts: list[ErrorBurst] = []
        self.fs_bursts: list[ErrorBurst] = []
        self.crashes: list[ProcessCrash] = []
        self.library_outages: list[LibraryOutage] = []
        self.pool_losses: list[PoolLoss] = []
        self.tsm_brownouts: list[TsmBrownout] = []
        self.corruptions: list[CatalogCorruption] = []

    def drive_failure(
        self, at: float, drive: str, repair_after: Optional[float] = None
    ) -> "FaultPlan":
        self.drive_outages.append(DriveOutage(at, drive, repair_after))
        return self

    def node_outage(self, node: str, start: float, duration: float) -> "FaultPlan":
        self.node_outages.append(NodeOutage(node, start, duration))
        return self

    def tsm_retrieve_errors(
        self,
        rate: float,
        max_failures: int,
        start: float = 0.0,
        until: float = float("inf"),
    ) -> "FaultPlan":
        self.tsm_bursts.append(ErrorBurst("tsm", rate, max_failures, start, until))
        return self

    def fs_errors(
        self,
        rate: float,
        max_failures: int,
        op: Optional[str] = None,
        path_contains: Optional[str] = None,
        start: float = 0.0,
        until: float = float("inf"),
    ) -> "FaultPlan":
        self.fs_bursts.append(
            ErrorBurst("fs", rate, max_failures, start, until, op, path_contains)
        )
        return self

    def crash(self, at: float, target: str) -> "FaultPlan":
        """Kill the component registered under *target* at sim time *at*."""
        self.crashes.append(ProcessCrash(at, target))
        return self

    # -- sustained regimes ----------------------------------------------
    def library_outage(self, start: float, duration: float) -> "FaultPlan":
        """Whole-library outage: every drive down for the window."""
        self.library_outages.append(LibraryOutage(start, duration))
        return self

    def pool_loss(
        self,
        nodes: Sequence[str],
        start: float,
        duration: float,
        stagger: float = 0.0,
    ) -> "FaultPlan":
        """Correlated FTA-node loss (expands to per-node outage windows)."""
        self.pool_losses.append(
            PoolLoss(tuple(nodes), start, duration, stagger)
        )
        return self

    def tsm_brownout(
        self,
        start: float,
        duration: float,
        latency_factor: float = 8.0,
        error_rate: float = 0.0,
        max_errors: int = 0,
    ) -> "FaultPlan":
        """TSM brownout: latency inflation + intermittent retrieve errors."""
        self.tsm_brownouts.append(
            TsmBrownout(start, duration, latency_factor, error_rate, max_errors)
        )
        return self

    def catalog_corruption(
        self, at: float, rows: int = 8, drop: int = 0
    ) -> "FaultPlan":
        """Damage *rows* tapedb rows (and delete *drop* more) at *at*."""
        self.corruptions.append(CatalogCorruption(at, rows, drop))
        return self

    @property
    def regimes(self) -> int:
        """Number of sustained-failure regimes in the plan."""
        return (
            len(self.library_outages) + len(self.pool_losses)
            + len(self.tsm_brownouts) + len(self.corruptions)
        )

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} drives={len(self.drive_outages)} "
            f"nodes={len(self.node_outages)} tsm={len(self.tsm_bursts)} "
            f"fs={len(self.fs_bursts)} crashes={len(self.crashes)} "
            f"regimes={self.regimes}>"
        )


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Arms a :class:`FaultPlan` against live subsystem instances.

    Parameters
    ----------
    env:
        Simulation environment.
    plan:
        The fault schedule.
    library:
        Tape library for drive fail/repair scheduling (optional).
    tsm:
        TSM server whose ``fault_hook`` receives retrieve checks
        (optional).
    filesystems:
        File systems whose ``fault_hook`` receives data-op checks; node
        outages are enforced here too, by client-node match (optional).
    tapedb:
        Tape-index DB for catalog-corruption regimes (optional).
    health:
        Optional :class:`repro.health.HealthView`; every injected fault
        is also reported to it (clients report errors to the health
        plane the way production error-rate detectors aggregate them).
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        library=None,
        tsm=None,
        filesystems: Sequence = (),
        tapedb=None,
        health=None,
    ) -> None:
        self.env = env
        self.plan = plan
        self.library = library
        self.tsm = tsm
        self.filesystems = list(filesystems)
        self.tapedb = tapedb
        self.health = health
        self.streams = RandomStreams(plan.seed)
        #: fault_class -> number of faults actually injected
        self.injected: dict[str, int] = {}
        self._burst_counts: dict[int, int] = {}
        #: late-bound crash targets: symbolic name -> kill callable
        self._crash_targets: dict[str, Callable[[CrashFault], None]] = {}
        #: crash entries that fired with no registered target at that time
        self.crash_misses: list[ProcessCrash] = []
        self._armed = False
        #: effective node-outage windows: explicit entries plus pool-loss
        #: regimes expanded (seeded stagger) at arm time
        self._node_windows: list[NodeOutage] = list(plan.node_outages)
        #: effective TSM bursts: explicit entries plus brownout error windows
        self._tsm_bursts: list[ErrorBurst] = list(plan.tsm_bursts)
        #: fs bursts, copied so arm() can rebase their windows
        self._fs_bursts: list[ErrorBurst] = list(plan.fs_bursts)
        #: Manager→rank messages delayed past a node-outage window
        self.delayed_messages = 0
        self._tsm_base_txn: Optional[float] = None
        self._brownout_depth = 0

    # -- crash targets -------------------------------------------------
    def register_crash_target(
        self, name: str, kill: Callable[[CrashFault], None]
    ) -> None:
        """Bind *name* to a kill callable (late: components come and go).

        Re-registering replaces the previous binding, so a harness can
        point "manager" at whichever job is currently running.
        """
        self._crash_targets[name] = kill

    def unregister_crash_target(self, name: str) -> None:
        self._crash_targets.pop(name, None)

    # -- bookkeeping ---------------------------------------------------
    def _record(self, fault_class: str, component: str = "") -> None:
        self.injected[fault_class] = self.injected.get(fault_class, 0) + 1
        if self.health is not None and component:
            self.health.on_fault(component, fault_class)

    def _burst_fires(self, burst: ErrorBurst, stream_name: str) -> bool:
        """Draw the burst's coin; honour its window and failure budget."""
        if not burst.active(self.env.now):
            return False
        key = id(burst)
        if self._burst_counts.get(key, 0) >= burst.max_failures:
            return False
        if self.streams.stream(stream_name).random() >= burst.rate:
            return False
        self._burst_counts[key] = self._burst_counts.get(key, 0) + 1
        return True

    # -- hooks ---------------------------------------------------------
    def _tsm_hook(self, op: str, object_id) -> Optional[BaseException]:
        if op != "retrieve":
            return None
        for burst in self._tsm_bursts:
            if self._burst_fires(burst, "faults.tsm"):
                self._record("tsm", component="tsm")
                return TsmFault(
                    f"injected retrieve error for object {object_id} "
                    f"at t={self.env.now:.1f}"
                )
        return None

    def _fs_hook(self, op: str, client: Optional[str], path: str):
        if client is not None:
            for outage in self._node_windows:
                if outage.node == client and outage.covers(self.env.now):
                    self._record("node", component=f"node:{client}")
                    return NodeOutageFault(
                        f"node {client} down (t={self.env.now:.1f}) for {op} {path}"
                    )
        for burst in self._fs_bursts:
            if burst.op is not None and burst.op != op:
                continue
            if burst.path_contains is not None and burst.path_contains not in path:
                continue
            if self._burst_fires(burst, "faults.fs"):
                self._record("fs")
                return TransientIOFault(
                    f"injected {op} error on {path} at t={self.env.now:.1f}"
                )
        return None

    # -- arming ----------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Install hooks and schedule drive fail/repair processes."""
        if self._armed:
            return self
        self._armed = True
        if self.library is not None:
            for outage in self.plan.drive_outages:
                self.env.process(
                    self._drive_proc(outage), name=f"fault-{outage.drive}"
                )
        if self.tsm is not None:
            self.tsm.fault_hook = _chain(self.tsm.fault_hook, self._tsm_hook)
        for fs in self.filesystems:
            fs.fault_hook = _chain(fs.fault_hook, self._fs_hook)
        for crash in self.plan.crashes:
            self.env.process(
                self._crash_proc(crash), name=f"crash-{crash.target}"
            )
        self._arm_regimes()
        # Plan times are relative to arming, and the regime *processes*
        # honour that via timeout(start) — but the passive window lists
        # are queried against absolute env.now by the hooks, so shift
        # them to arm time or a late-armed plan's windows never cover.
        base = self.env.now
        if base > 0.0:
            self._node_windows = [
                replace(w, start=w.start + base) for w in self._node_windows
            ]
            self._tsm_bursts = [
                replace(b, start=b.start + base, until=b.until + base)
                for b in self._tsm_bursts
            ]
            self._fs_bursts = [
                replace(b, start=b.start + base, until=b.until + base)
                for b in self._fs_bursts
            ]
        return self

    def _arm_regimes(self) -> None:
        # pool losses expand to per-node windows with a seeded stagger so
        # the loss rolls through the rack deterministically
        stagger_rng = self.streams.stream("faults.pool")
        for loss in self.plan.pool_losses:
            for node in loss.nodes:
                offset = (
                    float(stagger_rng.random() * loss.stagger)
                    if loss.stagger > 0 else 0.0
                )
                self._node_windows.append(
                    NodeOutage(node, loss.start + offset, loss.duration)
                )
            self.env.process(
                self._regime_proc("pool-loss", loss.start, loss.duration),
                name="regime-pool-loss",
            )
        if self.library is not None:
            for outage in self.plan.library_outages:
                self.env.process(
                    self._library_proc(outage), name="regime-library-outage"
                )
        if self.tsm is not None:
            for brown in self.plan.tsm_brownouts:
                if brown.error_rate > 0 and brown.max_errors > 0:
                    self._tsm_bursts.append(ErrorBurst(
                        "tsm", brown.error_rate, brown.max_errors,
                        brown.start, brown.start + brown.duration,
                    ))
                self.env.process(
                    self._brownout_proc(brown), name="regime-tsm-brownout"
                )
        if self.tapedb is not None:
            for spec in self.plan.corruptions:
                self.env.process(
                    self._corrupt_proc(spec), name="regime-catalog-corruption"
                )

    def _trace_regime(self, kind: str, phase: str, **extra) -> None:
        tr = self.env.trace
        if tr.enabled:
            tr.instant("fault:regime", tid="faults", cat="fault",
                       args={"kind": kind, "phase": phase, **extra})

    def _regime_proc(self, kind: str, start: float, duration: float):
        """Trace-stamp a regime window (begin/end instants)."""
        if start > 0:
            yield self.env.timeout(start)
        self._trace_regime(kind, "begin")
        yield self.env.timeout(duration)
        self._trace_regime(kind, "end")

    def _library_proc(self, outage: LibraryOutage):
        if outage.start > 0:
            yield self.env.timeout(outage.start)
        felled = [d.name for d in self.library.drives if not d.failed]
        for name in felled:
            self.library.fail_drive(name)
        self._record("library")
        self._trace_regime("library-outage", "begin", drives=len(felled))
        yield self.env.timeout(outage.duration)
        for name in felled:
            self.library.repair_drive(name)
        self._trace_regime("library-outage", "end", drives=len(felled))

    def _brownout_proc(self, brown: TsmBrownout):
        if brown.start > 0:
            yield self.env.timeout(brown.start)
        if self._brownout_depth == 0:
            self._tsm_base_txn = self.tsm.txn_time
        self._brownout_depth += 1
        self.tsm.txn_time = self._tsm_base_txn * brown.latency_factor
        self._record("tsm-brownout")
        self._trace_regime("tsm-brownout", "begin",
                           factor=brown.latency_factor)
        yield self.env.timeout(brown.duration)
        self._brownout_depth -= 1
        if self._brownout_depth == 0:
            self.tsm.txn_time = self._tsm_base_txn
        self._trace_regime("tsm-brownout", "end")

    def _corrupt_proc(self, spec: CatalogCorruption):
        if spec.at > 0:
            yield self.env.timeout(spec.at)
        rng = self.streams.stream("faults.catalog")
        oids = sorted(
            row["object_id"] for row in self.tsm.export_rows()
        ) if self.tsm is not None else []
        n = min(spec.rows + spec.drop, len(oids))
        if n == 0:
            self._trace_regime("catalog-corruption", "begin", rows=0)
            return
        picks = [int(i) for i in rng.choice(len(oids), size=n, replace=False)]
        damaged = dropped = 0
        for k, idx in enumerate(picks):
            oid = oids[idx]
            loc = self.tapedb.location_of(oid)
            if loc is None:
                continue
            if k < spec.drop:
                self.tapedb.remove(oid)
                dropped += 1
            else:
                # scramble volume/seq/nbytes in place — the row survives
                # but lies about where the bytes live
                self.tapedb.upsert(
                    oid, loc.path, loc.filespace,
                    volume="WRECK99", seq=loc.seq + 7919,
                    nbytes=loc.nbytes + 1,
                )
                damaged += 1
            self._record("catalog", component="catalog")
        self._trace_regime("catalog-corruption", "begin",
                           rows=damaged, dropped=dropped)

    # -- regime/probe queries -------------------------------------------
    def node_down_until(self, node: str) -> Optional[float]:
        """End of the latest outage window covering *node* now (None = up)."""
        end = None
        now = self.env.now
        for outage in self._node_windows:
            if outage.node == node and outage.covers(now):
                e = outage.start + outage.duration
                if end is None or e > end:
                    end = e
        return end

    def node_down(self, node: str) -> bool:
        """Would a ping of *node* fail right now?"""
        return self.node_down_until(node) is not None

    # -- communicator binding (satellite fix) ---------------------------
    def bind_comm(self, comm, node_of_rank: Callable[[int], str]) -> None:
        """Delay in-flight messages addressed to ranks on downed nodes.

        Node-outage windows historically only failed *data ops*; control
        messages (Manager→rank work, Exit fan-out) were silently
        delivered, so nothing upstream could notice the node was gone.
        Messages to a downed rank now land after the outage window ends
        (plus the normal latency), counted per-class under ``node`` —
        non-overtaking still holds because the delayed delivery time is
        monotone in send time.
        """
        prev = comm.delivery_hook

        def hook(src: int, dst: int, deliver_at: float) -> float:
            if prev is not None:
                deliver_at = prev(src, dst, deliver_at)
            end = self.node_down_until(node_of_rank(dst))
            if end is not None:
                delayed = end + comm.latency
                if delayed > deliver_at:
                    self._record("node", component=f"node:{node_of_rank(dst)}")
                    self.delayed_messages += 1
                    tr = self.env.trace
                    if tr.enabled:
                        tr.instant("fault:msg_delay", tid="faults",
                                   cat="fault",
                                   args={"dst": dst, "until": round(delayed, 9)})
                    return delayed
            return deliver_at

        comm.delivery_hook = hook

    def _crash_proc(self, crash: ProcessCrash) -> Iterable:
        if crash.at > 0:
            yield self.env.timeout(crash.at)
        kill = self._crash_targets.get(crash.target)
        if kill is None:
            self.crash_misses.append(crash)
            return
        kill(
            CrashFault(
                f"injected crash of {crash.target} at t={self.env.now:.1f}"
            )
        )
        self._record("crash")

    def _drive_proc(self, outage: DriveOutage) -> Iterable:
        if outage.at > 0:
            yield self.env.timeout(outage.at)
        self.library.fail_drive(outage.drive)
        self._record("drive")
        if outage.repair_after is not None:
            yield self.env.timeout(outage.repair_after)
            self.library.repair_drive(outage.drive)

    def __repr__(self) -> str:
        return f"<FaultInjector armed={self._armed} injected={self.injected}>"


def _chain(existing: Optional[Callable], new: Callable) -> Callable:
    """Compose fault hooks: first non-None verdict wins."""
    if existing is None:
        return new

    def chained(*args):
        exc = existing(*args)
        return exc if exc is not None else new(*args)

    return chained
