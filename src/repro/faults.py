"""Deterministic fault injection for archive-system experiments.

The paper's operational story is that the archive keeps moving data when
parts misbehave: the WatchDog exists to kill stalled jobs (§4.1.1) and
restartable chunked transfers exist because multi-hour jobs fail.  This
module supplies the *misbehaving parts*: a :class:`FaultPlan` describes
seeded, reproducible faults — tape-drive failures, transient TSM
retrieve errors, FTA-node outages and transient filesystem errors — and
a :class:`FaultInjector` arms the plan against a running site by
scheduling drive fail/repair processes and installing fault hooks on the
TSM server and file systems.

Determinism: probabilistic faults draw from named
:class:`~repro.sim.rng.RandomStreams` streams derived from the plan's
seed, so a given (plan, workload) pair always injects the same faults at
the same points — a prerequisite for debugging recovery logic.

Failure taxonomy
----------------
Every injected (or hardware-model) error is classified into a short
``fault_class`` string used by PFTool's retry accounting:

==========  ===========================================================
class       meaning
==========  ===========================================================
``drive``   tape drive hardware fault (:class:`DriveFault`)
``tsm``     TSM server retrieve/store error (:class:`TsmFault`)
``fs``      transient parallel-file-system I/O error
``node``    FTA node outage window (data ops from that node fail)
``path``    namespace error (missing/changed file)
``io``      any other simulation-level I/O error
``crash``   a component process was killed mid-flight (:class:`CrashFault`)
==========  ===========================================================

Crash faults differ from every other class: they are not *raised* into a
retryable operation but delivered by :meth:`~repro.sim.Process.kill`,
tearing down a component's in-flight state.  Recovery is therefore not a
retry but a restart — see :mod:`repro.recovery`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

from repro.sim import Environment, RandomStreams, SimulationError

__all__ = [
    "CrashFault",
    "DriveFault",
    "DriveOutage",
    "ErrorBurst",
    "FailureRecord",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "NodeOutage",
    "NodeOutageFault",
    "ProcessCrash",
    "TransientIOFault",
    "TsmFault",
    "classify_failure",
]


# ----------------------------------------------------------------------
# exception taxonomy
# ----------------------------------------------------------------------
class FaultError(SimulationError):
    """Base of all classified faults; ``fault_class`` feeds JobStats."""

    fault_class = "fault"


class DriveFault(FaultError):
    """A tape drive refused an operation because its hardware failed."""

    fault_class = "drive"


class TsmFault(FaultError):
    """The TSM server errored a retrieve/store transaction."""

    fault_class = "tsm"


class TransientIOFault(FaultError):
    """A transient parallel-file-system I/O error (EIO-style)."""

    fault_class = "fs"


class NodeOutageFault(FaultError):
    """An FTA node is down; data operations from it fail."""

    fault_class = "node"


class CrashFault(FaultError):
    """A component process was killed mid-flight (crash, not an error)."""

    fault_class = "crash"


def classify_failure(exc: BaseException) -> str:
    """Map an exception to its retry-accounting class."""
    if isinstance(exc, FaultError):
        return exc.fault_class
    # PathError subclasses SimulationError in some layers; sniff by name to
    # avoid importing repro.pfs here (faults must stay dependency-light).
    if type(exc).__name__ == "PathError":
        return "path"
    if isinstance(exc, SimulationError):
        return "io"
    return "error"


@dataclass(frozen=True)
class FailureRecord:
    """One structured failure carried inside a rank's *Result message."""

    path: str
    fault_class: str
    detail: str = ""


# ----------------------------------------------------------------------
# plan entries
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DriveOutage:
    """Fail *drive* at sim time *at*; repair it *repair_after* seconds
    later (None = never repaired)."""

    at: float
    drive: str
    repair_after: Optional[float] = None


@dataclass(frozen=True)
class NodeOutage:
    """FTA node *node* is down during ``[start, start + duration)``."""

    node: str
    start: float
    duration: float

    def covers(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class ErrorBurst:
    """Probabilistic transient errors against one subsystem.

    Each eligible operation fails independently with probability *rate*
    until *max_failures* have been injected (bounding the burst keeps
    jobs completable) within the ``[start, until)`` window.
    """

    subsystem: str  # 'tsm' | 'fs'
    rate: float
    max_failures: int
    start: float = 0.0
    until: float = float("inf")
    #: restrict fs errors to one op kind ('read'/'write'/'create'/'stat')
    op: Optional[str] = None
    #: restrict fs errors to paths containing this substring
    path_contains: Optional[str] = None

    def active(self, now: float) -> bool:
        return self.start <= now < self.until


@dataclass(frozen=True)
class ProcessCrash:
    """Kill the component registered under *target* at sim time *at*.

    Targets are symbolic names ("manager", "worker", "deleter",
    "migrator", ...) bound late via
    :meth:`FaultInjector.register_crash_target`, because the component
    (e.g. a PFTool job) usually does not exist yet when the plan is armed.
    """

    at: float
    target: str


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
class FaultPlan:
    """A reproducible schedule of faults (builder-style, chainable).

    >>> plan = (FaultPlan(seed=7)
    ...         .drive_failure(at=120.0, drive="drv00", repair_after=90.0)
    ...         .tsm_retrieve_errors(rate=0.3, max_failures=4)
    ...         .fs_errors(rate=0.1, max_failures=2, op="write"))
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.drive_outages: list[DriveOutage] = []
        self.node_outages: list[NodeOutage] = []
        self.tsm_bursts: list[ErrorBurst] = []
        self.fs_bursts: list[ErrorBurst] = []
        self.crashes: list[ProcessCrash] = []

    def drive_failure(
        self, at: float, drive: str, repair_after: Optional[float] = None
    ) -> "FaultPlan":
        self.drive_outages.append(DriveOutage(at, drive, repair_after))
        return self

    def node_outage(self, node: str, start: float, duration: float) -> "FaultPlan":
        self.node_outages.append(NodeOutage(node, start, duration))
        return self

    def tsm_retrieve_errors(
        self,
        rate: float,
        max_failures: int,
        start: float = 0.0,
        until: float = float("inf"),
    ) -> "FaultPlan":
        self.tsm_bursts.append(ErrorBurst("tsm", rate, max_failures, start, until))
        return self

    def fs_errors(
        self,
        rate: float,
        max_failures: int,
        op: Optional[str] = None,
        path_contains: Optional[str] = None,
        start: float = 0.0,
        until: float = float("inf"),
    ) -> "FaultPlan":
        self.fs_bursts.append(
            ErrorBurst("fs", rate, max_failures, start, until, op, path_contains)
        )
        return self

    def crash(self, at: float, target: str) -> "FaultPlan":
        """Kill the component registered under *target* at sim time *at*."""
        self.crashes.append(ProcessCrash(at, target))
        return self

    def __repr__(self) -> str:
        return (
            f"<FaultPlan seed={self.seed} drives={len(self.drive_outages)} "
            f"nodes={len(self.node_outages)} tsm={len(self.tsm_bursts)} "
            f"fs={len(self.fs_bursts)} crashes={len(self.crashes)}>"
        )


# ----------------------------------------------------------------------
# the injector
# ----------------------------------------------------------------------
class FaultInjector:
    """Arms a :class:`FaultPlan` against live subsystem instances.

    Parameters
    ----------
    env:
        Simulation environment.
    plan:
        The fault schedule.
    library:
        Tape library for drive fail/repair scheduling (optional).
    tsm:
        TSM server whose ``fault_hook`` receives retrieve checks
        (optional).
    filesystems:
        File systems whose ``fault_hook`` receives data-op checks; node
        outages are enforced here too, by client-node match (optional).
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        library=None,
        tsm=None,
        filesystems: Sequence = (),
    ) -> None:
        self.env = env
        self.plan = plan
        self.library = library
        self.tsm = tsm
        self.filesystems = list(filesystems)
        self.streams = RandomStreams(plan.seed)
        #: fault_class -> number of faults actually injected
        self.injected: dict[str, int] = {}
        self._burst_counts: dict[int, int] = {}
        #: late-bound crash targets: symbolic name -> kill callable
        self._crash_targets: dict[str, Callable[[CrashFault], None]] = {}
        #: crash entries that fired with no registered target at that time
        self.crash_misses: list[ProcessCrash] = []
        self._armed = False

    # -- crash targets -------------------------------------------------
    def register_crash_target(
        self, name: str, kill: Callable[[CrashFault], None]
    ) -> None:
        """Bind *name* to a kill callable (late: components come and go).

        Re-registering replaces the previous binding, so a harness can
        point "manager" at whichever job is currently running.
        """
        self._crash_targets[name] = kill

    def unregister_crash_target(self, name: str) -> None:
        self._crash_targets.pop(name, None)

    # -- bookkeeping ---------------------------------------------------
    def _record(self, fault_class: str) -> None:
        self.injected[fault_class] = self.injected.get(fault_class, 0) + 1

    def _burst_fires(self, burst: ErrorBurst, stream_name: str) -> bool:
        """Draw the burst's coin; honour its window and failure budget."""
        if not burst.active(self.env.now):
            return False
        key = id(burst)
        if self._burst_counts.get(key, 0) >= burst.max_failures:
            return False
        if self.streams.stream(stream_name).random() >= burst.rate:
            return False
        self._burst_counts[key] = self._burst_counts.get(key, 0) + 1
        return True

    # -- hooks ---------------------------------------------------------
    def _tsm_hook(self, op: str, object_id) -> Optional[BaseException]:
        if op != "retrieve":
            return None
        for burst in self.plan.tsm_bursts:
            if self._burst_fires(burst, "faults.tsm"):
                self._record("tsm")
                return TsmFault(
                    f"injected retrieve error for object {object_id} "
                    f"at t={self.env.now:.1f}"
                )
        return None

    def _fs_hook(self, op: str, client: Optional[str], path: str):
        if client is not None:
            for outage in self.plan.node_outages:
                if outage.node == client and outage.covers(self.env.now):
                    self._record("node")
                    return NodeOutageFault(
                        f"node {client} down (t={self.env.now:.1f}) for {op} {path}"
                    )
        for burst in self.plan.fs_bursts:
            if burst.op is not None and burst.op != op:
                continue
            if burst.path_contains is not None and burst.path_contains not in path:
                continue
            if self._burst_fires(burst, "faults.fs"):
                self._record("fs")
                return TransientIOFault(
                    f"injected {op} error on {path} at t={self.env.now:.1f}"
                )
        return None

    # -- arming ----------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Install hooks and schedule drive fail/repair processes."""
        if self._armed:
            return self
        self._armed = True
        if self.library is not None:
            for outage in self.plan.drive_outages:
                self.env.process(
                    self._drive_proc(outage), name=f"fault-{outage.drive}"
                )
        if self.tsm is not None:
            self.tsm.fault_hook = _chain(self.tsm.fault_hook, self._tsm_hook)
        for fs in self.filesystems:
            fs.fault_hook = _chain(fs.fault_hook, self._fs_hook)
        for crash in self.plan.crashes:
            self.env.process(
                self._crash_proc(crash), name=f"crash-{crash.target}"
            )
        return self

    def _crash_proc(self, crash: ProcessCrash) -> Iterable:
        if crash.at > 0:
            yield self.env.timeout(crash.at)
        kill = self._crash_targets.get(crash.target)
        if kill is None:
            self.crash_misses.append(crash)
            return
        kill(
            CrashFault(
                f"injected crash of {crash.target} at t={self.env.now:.1f}"
            )
        )
        self._record("crash")

    def _drive_proc(self, outage: DriveOutage) -> Iterable:
        if outage.at > 0:
            yield self.env.timeout(outage.at)
        self.library.fail_drive(outage.drive)
        self._record("drive")
        if outage.repair_after is not None:
            yield self.env.timeout(outage.repair_after)
            self.library.repair_drive(outage.drive)

    def __repr__(self) -> str:
        return f"<FaultInjector armed={self._armed} injected={self.injected}>"


def _chain(existing: Optional[Callable], new: Callable) -> Callable:
    """Compose fault hooks: first non-None verdict wins."""
    if existing is None:
        return new

    def chained(*args):
        exc = existing(*args)
        return exc if exc is not None else new(*args)

    return chained
