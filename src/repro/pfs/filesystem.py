"""The GPFS facade: namespace + pools + striping + timed data path.

Data operations are simulation events.  A write from client node *C*
stripes the byte range over the file's pool, and for each slice runs the
network hop (C -> NSD server) and the array I/O **in parallel** — the
fluid approximation of GPFS's pipelined NSD protocol.  Reads are
symmetric.  Reads of HSM *stubs* first invoke the registered recall
handler (the DMAPI mount-point event mechanism TSM HSM uses).

The facade also exposes the hook points the archive's glue code needs:
``on_unlink`` (synchronous-delete tracking), ``on_overwrite`` (orphan
detection / FUSE interception), and ``punch_stub`` / ``restore_data``
for the HSM manager.
"""

from __future__ import annotations

import itertools
from typing import Callable, Iterable, Optional

from repro.netsim.fabric import Fabric
from repro.pfs.inode import HsmState, Inode
from repro.pfs.namespace import Namespace, PathError
from repro.pfs.policy import PolicyEngine
from repro.pfs.pools import StoragePool
from repro.pfs.striping import StripeLayout
from repro.sim import AllOf, Environment, Event, Resource, SimulationError

__all__ = ["GpfsFileSystem"]

_token_counter = itertools.count(0x517E)


def fresh_token() -> int:
    """A unique content fingerprint for newly written data."""
    return next(_token_counter)


class GpfsFileSystem:
    """A mounted parallel file system instance.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Mount label, e.g. ``"archive-gpfs"`` or ``"scratch-panfs"``.
    fabric:
        Site fabric for client<->server hops (None = charge arrays only).
    metadata_op_time:
        Simulated cost of one metadata RPC (create/stat/unlink).  GPFS
        metadata ops on the archive cluster are sub-millisecond.
    block_size:
        Stripe unit.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        fabric: Optional[Fabric] = None,
        metadata_op_time: float = 0.0005,
        block_size: int = 4 * 1024 * 1024,
        shared_write_bw: float = 1.5e9,
    ) -> None:
        self.env = env
        self.name = name
        self.fabric = fabric
        self.metadata_op_time = metadata_op_time
        self.block_size = block_size
        #: aggregate ceiling for concurrent writers of ONE file — the
        #: shared-file (N-to-1) serialization of block allocation and
        #: token revocation the paper's §4.1.2(4) works around with
        #: ArchiveFUSE (cf. the PLFS reference [23]).  Writers of one
        #: inode serialize on a lock held for nbytes/shared_write_bw.
        self.shared_write_bw = shared_write_bw
        self._write_locks: dict[int, Resource] = {}
        self.namespace = Namespace(now=env.now)
        self.pools: dict[str, StoragePool] = {}
        self.policy = PolicyEngine(env, self.namespace)
        #: recall handler: (path, inode, client) -> Event (set by HSM)
        self.recall_handler: Optional[Callable[[str, Inode, str], Event]] = None
        #: observers of destructive ops
        self.on_unlink: list[Callable[[str, Inode], None]] = []
        self.on_overwrite: list[Callable[[str, Inode, Optional[int]], None]] = []
        #: fault-injection hook, called as ``hook(op, client, path)`` at
        #: the start of every timed data op; a returned exception fails
        #: the op's event (see :mod:`repro.faults`)
        self.fault_hook: Optional[
            Callable[[str, str, str], Optional[BaseException]]
        ] = None
        # counters
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.recalls_triggered = 0
        self.faults_injected = 0

    # ------------------------------------------------------------------
    # pools
    # ------------------------------------------------------------------
    def add_pool(self, pool: StoragePool, default: bool = False) -> StoragePool:
        if pool.name in self.pools:
            raise SimulationError(f"duplicate pool {pool.name!r}")
        self.pools[pool.name] = pool
        if default or self.policy.default_pool is None:
            self.policy.default_pool = pool.name
        return pool

    def pool(self, name: str) -> StoragePool:
        try:
            return self.pools[name]
        except KeyError:
            raise SimulationError(f"{self.name}: unknown pool {name!r}") from None

    def pool_occupancy(self, name: str) -> float:
        return self.pool(name).occupancy

    def pool_capacity(self, name: str) -> float:
        return self.pool(name).capacity_bytes

    # ------------------------------------------------------------------
    # synchronous metadata (no simulated time — callers charge it)
    # ------------------------------------------------------------------
    def lookup(self, path: str) -> Inode:
        return self.namespace.lookup(path)

    def exists(self, path: str) -> bool:
        return self.namespace.exists(path)

    def mkdir(self, path: str, parents: bool = False) -> Inode:
        return self.namespace.mkdir(path, self.env.now, parents=parents)

    def readdir(self, path: str) -> list[tuple[str, Inode]]:
        return self.namespace.readdir(path)

    def walk(self, path: str = "/"):
        return self.namespace.walk(path)

    def rename(self, src: str, dst: str) -> Inode:
        return self.namespace.rename(src, dst)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def _injected_fault(
        self, op: str, client: str, path: str
    ) -> Optional[BaseException]:
        """Ask the hook whether this op should fail; count if so."""
        if self.fault_hook is None:
            return None
        exc = self.fault_hook(op, client, path)
        if exc is not None:
            self.faults_injected += 1
        return exc

    # ------------------------------------------------------------------
    # timed metadata ops
    # ------------------------------------------------------------------
    def stat_op(self, path: str) -> Event:
        """Timed stat; event fires with the inode (or fails PathError)."""
        done = self.env.event()

        def _proc():
            if self.metadata_op_time:
                yield self.env.timeout(self.metadata_op_time)
            exc = self._injected_fault("stat", "", path)
            if exc is not None:
                done.fail(exc)
                return
            try:
                done.succeed(self.namespace.lookup(path))
            except PathError as exc:
                done.fail(exc)

        self.env.process(_proc(), name=f"stat {path}")
        return done

    def unlink_op(self, path: str) -> Event:
        """Timed unlink with observer callbacks; fires with the inode."""
        done = self.env.event()

        def _proc():
            if self.metadata_op_time:
                yield self.env.timeout(self.metadata_op_time)
            try:
                inode = self._unlink_now(path)
            except PathError as exc:
                done.fail(exc)
                return
            done.succeed(inode)

        self.env.process(_proc(), name=f"unlink {path}")
        return done

    def _unlink_now(self, path: str) -> Inode:
        inode = self.namespace.lookup(path)
        self.namespace.unlink(path)
        if inode.is_file:
            self._free_allocation(inode)
        for cb in self.on_unlink:
            cb(path, inode)
        return inode

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def write_file(
        self,
        client: str,
        path: str,
        nbytes: int,
        pool: Optional[str] = None,
        token: Optional[int] = None,
        uid: str = "root",
    ) -> Event:
        """Create-or-overwrite *path* with *nbytes* of data from *client*.

        Event fires with the inode.  Overwriting a file that has a tape
        copy notifies ``on_overwrite`` observers with the stale TSM object
        id (the §6.3 orphan problem).
        """
        if nbytes < 0:
            raise SimulationError("nbytes must be non-negative")
        done = self.env.event()

        def _proc():
            if self.metadata_op_time:
                yield self.env.timeout(self.metadata_op_time)
            exc = self._injected_fault("write", client, path)
            if exc is not None:
                done.fail(exc)
                return
            try:
                inode = self.namespace.lookup(path)
                if inode.is_dir:
                    raise SimulationError(f"is a directory: {path!r}")
                stale = inode.tsm_object_id
                if stale is not None or inode.hsm_state is not HsmState.RESIDENT:
                    for cb in self.on_overwrite:
                        cb(path, inode, stale)
                    inode.tsm_object_id = None
                self._free_allocation(inode)
                inode.xattrs.pop("__chunks_done__", None)
            except PathError:
                inode = self.namespace.create(path, self.env.now, uid=uid)
            inode.size = int(nbytes)  # placement rules may inspect the size
            pool_name = pool or self.policy.place(path, inode, self.env.now)
            if pool_name is None:
                done.fail(SimulationError(f"{self.name}: no pool for {path!r}"))
                return
            target = self.pool(pool_name)
            inode.pool = pool_name
            self._allocate(inode, target, nbytes)
            yield from self._move_data(client, target, inode, nbytes, write=True)
            inode.touch_data(
                self.env.now, nbytes, fresh_token() if token is None else token
            )
            self.bytes_written += nbytes
            done.succeed(inode)

        self.env.process(_proc(), name=f"write {path}")
        return done

    def read_file(self, client: str, path: str) -> Event:
        """Read the whole file to *client*; fires with (inode, token).

        Reading a MIGRATED stub triggers the registered recall handler
        first (DMAPI read event), then streams from disk.
        """
        done = self.env.event()

        def _proc():
            if self.metadata_op_time:
                yield self.env.timeout(self.metadata_op_time)
            fault = self._injected_fault("read", client, path)
            if fault is not None:
                done.fail(fault)
                return
            try:
                inode = self.namespace.lookup(path)
            except PathError as exc:
                done.fail(exc)
                return
            if inode.is_dir:
                done.fail(SimulationError(f"is a directory: {path!r}"))
                return
            if inode.is_stub:
                if self.recall_handler is None:
                    done.fail(
                        SimulationError(
                            f"{path!r} is migrated and no recall handler is set"
                        )
                    )
                    return
                self.recalls_triggered += 1
                yield self.recall_handler(path, inode, client)
                if inode.is_stub:
                    done.fail(
                        SimulationError(f"recall did not restore {path!r}")
                    )
                    return
            pool_name = inode.pool
            if pool_name is None:  # empty file, never written
                inode.atime = self.env.now
                done.succeed((inode, inode.content_token))
                return
            target = self.pool(pool_name)
            yield from self._move_data(
                client, target, inode, inode.size, write=False
            )
            inode.atime = self.env.now
            self.bytes_read += inode.size
            done.succeed((inode, inode.content_token))

        self.env.process(_proc(), name=f"read {path}")
        return done

    def _move_wrapper(self, client, pool, inode, nbytes, write, offset):
        yield from self._move_data(client, pool, inode, nbytes, write=write,
                                   offset=offset)

    def _move_data(
        self,
        client: str,
        pool: StoragePool,
        inode: Inode,
        nbytes: int,
        write: bool,
        offset: int = 0,
    ) -> Iterable[Event]:
        """Stripe *nbytes* over *pool* and run net+disk I/O in parallel."""
        if nbytes <= 0:
            return
        layout = StripeLayout(len(pool.arrays), self.block_size)
        events: list[Event] = []
        for sl in layout.slices(inode.ino, offset, nbytes):
            array = pool.arrays[sl.array_index]
            server = pool.server_of(sl.array_index)
            if write:
                events.append(array.write(sl.nbytes, tag=inode.ino))
            else:
                events.append(array.read(sl.nbytes, tag=inode.ino))
            if self.fabric is not None and server is not None and client != server:
                if write:
                    events.append(
                        self.fabric.transfer(client, server, sl.nbytes, tag=inode.ino)
                    )
                else:
                    events.append(
                        self.fabric.transfer(server, client, sl.nbytes, tag=inode.ino)
                    )
        if events:
            yield AllOf(self.env, events)

    # ------------------------------------------------------------------
    # range I/O (PFTool's chunked parallel copies)
    # ------------------------------------------------------------------
    def create_sized(
        self,
        path: str,
        nbytes: int,
        pool: Optional[str] = None,
        uid: str = "root",
    ) -> Event:
        """Create *path* with space for *nbytes* but move no data yet.

        Used by parallel copies: the destination is created once, then N
        workers fill disjoint ranges with :meth:`write_range`.  Fires
        with the inode.
        """
        done = self.env.event()

        def _proc():
            if self.metadata_op_time:
                yield self.env.timeout(self.metadata_op_time)
            exc = self._injected_fault("create", "", path)
            if exc is not None:
                done.fail(exc)
                return
            try:
                inode = self.namespace.lookup(path)
                if inode.is_dir:
                    raise SimulationError(f"is a directory: {path!r}")
                stale = inode.tsm_object_id
                if stale is not None or inode.hsm_state is not HsmState.RESIDENT:
                    for cb in self.on_overwrite:
                        cb(path, inode, stale)
                    inode.tsm_object_id = None
                self._free_allocation(inode)
                inode.xattrs.pop("__chunks_done__", None)
            except PathError:
                inode = self.namespace.create(path, self.env.now, uid=uid)
            inode.size = int(nbytes)  # placement rules may inspect the size
            pool_name = pool or self.policy.place(path, inode, self.env.now)
            if pool_name is None:
                done.fail(SimulationError(f"{self.name}: no pool for {path!r}"))
                return
            target = self.pool(pool_name)
            inode.pool = pool_name
            self._allocate(inode, target, nbytes)
            inode.hsm_state = HsmState.RESIDENT
            inode.mtime = self.env.now
            # A sized create is a full-size *hole* until the copy that
            # provisioned it stamps completion (set_token).  Restart
            # logic must not mistake it for finished data.
            inode.xattrs["__inflight__"] = True
            done.succeed(inode)

        self.env.process(_proc(), name=f"create-sized {path}")
        return done

    def read_range(self, client: str, path: str, offset: int, nbytes: int) -> Event:
        """Read ``[offset, offset+nbytes)`` to *client*; fires with inode.

        Unlike :meth:`read_file` this never triggers a recall — chunked
        readers must ensure residency first (PFTool does, via its tape
        queues).
        """
        return self._range_io(client, path, offset, nbytes, write=False)

    def write_range(self, client: str, path: str, offset: int, nbytes: int) -> Event:
        """Fill ``[offset, offset+nbytes)`` from *client*; fires with inode.

        The file must have been provisioned with :meth:`create_sized`.
        """
        return self._range_io(client, path, offset, nbytes, write=True)

    def _range_io(
        self, client: str, path: str, offset: int, nbytes: int, write: bool
    ) -> Event:
        if offset < 0 or nbytes < 0:
            raise SimulationError("offset/nbytes must be non-negative")
        done = self.env.event()

        def _proc():
            fault = self._injected_fault("write" if write else "read", client, path)
            if fault is not None:
                done.fail(fault)
                return
            try:
                inode = self.namespace.lookup(path)
            except PathError as exc:
                done.fail(exc)
                return
            if not inode.is_file:
                done.fail(SimulationError(f"not a file: {path!r}"))
                return
            if inode.is_stub:
                done.fail(
                    SimulationError(
                        f"range I/O on migrated stub {path!r} (recall it first)"
                    )
                )
                return
            if offset + nbytes > inode.size:
                done.fail(
                    SimulationError(
                        f"range [{offset}, {offset + nbytes}) beyond EOF "
                        f"of {path!r} (size {inode.size})"
                    )
                )
                return
            if inode.pool is None:
                done.succeed(inode)
                return
            target = self.pool(inode.pool)
            if write and self.shared_write_bw and nbytes > 0:
                # run the serialized shared-file critical section and the
                # data movement concurrently: a lone writer is unaffected,
                # N-to-1 writers aggregate-cap at shared_write_bw.
                lock = self._write_locks.get(inode.ino)
                if lock is None:
                    lock = Resource(self.env, capacity=1)
                    self._write_locks[inode.ino] = lock

                def _critical():
                    with lock.request() as rq:
                        yield rq
                        yield self.env.timeout(nbytes / self.shared_write_bw)

                crit = self.env.process(_critical(), name=f"wlock {path}")
                move = self.env.process(
                    self._move_wrapper(client, target, inode, nbytes, write, offset),
                    name=f"wmove {path}",
                )
                yield AllOf(self.env, [crit, move])
            else:
                yield from self._move_data(
                    client, target, inode, nbytes, write=write, offset=offset
                )
            if write:
                inode.mtime = self.env.now
                self.bytes_written += nbytes
            else:
                inode.atime = self.env.now
                self.bytes_read += nbytes
            done.succeed(inode)

        self.env.process(_proc(), name=f"rangeio {path}")
        return done

    def set_token(self, path: str, token: int) -> None:
        """Stamp the content fingerprint (copy completion)."""
        inode = self.namespace.lookup(path)
        inode.content_token = token
        inode.xattrs.pop("__inflight__", None)

    # ------------------------------------------------------------------
    # space accounting
    # ------------------------------------------------------------------
    def _allocate(self, inode: Inode, pool: StoragePool, nbytes: int) -> None:
        layout = StripeLayout(len(pool.arrays), self.block_size)
        alloc: list[tuple[str, int, int]] = []
        for sl in layout.slices(inode.ino, 0, nbytes):
            pool.arrays[sl.array_index].allocate(sl.nbytes)
            alloc.append((pool.name, sl.array_index, sl.nbytes))
        inode.xattrs["__alloc__"] = alloc

    def _free_allocation(self, inode: Inode) -> None:
        for pool_name, idx, n in inode.xattrs.pop("__alloc__", []):
            pool = self.pools.get(pool_name)
            if pool is not None and idx < len(pool.arrays):
                pool.arrays[idx].free(n)

    # ------------------------------------------------------------------
    # HSM integration (DMAPI-ish)
    # ------------------------------------------------------------------
    def punch_stub(self, path: str) -> Inode:
        """Free the disk blocks of a (pre)migrated file, leaving a stub."""
        inode = self.namespace.lookup(path)
        if not inode.is_file:
            raise SimulationError(f"punch_stub: not a file: {path!r}")
        if inode.tsm_object_id is None:
            raise SimulationError(
                f"punch_stub: {path!r} has no tape copy (would lose data)"
            )
        self._free_allocation(inode)
        inode.hsm_state = HsmState.MIGRATED
        return inode

    def mark_premigrated(self, path: str, tsm_object_id: int) -> Inode:
        """Record that a tape copy now exists while data stays on disk."""
        inode = self.namespace.lookup(path)
        inode.tsm_object_id = tsm_object_id
        inode.hsm_state = HsmState.PREMIGRATED
        return inode

    def restore_data(self, path: str, pool: Optional[str] = None) -> Inode:
        """Re-materialise a stub's data on disk after a recall."""
        inode = self.namespace.lookup(path)
        if not inode.is_stub:
            return inode
        pool_name = pool or inode.pool or self.policy.default_pool
        if pool_name is None:
            raise SimulationError(f"restore_data: no pool for {path!r}")
        target = self.pool(pool_name)
        self._allocate(inode, target, inode.size)
        inode.pool = pool_name
        inode.hsm_state = HsmState.PREMIGRATED
        return inode

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"<GpfsFileSystem {self.name!r} files={self.namespace.n_files} "
            f"pools={sorted(self.pools)}>"
        )
