"""GPFS-class parallel file system model.

Implements the subset of IBM GPFS 3.2 the paper's archive leans on:

* a POSIX-ish namespace (directories, files, rename, unlink) backed by
  numbered inodes;
* **block striping** of file data across NSD disk servers, so one file's
  I/O runs in parallel across arrays and a client's bandwidth emerges
  from fabric + array contention;
* **storage pools** — classes of service holding disk arrays ("fast" FC
  pool, "slow" SATA pool) plus *external* pools that name an HSM back end
  (GPFS 3.2's external-pool extension, §4.2.1);
* the **ILM policy engine**: PLACEMENT rules route new files to pools,
  MIGRATE/LIST rules scan the metadata at GPFS's fast inode-scan rate and
  hand candidate lists to callbacks (the paper's parallel data migrator
  consumes LIST output);
* **DMAPI-style managed regions**: HSM punches a file to a stub
  (``MIGRATED``) and a registered recall handler is invoked when a reader
  touches the stub — exactly how TSM HSM rides on GPFS.

Facade: :class:`GpfsFileSystem`.
"""

from repro.pfs.filesystem import GpfsFileSystem
from repro.pfs.inode import FileKind, HsmState, Inode
from repro.pfs.namespace import Namespace, PathError
from repro.pfs.policy import ListRule, MigrateRule, PlacementRule, PolicyEngine
from repro.pfs.policy_lang import PolicyParseError, parse_policy
from repro.pfs.pools import ExternalPool, StoragePool
from repro.pfs.striping import StripeLayout

__all__ = [
    "ExternalPool",
    "FileKind",
    "GpfsFileSystem",
    "HsmState",
    "Inode",
    "ListRule",
    "MigrateRule",
    "Namespace",
    "PathError",
    "PlacementRule",
    "PolicyEngine",
    "PolicyParseError",
    "StoragePool",
    "StripeLayout",
    "parse_policy",
]
