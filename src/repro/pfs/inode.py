"""Inodes: the metadata record for every file system object.

An inode tracks the attributes the archive's machinery relies on:

* size / timestamps / owner — policy rule inputs;
* the **storage pool** holding the data;
* the **HSM state** (resident / premigrated / migrated) and the TSM
  object id once a copy exists on tape;
* a **content token** — a deterministic fingerprint standing in for file
  bytes, letting ``pfcm``-style compares verify copies without simulating
  actual data.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

__all__ = ["FileKind", "HsmState", "Inode"]


class FileKind(enum.Enum):
    FILE = "file"
    DIRECTORY = "directory"


class HsmState(enum.Enum):
    """DMAPI managed-region state of a file's data (TSM HSM semantics)."""

    #: all data on the file system disk
    RESIDENT = "resident"
    #: data on disk *and* on tape (safe to punch quickly)
    PREMIGRATED = "premigrated"
    #: stub only — data lives on tape, a read triggers a recall
    MIGRATED = "migrated"


_inode_counter = itertools.count(1)


def _next_ino() -> int:
    return next(_inode_counter)


class Inode:
    """Metadata record.  Directories carry a dict of children."""

    __slots__ = (
        "ino",
        "kind",
        "size",
        "pool",
        "hsm_state",
        "tsm_object_id",
        "content_token",
        "uid",
        "ctime",
        "mtime",
        "atime",
        "children",
        "nlink",
        "xattrs",
    )

    def __init__(
        self,
        kind: FileKind,
        now: float,
        uid: str = "root",
        pool: Optional[str] = None,
    ) -> None:
        self.ino = _next_ino()
        self.kind = kind
        self.size = 0
        #: storage pool name holding the data (None until first write)
        self.pool = pool
        self.hsm_state = HsmState.RESIDENT
        #: TSM object id once the file has a tape copy
        self.tsm_object_id: Optional[int] = None
        #: fingerprint of the (virtual) data
        self.content_token: int = 0
        self.uid = uid
        self.ctime = now
        self.mtime = now
        self.atime = now
        self.children: Optional[dict[str, "Inode"]] = (
            {} if kind is FileKind.DIRECTORY else None
        )
        self.nlink = 2 if kind is FileKind.DIRECTORY else 1
        #: extended attributes (used by restart markers, trashcan metadata)
        self.xattrs: dict[str, Any] = {}

    # -- convenience -----------------------------------------------------
    @property
    def is_dir(self) -> bool:
        return self.kind is FileKind.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.kind is FileKind.FILE

    @property
    def is_stub(self) -> bool:
        return self.hsm_state is HsmState.MIGRATED

    #: bytes actually occupying file system disk
    @property
    def resident_bytes(self) -> int:
        return 0 if self.is_stub else self.size

    def touch_data(self, now: float, new_size: int, token: int) -> None:
        """Record a data modification (write / truncate)."""
        self.size = int(new_size)
        self.content_token = token
        self.mtime = now
        self.atime = now
        # Any data change invalidates the tape copy's currency.
        if self.hsm_state is not HsmState.RESIDENT:
            self.hsm_state = HsmState.RESIDENT

    def __repr__(self) -> str:
        return (
            f"<Inode #{self.ino} {self.kind.value} size={self.size} "
            f"pool={self.pool} hsm={self.hsm_state.value}>"
        )
