"""A parser for GPFS-style policy rule text.

Real deployments of the paper's archive drive everything through
``mmapplypolicy`` rule files.  This module compiles the same surface
syntax into :mod:`repro.pfs.policy` rule objects::

    RULE 'small-files' SET POOL 'slow' WHERE FILE_SIZE < 1 MB
    RULE 'spill' MIGRATE FROM POOL 'fast' THRESHOLD(90,70)
         TO POOL 'hsm' WEIGHT(FILE_SIZE) WHERE ACCESS_AGE > 30 DAYS
    RULE 'cands' LIST 'tape-candidates'
         WHERE PATH_NAME LIKE '/proj/%' AND FILE_SIZE >= 100 MB

Supported attributes
    ``FILE_SIZE`` (bytes), ``NAME`` (basename), ``PATH_NAME``,
    ``POOL_NAME``, ``USER_ID``, ``ACCESS_AGE`` / ``MODIFICATION_AGE`` /
    ``CREATION_AGE`` (seconds since the respective timestamp).

Operators
    ``= != < <= > >= LIKE AND OR NOT ( )``; numeric literals accept
    ``KB/MB/GB/TB`` and age literals accept
    ``SECONDS/MINUTES/HOURS/DAYS``; strings use single quotes with SQL
    ``%``/``_`` wildcards under ``LIKE``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.pfs.inode import Inode
from repro.pfs.policy import ListRule, MigrateRule, PlacementRule

__all__ = ["PolicyParseError", "parse_policy"]


class PolicyParseError(ValueError):
    """Raised on malformed policy text, with token position context."""


# ---------------------------------------------------------------------------
# lexer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>/\*.*?\*/)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE | re.DOTALL,
)

_SIZE_UNITS = {"KB": 10**3, "MB": 10**6, "GB": 10**9, "TB": 10**12,
               "KIB": 2**10, "MIB": 2**20, "GIB": 2**30, "TIB": 2**40}
_AGE_UNITS = {"SECONDS": 1, "SECOND": 1, "MINUTES": 60, "MINUTE": 60,
              "HOURS": 3600, "HOUR": 3600, "DAYS": 86400, "DAY": 86400}


@dataclass(frozen=True)
class _Tok:
    kind: str  # 'string' | 'number' | 'op' | 'word'
    text: str
    pos: int


def _lex(text: str) -> list[_Tok]:
    toks: list[_Tok] = []
    i = 0
    while i < len(text):
        m = _TOKEN_RE.match(text, i)
        if m is None:
            raise PolicyParseError(
                f"unexpected character {text[i]!r} at offset {i}"
            )
        i = m.end()
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            continue
        value = m.group()
        if kind == "word":
            value = value.upper() if value.upper() in _KEYWORDS else value
        toks.append(_Tok(kind, value, m.start()))
    return toks


_KEYWORDS = {
    "RULE", "SET", "POOL", "WHERE", "MIGRATE", "FROM", "TO", "LIST",
    "THRESHOLD", "WEIGHT", "AND", "OR", "NOT", "LIKE", "TRUE", "FALSE",
    *_SIZE_UNITS, *_AGE_UNITS,
    "FILE_SIZE", "NAME", "PATH_NAME", "POOL_NAME", "USER_ID",
    "ACCESS_AGE", "MODIFICATION_AGE", "CREATION_AGE",
}

Predicate = Callable[[str, Inode, float], bool]
Valuer = Callable[[str, Inode, float], Union[float, str]]


# ---------------------------------------------------------------------------
# parser
# ---------------------------------------------------------------------------

class _Parser:
    def __init__(self, text: str) -> None:
        self.toks = _lex(text)
        self.i = 0

    # -- token helpers -----------------------------------------------------
    def _peek(self) -> Optional[_Tok]:
        return self.toks[self.i] if self.i < len(self.toks) else None

    def _next(self) -> _Tok:
        tok = self._peek()
        if tok is None:
            raise PolicyParseError("unexpected end of policy text")
        self.i += 1
        return tok

    def _expect(self, text: str) -> _Tok:
        tok = self._next()
        if tok.text != text:
            raise PolicyParseError(
                f"expected {text!r} but found {tok.text!r} at offset {tok.pos}"
            )
        return tok

    def _accept(self, text: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.text == text:
            self.i += 1
            return True
        return False

    def _string(self) -> str:
        tok = self._next()
        if tok.kind != "string":
            raise PolicyParseError(
                f"expected a quoted string at offset {tok.pos}, got {tok.text!r}"
            )
        return tok.text[1:-1].replace("''", "'")

    def _number(self) -> float:
        tok = self._next()
        if tok.kind != "number":
            raise PolicyParseError(
                f"expected a number at offset {tok.pos}, got {tok.text!r}"
            )
        value = float(tok.text)
        nxt = self._peek()
        if nxt is not None and nxt.kind == "word":
            unit = nxt.text.upper()
            if unit in _SIZE_UNITS:
                self.i += 1
                value *= _SIZE_UNITS[unit]
            elif unit in _AGE_UNITS:
                self.i += 1
                value *= _AGE_UNITS[unit]
        return value

    # -- rules ---------------------------------------------------------------
    def parse(self) -> list[Union[PlacementRule, MigrateRule, ListRule]]:
        rules = []
        while self._peek() is not None:
            rules.append(self._rule())
        if not rules:
            raise PolicyParseError("policy text contains no rules")
        return rules

    def _rule(self):
        self._expect("RULE")
        name = self._string()
        tok = self._next()
        if tok.text == "SET":
            self._expect("POOL")
            pool = self._string()
            where = self._opt_where()
            return PlacementRule(name, pool, where)
        if tok.text == "MIGRATE":
            self._expect("FROM")
            self._expect("POOL")
            from_pool = self._string()
            hi = lo = None
            if self._accept("THRESHOLD"):
                self._expect("(")
                hi = self._number()
                self._expect(",")
                lo = self._number()
                self._expect(")")
            self._expect("TO")
            self._expect("POOL")
            to_pool = self._string()
            weight = None
            if self._accept("WEIGHT"):
                self._expect("(")
                weight = self._value_expr()
                self._expect(")")
            where = self._opt_where()
            return MigrateRule(
                name, from_pool, to_pool, where=where,
                threshold_high=hi, threshold_low=lo, weight=weight,
            )
        if tok.text == "LIST":
            list_name = self._string()
            where = self._opt_where()
            return ListRule(name, list_name, where)
        raise PolicyParseError(
            f"expected SET/MIGRATE/LIST at offset {tok.pos}, got {tok.text!r}"
        )

    def _opt_where(self) -> Optional[Predicate]:
        if self._accept("WHERE"):
            return self._or_expr()
        return None

    # -- boolean expressions --------------------------------------------------
    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        while self._accept("OR"):
            right = self._and_expr()
            left = (lambda l, r: lambda p, i, now: l(p, i, now) or r(p, i, now))(
                left, right
            )
        return left

    def _and_expr(self) -> Predicate:
        left = self._not_expr()
        while self._accept("AND"):
            right = self._not_expr()
            left = (lambda l, r: lambda p, i, now: l(p, i, now) and r(p, i, now))(
                left, right
            )
        return left

    def _not_expr(self) -> Predicate:
        if self._accept("NOT"):
            inner = self._not_expr()
            return lambda p, i, now: not inner(p, i, now)
        return self._comparison()

    def _comparison(self) -> Predicate:
        if self._accept("("):
            inner = self._or_expr()
            self._expect(")")
            return inner
        if self._accept("TRUE"):
            return lambda p, i, now: True
        if self._accept("FALSE"):
            return lambda p, i, now: False
        left = self._value_expr()
        tok = self._next()
        if tok.text == "LIKE":
            pattern = self._string()
            regex = re.compile(
                "^" + re.escape(pattern).replace("%", ".*").replace("_", ".") + "$"
            )
            return lambda p, i, now: bool(regex.match(str(left(p, i, now))))
        if tok.text in ("=", "!=", "<>", "<", "<=", ">", ">="):
            right = self._value_expr()
            op = tok.text

            def cmp(p, i, now, left=left, right=right, op=op):
                a, b = left(p, i, now), right(p, i, now)
                if op == "=":
                    return a == b
                if op in ("!=", "<>"):
                    return a != b
                if op == "<":
                    return a < b
                if op == "<=":
                    return a <= b
                if op == ">":
                    return a > b
                return a >= b

            return cmp
        raise PolicyParseError(
            f"expected a comparison operator at offset {tok.pos}, "
            f"got {tok.text!r}"
        )

    # -- value expressions -----------------------------------------------------
    def _value_expr(self) -> Valuer:
        tok = self._peek()
        if tok is None:
            raise PolicyParseError("unexpected end of expression")
        if tok.kind == "number":
            value = self._number()
            return lambda p, i, now: value
        if tok.kind == "string":
            text = self._string()
            return lambda p, i, now: text
        word = self._next().text
        attr = _ATTRS.get(word)
        if attr is None:
            raise PolicyParseError(
                f"unknown attribute {word!r} at offset {tok.pos}"
            )
        return attr


_ATTRS: dict[str, Valuer] = {
    "FILE_SIZE": lambda p, i, now: i.size,
    "NAME": lambda p, i, now: p.rsplit("/", 1)[-1],
    "PATH_NAME": lambda p, i, now: p,
    "POOL_NAME": lambda p, i, now: i.pool or "",
    "USER_ID": lambda p, i, now: i.uid,
    "ACCESS_AGE": lambda p, i, now: now - i.atime,
    "MODIFICATION_AGE": lambda p, i, now: now - i.mtime,
    "CREATION_AGE": lambda p, i, now: now - i.ctime,
}


def parse_policy(text: str) -> list[Union[PlacementRule, MigrateRule, ListRule]]:
    """Parse policy *text* into rule objects ready for the engine.

    Placement rules go to :meth:`PolicyEngine.add_placement`; MIGRATE and
    LIST rules go to :meth:`PolicyEngine.apply`.
    """
    return _Parser(text).parse()
