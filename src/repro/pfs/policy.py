"""The GPFS ILM policy engine (placement, migration, list rules).

Rules hold Python predicates over ``(path, inode, now)`` — the moral
equivalent of GPFS's SQL-ish WHERE clauses — plus the structural fields
(source/target pool, thresholds, weight expression).

:meth:`PolicyEngine.apply` is a simulation process: it walks the inode
file at the measured GPFS metadata-scan rate (the paper quotes one
million inodes in ten minutes, §4.2.1) and evaluates every rule in one
pass, so experiment code pays a faithful scan cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.pfs.inode import HsmState, Inode
from repro.pfs.namespace import Namespace
from repro.sim import Environment, Event

__all__ = [
    "ListRule",
    "MigrateRule",
    "PlacementRule",
    "PolicyEngine",
    "PolicyHit",
    "PolicyResult",
]

Predicate = Callable[[str, Inode, float], bool]
Weight = Callable[[str, Inode, float], float]


@dataclass(frozen=True)
class PolicyHit:
    """One file selected by a rule."""

    path: str
    inode: Inode


@dataclass(frozen=True)
class PlacementRule:
    """``RULE name SET POOL pool WHERE where`` — consulted at create time."""

    name: str
    pool: str
    where: Optional[Predicate] = None

    def matches(self, path: str, inode: Inode, now: float) -> bool:
        return self.where is None or self.where(path, inode, now)


@dataclass(frozen=True)
class MigrateRule:
    """``RULE name MIGRATE FROM POOL src [THRESHOLD(hi,lo)] TO POOL dst``.

    With thresholds, the rule only fires when the source pool's occupancy
    exceeds ``threshold_high`` %, and selects files (heaviest first by
    *weight*) until occupancy would drop to ``threshold_low`` %.
    """

    name: str
    from_pool: str
    to_pool: str
    where: Optional[Predicate] = None
    threshold_high: Optional[float] = None
    threshold_low: Optional[float] = None
    weight: Optional[Weight] = None

    def matches(self, path: str, inode: Inode, now: float) -> bool:
        if not inode.is_file or inode.pool != self.from_pool:
            return False
        if inode.hsm_state is not HsmState.RESIDENT:
            return False  # already has a tape copy / is a stub
        return self.where is None or self.where(path, inode, now)


@dataclass(frozen=True)
class ListRule:
    """``RULE name LIST list_name WHERE where`` — emits candidate lists.

    The paper's parallel data migrator is driven from a LIST rule rather
    than GPFS's own MIGRATE execution (§4.2.4).
    """

    name: str
    list_name: str
    where: Optional[Predicate] = None

    def matches(self, path: str, inode: Inode, now: float) -> bool:
        if not inode.is_file:
            return False
        return self.where is None or self.where(path, inode, now)


@dataclass
class PolicyResult:
    """Outcome of one policy scan."""

    scanned: int = 0
    duration: float = 0.0
    lists: dict[str, list[PolicyHit]] = field(default_factory=dict)
    migrations: dict[str, list[PolicyHit]] = field(default_factory=dict)


#: The paper's measured GPFS scan speed: 1e6 inodes / 10 minutes.
PAPER_SCAN_RATE = 1_000_000 / 600.0


class PolicyEngine:
    """Evaluates rules against a namespace with a timed metadata scan."""

    def __init__(
        self,
        env: Environment,
        namespace: Namespace,
        scan_rate: float = PAPER_SCAN_RATE,
    ) -> None:
        if scan_rate <= 0:
            raise ValueError("scan_rate must be positive")
        self.env = env
        self.namespace = namespace
        self.scan_rate = scan_rate
        self.placement_rules: list[PlacementRule] = []
        self.default_pool: Optional[str] = None

    # -- placement (synchronous: consulted inline on create) -------------
    def add_placement(self, rule: PlacementRule) -> None:
        self.placement_rules.append(rule)

    def place(self, path: str, inode: Inode, now: float) -> Optional[str]:
        """First matching placement rule wins (GPFS semantics)."""
        for rule in self.placement_rules:
            if rule.matches(path, inode, now):
                return rule.pool
        return self.default_pool

    # -- scan-based rules ----------------------------------------------
    def apply(
        self,
        rules: Iterable[MigrateRule | ListRule],
        pool_occupancy: Optional[Callable[[str], float]] = None,
        pool_capacity: Optional[Callable[[str], float]] = None,
    ) -> Event:
        """Run a policy scan; event fires with a :class:`PolicyResult`.

        *pool_occupancy(name)* / *pool_capacity(name)* feed THRESHOLD
        evaluation for MIGRATE rules; omit them if no rule uses thresholds.
        """
        rules = list(rules)
        done = self.env.event()

        def _proc():
            t0 = self.env.now
            result = PolicyResult()
            n_entries = len(self.namespace)
            result.scanned = n_entries
            # Charge the scan as one block (GPFS scans are batch jobs).
            yield self.env.timeout(n_entries / self.scan_rate)
            now = self.env.now
            migrate_hits: dict[str, list[PolicyHit]] = {}
            # Stream the inode file instead of snapshotting it: the scan
            # holds rule hits only, never a full (path, inode) copy of
            # the namespace — the same bounded-memory treatment as the
            # sharded tape index's recall cursors.  Files created while
            # the timeout elapsed are scanned (a real GPFS scan also
            # sees what it reaches after its start).
            for path, inode in self.namespace.iter_inodes():
                for rule in rules:
                    if isinstance(rule, ListRule):
                        if rule.matches(path, inode, now):
                            result.lists.setdefault(rule.list_name, []).append(
                                PolicyHit(path, inode)
                            )
                    else:
                        if rule.matches(path, inode, now):
                            migrate_hits.setdefault(rule.name, []).append(
                                PolicyHit(path, inode)
                            )
            for rule in rules:
                if not isinstance(rule, MigrateRule):
                    continue
                hits = migrate_hits.get(rule.name, [])
                if rule.threshold_high is not None:
                    if pool_occupancy is None or pool_capacity is None:
                        raise ValueError(
                            f"rule {rule.name!r} has thresholds but no pool "
                            "occupancy/capacity callbacks were supplied"
                        )
                    occ = pool_occupancy(rule.from_pool) * 100.0
                    if occ <= rule.threshold_high:
                        result.migrations[rule.name] = []
                        continue
                    cap = pool_capacity(rule.from_pool)
                    target_used = (rule.threshold_low or 0.0) / 100.0 * cap
                    need_to_free = pool_occupancy(rule.from_pool) * cap - target_used
                    if rule.weight is not None:
                        hits = sorted(
                            hits,
                            key=lambda h: rule.weight(h.path, h.inode, now),
                            reverse=True,
                        )
                    chosen: list[PolicyHit] = []
                    freed = 0.0
                    for h in hits:
                        if freed >= need_to_free:
                            break
                        chosen.append(h)
                        freed += h.inode.resident_bytes
                    result.migrations[rule.name] = chosen
                else:
                    if rule.weight is not None:
                        hits = sorted(
                            hits,
                            key=lambda h: rule.weight(h.path, h.inode, now),
                            reverse=True,
                        )
                    result.migrations[rule.name] = hits
            result.duration = self.env.now - t0
            done.succeed(result)

        self.env.process(_proc(), name="policy-scan")
        return done
