"""Storage pools: classes of service for file data (GPFS ILM).

A *internal* pool owns disk arrays (optionally spread across NSD server
nodes); an *external* pool (GPFS 3.2 extension) is a named handle to an
HSM back end — data "in" an external pool lives on tape and the pool
object only carries the callback wiring.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.disksim import DiskArray
from repro.sim import SimulationError

__all__ = ["ExternalPool", "StoragePool"]


class StoragePool:
    """An internal (disk) storage pool.

    Parameters
    ----------
    name:
        Pool name referenced by policy rules (e.g. ``"fast"``, ``"slow"``).
    arrays:
        The disk arrays providing the capacity.
    server_nodes:
        Fabric node name serving each array (parallel list).  ``None``
        means data movement time is charged on the arrays only — useful
        for unit tests without a fabric.
    """

    is_external = False

    def __init__(
        self,
        name: str,
        arrays: Sequence[DiskArray],
        server_nodes: Optional[Sequence[str]] = None,
    ) -> None:
        if not arrays:
            raise SimulationError(f"pool {name!r} needs at least one array")
        if server_nodes is not None and len(server_nodes) != len(arrays):
            raise SimulationError(
                f"pool {name!r}: server_nodes must match arrays 1:1"
            )
        self.name = name
        self.arrays = list(arrays)
        self.server_nodes = list(server_nodes) if server_nodes else None

    @property
    def capacity_bytes(self) -> float:
        return sum(a.capacity_bytes for a in self.arrays)

    @property
    def used_bytes(self) -> float:
        return sum(a.used_bytes for a in self.arrays)

    @property
    def free_bytes(self) -> float:
        return sum(a.free_bytes for a in self.arrays)

    @property
    def occupancy(self) -> float:
        """Fraction of the pool in use (drives MIGRATE thresholds)."""
        cap = self.capacity_bytes
        return self.used_bytes / cap if cap else 0.0

    def server_of(self, index: int) -> Optional[str]:
        return self.server_nodes[index] if self.server_nodes else None

    def __repr__(self) -> str:
        return (
            f"<StoragePool {self.name!r} {len(self.arrays)} arrays "
            f"{self.occupancy*100:.1f}% full>"
        )


class ExternalPool:
    """An external pool: a policy target naming an HSM destination.

    GPFS itself never moves the bytes for an external pool; the policy
    engine emits candidate file lists and an external program (here the
    archive's migrator) does the work — matching §4.2.1's description.
    """

    is_external = True

    def __init__(self, name: str, manager: object = None) -> None:
        self.name = name
        #: opaque handle to the HSM manager owning this pool
        self.manager = manager

    def __repr__(self) -> str:
        return f"<ExternalPool {self.name!r}>"
