"""Hierarchical namespace over inodes.

Pure data structure (no simulated time) — the *time* of metadata
operations is charged by the callers that model them (e.g. the policy
engine's inode-scan rate, PFTool's readdir costs).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.pfs.inode import FileKind, Inode

__all__ = ["Namespace", "PathError"]


class PathError(OSError):
    """Raised for ENOENT / EEXIST / ENOTDIR / EISDIR-class failures."""


def split_path(path: str) -> list[str]:
    parts = [p for p in path.split("/") if p and p != "."]
    for p in parts:
        if p == "..":
            raise PathError(f"'..' not supported in archive paths: {path!r}")
    return parts


class Namespace:
    """A rooted tree of :class:`Inode` s with POSIX-flavoured operations."""

    def __init__(self, now: float = 0.0) -> None:
        self.root = Inode(FileKind.DIRECTORY, now)
        self._ino_index: dict[int, tuple[Inode, str]] = {
            self.root.ino: (self.root, "/")
        }
        self.n_files = 0
        self.n_dirs = 1

    # -- resolution --------------------------------------------------------
    def lookup(self, path: str) -> Inode:
        node = self.root
        for part in split_path(path):
            if not node.is_dir:
                raise PathError(f"not a directory on the way to {path!r}")
            child = node.children.get(part)
            if child is None:
                raise PathError(f"no such file or directory: {path!r}")
            node = child
        return node

    def exists(self, path: str) -> bool:
        try:
            self.lookup(path)
            return True
        except PathError:
            return False

    def by_ino(self, ino: int) -> Inode:
        try:
            return self._ino_index[ino][0]
        except KeyError:
            raise PathError(f"no inode {ino}") from None

    def path_of(self, ino: int) -> str:
        try:
            return self._ino_index[ino][1]
        except KeyError:
            raise PathError(f"no inode {ino}") from None

    def _parent_and_name(self, path: str) -> tuple[Inode, str]:
        parts = split_path(path)
        if not parts:
            raise PathError("cannot operate on the root directory")
        parent = self.root
        for part in parts[:-1]:
            child = parent.children.get(part) if parent.is_dir else None
            if child is None:
                raise PathError(f"no such directory component in {path!r}")
            parent = child
        if not parent.is_dir:
            raise PathError(f"parent of {path!r} is not a directory")
        return parent, parts[-1]

    # -- mutation ------------------------------------------------------
    def mkdir(self, path: str, now: float, parents: bool = False) -> Inode:
        if parents:
            parts = split_path(path)
            cur = ""
            node = self.root
            for part in parts:
                cur = f"{cur}/{part}"
                if node.is_dir and part in node.children:
                    node = node.children[part]
                    if not node.is_dir:
                        raise PathError(f"{cur!r} exists and is not a directory")
                else:
                    node = self.mkdir(cur, now)
            return node
        parent, name = self._parent_and_name(path)
        if name in parent.children:
            raise PathError(f"file exists: {path!r}")
        node = Inode(FileKind.DIRECTORY, now)
        parent.children[name] = node
        parent.nlink += 1
        self._index(node, path)
        self.n_dirs += 1
        return node

    def create(self, path: str, now: float, uid: str = "root") -> Inode:
        parent, name = self._parent_and_name(path)
        if name in parent.children:
            raise PathError(f"file exists: {path!r}")
        node = Inode(FileKind.FILE, now, uid=uid)
        parent.children[name] = node
        self._index(node, path)
        self.n_files += 1
        return node

    def unlink(self, path: str) -> Inode:
        parent, name = self._parent_and_name(path)
        node = parent.children.get(name)
        if node is None:
            raise PathError(f"no such file: {path!r}")
        if node.is_dir:
            if node.children:
                raise PathError(f"directory not empty: {path!r}")
            parent.nlink -= 1
            self.n_dirs -= 1
        else:
            self.n_files -= 1
        del parent.children[name]
        self._ino_index.pop(node.ino, None)
        return node

    def rename(self, src: str, dst: str) -> Inode:
        """Atomic move; refuses to clobber an existing destination or to
        move a directory into its own subtree (EINVAL, as POSIX)."""
        sparent, sname = self._parent_and_name(src)
        node = sparent.children.get(sname)
        if node is None:
            raise PathError(f"no such file: {src!r}")
        nsrc, ndst = self._norm(src), self._norm(dst)
        if node.is_dir and (ndst == nsrc or ndst.startswith(nsrc + "/")):
            raise PathError(
                f"cannot move {src!r} into its own subtree {dst!r}"
            )
        dparent, dname = self._parent_and_name(dst)
        if dname in dparent.children:
            raise PathError(f"destination exists: {dst!r}")
        del sparent.children[sname]
        dparent.children[dname] = node
        if node.is_dir:
            sparent.nlink -= 1
            dparent.nlink += 1
        self._reindex_subtree(node, self._norm(dst))
        return node

    # -- iteration -----------------------------------------------------
    def readdir(self, path: str) -> list[tuple[str, Inode]]:
        node = self.lookup(path)
        if not node.is_dir:
            raise PathError(f"not a directory: {path!r}")
        return sorted(node.children.items())

    def walk(
        self, path: str = "/", filter: Optional[Callable[[Inode], bool]] = None  # noqa: A002
    ) -> Iterator[tuple[str, Inode]]:
        """Depth-first traversal yielding (path, inode) for every entry."""
        start = self.lookup(path)
        base = self._norm(path)
        stack: list[tuple[str, Inode]] = [(base, start)]
        while stack:
            p, node = stack.pop()
            if filter is None or filter(node):
                yield p, node
            if node.is_dir:
                for name in sorted(node.children, reverse=True):
                    child = node.children[name]
                    cp = f"{p.rstrip('/')}/{name}"
                    stack.append((cp, child))

    def iter_inodes(self) -> Iterator[tuple[str, Inode]]:
        """Flat inode-order iteration — the GPFS fast metadata scan.

        Streaming and O(1)-memory: inos are allocated from a monotonic
        counter and ``_ino_index`` is insertion-ordered (creates append,
        renames overwrite in place, unlinks delete), so plain dict order
        *is* ino order — no sort, no materialised copy.  Like any dict
        iteration, the namespace must not gain or lose entries while a
        scan is open; scans run in zero simulated time, so only a caller
        that itself mutates mid-loop can trip this (and gets Python's
        RuntimeError rather than silent corruption).
        """
        for node, path in self._ino_index.values():
            yield path, node

    # -- internals -----------------------------------------------------
    @staticmethod
    def _norm(path: str) -> str:
        return "/" + "/".join(split_path(path))

    def _index(self, node: Inode, path: str) -> None:
        self._ino_index[node.ino] = (node, self._norm(path))

    def _reindex_subtree(self, node: Inode, new_path: str) -> None:
        self._ino_index[node.ino] = (node, new_path)
        if node.is_dir:
            for name, child in node.children.items():
                self._reindex_subtree(child, f"{new_path}/{name}")

    def __len__(self) -> int:
        return len(self._ino_index)

    def __repr__(self) -> str:
        return f"<Namespace files={self.n_files} dirs={self.n_dirs}>"
