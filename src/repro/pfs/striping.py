"""Block striping of file byte ranges across a pool's arrays.

GPFS stripes file blocks round-robin across the NSDs of the file's pool;
the stripe map below converts a byte range into per-array slices so the
filesystem can issue parallel I/O.  The starting array for a file is
derived from its inode number, spreading load across arrays even for
workloads of many small files.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["StripeLayout", "StripeSlice"]


@dataclass(frozen=True)
class StripeSlice:
    """A contiguous piece of an I/O destined for one array."""

    array_index: int
    nbytes: int


class StripeLayout:
    """Round-robin striping with a fixed block size.

    Parameters
    ----------
    n_arrays:
        Number of arrays in the target pool.
    block_size:
        Stripe unit in bytes (GPFS default class: 1 MiB; archives often
        use 4 MiB — the default here).
    """

    def __init__(self, n_arrays: int, block_size: int = 4 * 1024 * 1024) -> None:
        if n_arrays < 1:
            raise ValueError("need at least one array")
        if block_size < 1:
            raise ValueError("block size must be positive")
        self.n_arrays = n_arrays
        self.block_size = block_size

    def slices(self, ino: int, offset: int, nbytes: int) -> list[StripeSlice]:
        """Aggregate the byte range into one slice per participating array.

        Returns slices in array order; arrays receiving zero bytes are
        omitted.  The per-array totals are what the fluid I/O model needs
        (intra-file block ordering has no timing effect under fair
        sharing).
        """
        if offset < 0 or nbytes < 0:
            raise ValueError("offset/nbytes must be non-negative")
        offset = int(offset)
        nbytes = int(nbytes)
        if nbytes == 0:
            return []
        n = self.n_arrays
        block = self.block_size
        totals = [0] * n

        # Chunk 0 may be a partial block; the rest are full blocks plus an
        # optional trailing partial.  Closed-form distribution keeps this
        # O(n_arrays) regardless of the byte range.
        start_block = offset // block
        first = min(nbytes, block - (offset % block))
        start_arr = (ino + start_block) % n
        totals[start_arr] += first

        remaining = nbytes - first
        n_full, last = divmod(remaining, block)
        per_array, extra = divmod(n_full, n)
        if per_array:
            for i in range(n):
                totals[i] += per_array * block
        for k in range(extra):
            totals[(start_arr + 1 + k) % n] += block
        if last:
            totals[(start_arr + 1 + n_full) % n] += last
        return [StripeSlice(i, t) for i, t in enumerate(totals) if t > 0]

    def __repr__(self) -> str:
        return f"<StripeLayout arrays={self.n_arrays} block={self.block_size}>"
