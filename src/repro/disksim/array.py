"""A disk array as a fluid bandwidth server with seek latency and capacity.

The model deliberately stays at RAID-group granularity: an array has an
aggregate streaming bandwidth (sum of its spindles behind the controller),
a per-operation positioning latency (seek + rotation, amortised), and a
bounded command queue.  Concurrent operations share bandwidth max-min
fairly — implemented by delegating to a private two-node
:class:`~repro.netsim.fabric.Fabric`.

This is sufficient fidelity for the paper: disk only matters as (a) a rate
term that is usually *not* the bottleneck (FC4 HBAs and the Ethernet trunk
are), and (b) a capacity pool for ILM placement decisions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.netsim.fabric import Fabric
from repro.sim import Environment, Event, Resource, SimulationError

__all__ = ["DiskArray", "DiskOpResult"]


@dataclass
class DiskOpResult:
    """Completion record for one array read/write."""

    op: str
    nbytes: int
    start: float
    end: float
    queued: float  # time spent waiting for a queue slot
    tag: Any = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        d = self.duration
        return self.nbytes / d if d > 0 else float("inf")


class DiskArray:
    """One RAID array / LUN group.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Array label (used in stats and error messages).
    capacity_bytes:
        Usable capacity for space accounting.
    bandwidth:
        Aggregate streaming bandwidth in bytes/s.
    seek_time:
        Positioning latency charged once per operation (seconds).
    queue_depth:
        Maximum concurrent in-service operations; excess requests queue
        FIFO (models the controller's command queue).
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        capacity_bytes: float,
        bandwidth: float,
        seek_time: float = 0.008,
        queue_depth: int = 64,
    ) -> None:
        if capacity_bytes <= 0 or bandwidth <= 0:
            raise SimulationError(f"{name}: capacity and bandwidth must be positive")
        self.env = env
        self.name = name
        self.capacity_bytes = float(capacity_bytes)
        self.bandwidth = float(bandwidth)
        self.seek_time = float(seek_time)
        self.used_bytes = 0.0
        self._slots = Resource(env, capacity=queue_depth)
        # Private fluid server: host --(bandwidth)--> media.
        self._fab = Fabric(env, name=f"{name}-internal")
        self._fab.add_link("host", "media", capacity=self.bandwidth,
                           latency=0.0, duplex=True)
        # op counters for reporting
        self.reads = 0
        self.writes = 0
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # -- space accounting ------------------------------------------------
    @property
    def free_bytes(self) -> float:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, nbytes: float) -> None:
        """Reserve space (raises if the array would overflow)."""
        if nbytes < 0:
            raise SimulationError("allocate: negative size")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise SimulationError(
                f"{self.name}: out of space "
                f"({self.used_bytes + nbytes:.3e} > {self.capacity_bytes:.3e})"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise SimulationError("free: negative size")
        self.used_bytes = max(0.0, self.used_bytes - nbytes)

    # -- I/O ---------------------------------------------------------------
    def read(self, nbytes: float, tag: Any = None) -> Event:
        """Start a read of *nbytes*; returns event -> :class:`DiskOpResult`."""
        return self._io("read", nbytes, tag)

    def write(self, nbytes: float, tag: Any = None) -> Event:
        """Start a write of *nbytes*; returns event -> :class:`DiskOpResult`."""
        return self._io("write", nbytes, tag)

    def _io(self, op: str, nbytes: float, tag: Any) -> Event:
        if nbytes < 0:
            raise SimulationError(f"{op}: negative size")
        done = self.env.event()
        submitted = self.env.now

        def _proc() -> Iterable[Event]:
            with self._slots.request() as slot:
                yield slot
                start = self.env.now
                if self.seek_time > 0:
                    yield self.env.timeout(self.seek_time)
                if nbytes > 0:
                    src, dst = ("media", "host") if op == "read" else ("host", "media")
                    yield self._fab.transfer(src, dst, nbytes)
                end = self.env.now
            if op == "read":
                self.reads += 1
                self.bytes_read += nbytes
            else:
                self.writes += 1
                self.bytes_written += nbytes
            done.succeed(
                DiskOpResult(op, int(nbytes), start, end, start - submitted, tag)
            )

        self.env.process(_proc(), name=f"{self.name}-{op}")
        return done

    def __repr__(self) -> str:
        return (
            f"<DiskArray {self.name} {self.used_bytes/1e12:.2f}/"
            f"{self.capacity_bytes/1e12:.2f} TB used, {self.bandwidth/1e6:.0f} MB/s>"
        )
