"""Disk array simulation.

Models the archive's disk tiers (the 100 TB fast FC pool and the "slow"
SATA pool for small files) as bandwidth servers with per-operation
positioning latency and capacity accounting.  Contention between concurrent
readers/writers of one array is fluid fair-sharing, reusing the netsim
allocator machinery.
"""

from repro.disksim.array import DiskArray, DiskOpResult

__all__ = ["DiskArray", "DiskOpResult"]
