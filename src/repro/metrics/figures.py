"""Rendering figure series and paper-comparison tables as text."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.metrics.stats import describe

__all__ = ["comparison_table", "render_series"]


def render_series(
    title: str,
    values: Sequence[float],
    unit: str = "",
    log10: bool = False,
    width: int = 60,
) -> str:
    """ASCII sparkline + stats for one per-job series (a paper figure)."""
    arr = np.asarray(values, dtype=float)
    lines = [f"== {title} ({len(arr)} jobs) =="]
    if arr.size:
        plot = np.log10(np.maximum(arr, 1e-12)) if log10 else arr
        lo, hi = plot.min(), plot.max()
        span = (hi - lo) or 1.0
        glyphs = " .:-=+*#%@"
        row = "".join(
            glyphs[min(9, int((v - lo) / span * 9))] for v in plot[:width]
        )
        lines.append(f"  [{row}]" + ("  (log10 scale)" if log10 else ""))
        d = describe(arr)
        lines.append(
            f"  min={d['min']:.4g}{unit} max={d['max']:.4g}{unit} "
            f"mean={d['mean']:.4g}{unit} median={d['median']:.4g}{unit}"
        )
    return "\n".join(lines)


def comparison_table(
    rows: Iterable[tuple[str, float, float]],
    headers: tuple[str, str, str] = ("metric", "paper", "measured"),
) -> str:
    """Render (metric, paper value, measured value) rows with ratios."""
    out = [f"{headers[0]:<28} {headers[1]:>14} {headers[2]:>14} {'ratio':>8}"]
    out.append("-" * 68)
    for name, paper, measured in rows:
        ratio = measured / paper if paper else float("nan")
        out.append(f"{name:<28} {paper:>14.4g} {measured:>14.4g} {ratio:>8.3f}")
    return "\n".join(out)
