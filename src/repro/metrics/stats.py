"""Summary statistics over per-job series."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["describe", "geometric_mean", "log10_histogram"]


def describe(values: Iterable[float]) -> dict:
    """min / max / mean / median / p10 / p90 / count of a series."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return {k: 0.0 for k in ("min", "max", "mean", "median", "p10", "p90")} | {
            "count": 0
        }
    return {
        "count": int(arr.size),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p10": float(np.percentile(arr, 10)),
        "p90": float(np.percentile(arr, 90)),
    }


def geometric_mean(values: Iterable[float]) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    if np.any(arr <= 0):
        raise ValueError("geometric mean needs positive values")
    return float(np.exp(np.log(arr).mean()))


def log10_histogram(
    values: Iterable[float], bins: Sequence[float] | int = 10
) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of log10(values) — the scale Figures 8/9 plot on."""
    arr = np.asarray(list(values), dtype=float)
    if np.any(arr <= 0):
        raise ValueError("log10 histogram needs positive values")
    return np.histogram(np.log10(arr), bins=bins)
