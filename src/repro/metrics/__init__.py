"""Measurement helpers: summary statistics and figure-series rendering.

Benches use these to print the same rows/series the paper reports —
per-job log10 series for Figures 8/9/11, rate series for Figure 10, and
paper-vs-measured comparison tables for EXPERIMENTS.md.
"""

from repro.metrics.stats import describe, geometric_mean, log10_histogram
from repro.metrics.figures import comparison_table, render_series
from repro.metrics.timeseries import (
    PeriodicSampler,
    drive_busy_probe,
    link_utilization_probe,
    pool_occupancy_probe,
)

__all__ = [
    "PeriodicSampler",
    "comparison_table",
    "describe",
    "drive_busy_probe",
    "geometric_mean",
    "link_utilization_probe",
    "log10_histogram",
    "pool_occupancy_probe",
    "render_series",
]
