"""Periodic sampling of simulation state into time series.

Archive operators live on utilisation dashboards (trunk load, drives
mounted, pool fill).  :class:`PeriodicSampler` probes arbitrary
callables on an interval and accumulates ``(t, value)`` series; the
ready-made probes cover the quantities this reproduction's experiments
care about.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.sim import Environment

__all__ = [
    "PeriodicSampler",
    "drive_busy_probe",
    "link_utilization_probe",
    "pool_occupancy_probe",
]


class PeriodicSampler:
    """Samples named probes every *interval* simulated seconds.

    Starts immediately on construction; call :meth:`stop` to cease (the
    sampler otherwise keeps the simulation alive under ``env.run()``
    without ``until`` — so prefer ``env.run(until=...)`` or stop it).
    """

    def __init__(
        self,
        env: Environment,
        probes: Mapping[str, Callable[[], float]],
        interval: float = 1.0,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = interval
        self.probes = dict(probes)
        self.times: list[float] = []
        self.series: dict[str, list[float]] = {k: [] for k in self.probes}
        self._stopped = False
        env.process(self._run(), name="sampler")

    def _run(self):
        while not self._stopped:
            yield self.env.timeout(self.interval)
            if self._stopped:
                return
            self.times.append(self.env.now)
            for name, probe in self.probes.items():
                self.series[name].append(float(probe()))

    def stop(self) -> None:
        self._stopped = True

    # -- analysis -----------------------------------------------------------
    def as_array(self, name: str) -> np.ndarray:
        return np.asarray(self.series[name], dtype=float)

    def mean(self, name: str) -> float:
        arr = self.as_array(name)
        return float(arr.mean()) if arr.size else 0.0

    def peak(self, name: str) -> float:
        arr = self.as_array(name)
        return float(arr.max()) if arr.size else 0.0

    def time_above(self, name: str, threshold: float) -> float:
        """Seconds the probe spent at or above *threshold*."""
        arr = self.as_array(name)
        return float((arr >= threshold).sum()) * self.interval

    def __repr__(self) -> str:
        return (
            f"<PeriodicSampler probes={sorted(self.probes)} "
            f"samples={len(self.times)}>"
        )


def link_utilization_probe(fabric, link_name: str) -> Callable[[], float]:
    """Fraction of a link's capacity currently allocated to flows."""
    link = fabric.links[link_name]

    def probe() -> float:
        # iter_flows: live dict view, no per-sample list allocation
        used = sum(
            f.rate for f in fabric.iter_flows()
            if link in f.links and f.rate != float("inf")
        )
        return used / link.capacity if link.capacity else 0.0

    return probe


def drive_busy_probe(library) -> Callable[[], float]:
    """Fraction of the library's drives currently executing operations."""

    def probe() -> float:
        busy = sum(1 for d in library.drives if d.busy)
        return busy / len(library.drives) if library.drives else 0.0

    return probe


def pool_occupancy_probe(fs, pool_name: str) -> Callable[[], float]:
    """Storage pool fill fraction (the MIGRATE threshold driver)."""
    return lambda: fs.pool_occupancy(pool_name)
