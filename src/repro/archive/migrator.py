"""The size-balanced parallel data migrator (§4.2.4).

GPFS's own parallel migration neither balances by file size nor spreads
processes across machines — one node can end up with all the big files.
The paper instead drives migration from a LIST policy: candidates are
combined, **sorted by size and distributed evenly (by bytes) across
machines**, so every node's migration stream finishes at about the same
time.

The balancing is classic LPT (longest-processing-time-first) greedy:
sort descending by size, always hand the next file to the least-loaded
node — completion skew is bounded and small for archive-like size mixes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import heapq

from repro.faults import CrashFault
from repro.hsm import HsmManager
from repro.pfs.policy import PolicyHit
from repro.sim import AllOf, Environment, Event, Process, SimulationError

__all__ = ["BalancedMigrator", "MigrationReport"]


@dataclass
class MigrationReport:
    """Outcome of one migration round."""

    files: int = 0
    bytes: int = 0
    duration: float = 0.0
    #: node -> (files, bytes) assignment
    assignment: dict = field(default_factory=dict)
    #: per-node completion times (skew is what A3 measures)
    node_finish: dict = field(default_factory=dict)

    @property
    def skew(self) -> float:
        """max - min node completion time."""
        if not self.node_finish:
            return 0.0
        vals = list(self.node_finish.values())
        return max(vals) - min(vals)


class BalancedMigrator:
    """Distributes migration candidates across HSM nodes by bytes."""

    def __init__(self, env: Environment, hsm: HsmManager) -> None:
        self.env = env
        self.hsm = hsm
        #: in-flight round + watcher processes, for crash injection
        self._active: list[Process] = []

    def crash(self, cause=None) -> None:
        """Kill the in-flight migration round and its HSM batches.

        Models the migrator driver host dying mid-round: submitted TSM
        stores finish server-side, receipts are never applied, and the
        dangling leases in the HSM journal name the affected paths.
        """
        if not isinstance(cause, BaseException):
            cause = CrashFault(
                f"balanced migrator crashed at t={self.env.now:.1f}"
            )
        for proc in self._active:
            proc.kill(cause)
        self._active = []
        self.hsm.crash(cause)

    @staticmethod
    def partition(
        hits: Sequence[PolicyHit], nodes: Sequence[str]
    ) -> dict[str, list[PolicyHit]]:
        """LPT partition of *hits* over *nodes* (pure, unit-testable)."""
        if not nodes:
            raise SimulationError("no nodes to migrate from")
        heap = [(0, i, n) for i, n in enumerate(nodes)]
        heapq.heapify(heap)
        buckets: dict[str, list[PolicyHit]] = {n: [] for n in nodes}
        for hit in sorted(hits, key=lambda h: h.inode.size, reverse=True):
            load, i, node = heapq.heappop(heap)
            buckets[node].append(hit)
            heapq.heappush(heap, (load + hit.inode.size, i, node))
        return buckets

    def migrate(
        self,
        hits: Sequence[PolicyHit],
        aggregate: bool = False,
        punch: bool = True,
        nodes: Optional[Sequence[str]] = None,
    ) -> Event:
        """Run one balanced migration round; fires with a report."""
        done = self.env.event()
        nodes = list(nodes or self.hsm.nodes)
        hits = list(hits)

        def _proc():
            t0 = self.env.now
            report = MigrationReport()
            buckets = self.partition(hits, nodes)
            report.assignment = {
                n: (len(b), sum(h.inode.size for h in b))
                for n, b in buckets.items()
            }
            finish_events = []
            for node, bucket in buckets.items():
                if not bucket:
                    report.node_finish[node] = self.env.now
                    continue
                paths = [h.path for h in bucket]
                ev = self.hsm.migrate(
                    node, paths, aggregate=aggregate, punch=punch,
                    collocation_group=node,  # co-locate per stream (§4.2.2)
                )

                def _watch(ev=ev, node=node):
                    yield ev
                    report.node_finish[node] = self.env.now

                watcher = self.env.process(_watch())
                finish_events.append(watcher)
                self._active.append(watcher)
            if finish_events:
                yield AllOf(self.env, finish_events)
            report.files = sum(len(b) for b in buckets.values())
            report.bytes = sum(
                h.inode.size for b in buckets.values() for h in b
            )
            report.duration = self.env.now - t0
            done.succeed(report)

        proc = self.env.process(_proc(), name="balanced-migrate")
        self._active = [p for p in self._active if p.is_alive]
        self._active.append(proc)
        return done
