"""The integrated COTS Parallel Archive System (paper §4).

:class:`ParallelArchiveSystem` wires every substrate together exactly as
Figure 7 deploys them: the scratch parallel file system behind a
2x10GigE trunk, ten FTA nodes running PFTool, the archive GPFS with fast
and slow disk pools on five NSD servers, the 24-drive LTO-4 library with
LAN-free TSM, the MySQL-substitute tape index, ArchiveFUSE, the
trashcan + synchronous deleter, and the chroot command policy.

Operations: ``archive()`` (pfcp scratch->archive), ``retrieve()``
(pfcp archive->scratch with tape-ordered recall), ``pfls``/``pfcm``,
policy-driven ``migrate_to_tape()`` with the size-balanced parallel
migrator (§4.2.4), ``user_delete()``/``sweep_trash()`` (§4.2.6-4.2.7).
"""

from repro.archive.chroot import CommandPolicy
from repro.archive.deleter import SynchronousDeleter, Trashcan
from repro.archive.migrator import BalancedMigrator
from repro.archive.system import ArchiveParams, ParallelArchiveSystem

__all__ = [
    "ArchiveParams",
    "BalancedMigrator",
    "CommandPolicy",
    "ParallelArchiveSystem",
    "SynchronousDeleter",
    "Trashcan",
]
