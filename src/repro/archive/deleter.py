"""Trashcan + synchronous deleter (§4.2.6, §4.2.7).

Deleting a migrated file from GPFS alone orphans its tape object; the
classic fix (reconcile) walks everything and is unaffordable.  The
paper's design:

* users never unlink directly — the jail's ``rm`` **renames into a
  trashcan** (per-user, like the Windows Recycle Bin), from which
  ``undelete`` is possible;
* an administrative sweep lists trashcan entries by age/size via the
  GPFS policy engine and hands them to the **synchronous deleter**,
  which looks up the GPFS file id and the TSM object id (via the
  indexed tape DB) and deletes *both sides at the same time* — no
  orphans, no reconcile.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.pfs import GpfsFileSystem, PathError
from repro.sim import AllOf, Environment, Event, SimulationError
from repro.tapedb import TapeIndexDB
from repro.tsm import TsmServer

__all__ = ["SynchronousDeleter", "Trashcan"]


@dataclass
class TrashEntry:
    """Bookkeeping for one trashed path."""

    trash_path: str
    original_path: str
    user: str
    trashed_at: float
    size: int
    tsm_object_id: Optional[int]


class Trashcan:
    """Per-user trash directories on the archive file system."""

    def __init__(self, fs: GpfsFileSystem, root: str = "/.trash") -> None:
        self.fs = fs
        self.root = root
        fs.mkdir(root, parents=True)
        self._seq = itertools.count(1)
        self.entries: dict[str, TrashEntry] = {}

    def trash(self, path: str, user: str = "root") -> TrashEntry:
        """Move *path* into the user's trashcan (the jail's ``rm``)."""
        inode = self.fs.lookup(path)
        if inode.is_dir:
            raise SimulationError("trash operates on files (rm -r expands first)")
        udir = f"{self.root}/{user}"
        if not self.fs.exists(udir):
            self.fs.mkdir(udir, parents=True)
        tpath = f"{udir}/t{next(self._seq):08d}"
        self.fs.rename(path, tpath)
        entry = TrashEntry(
            trash_path=tpath,
            original_path=path,
            user=user,
            trashed_at=self.fs.env.now,
            size=inode.size,
            tsm_object_id=inode.tsm_object_id,
        )
        self.entries[tpath] = entry
        return entry

    def undelete(self, original_path: str) -> bool:
        """Restore the most recently trashed instance of *original_path*."""
        candidates = [
            e for e in self.entries.values() if e.original_path == original_path
        ]
        if not candidates:
            return False
        entry = max(candidates, key=lambda e: e.trashed_at)
        if self.fs.exists(original_path):
            raise SimulationError(f"cannot undelete over existing {original_path!r}")
        self.fs.rename(entry.trash_path, original_path)
        del self.entries[entry.trash_path]
        return True

    def list_older_than(self, age: float) -> list[TrashEntry]:
        """The policy-engine list feeding the sweep (age-based)."""
        now = self.fs.env.now
        return sorted(
            (e for e in self.entries.values() if now - e.trashed_at >= age),
            key=lambda e: e.trashed_at,
        )

    def pop(self, trash_path: str) -> Optional[TrashEntry]:
        return self.entries.pop(trash_path, None)

    def __len__(self) -> int:
        return len(self.entries)


class SynchronousDeleter:
    """Deletes file-system entry and tape object at the same time.

    Needs administrator powers: the GPFS file-id lookup and the TSM
    delete are privileged (§4.2.6), which is why user deletes go through
    the trashcan first.
    """

    def __init__(
        self,
        env: Environment,
        fs: GpfsFileSystem,
        tsm: TsmServer,
        tapedb: Optional[TapeIndexDB] = None,
        filespace: str = "archive",
    ) -> None:
        self.env = env
        self.fs = fs
        self.tsm = tsm
        self.tapedb = tapedb
        self.filespace = filespace
        self.deleted_files = 0
        self.deleted_objects = 0

    def delete_entries(self, entries: Sequence[TrashEntry]) -> Event:
        """Synchronously delete trashcan entries; fires with the count."""
        done = self.env.event()
        entries = list(entries)

        def _proc():
            count = 0
            for e in entries:
                oid = e.tsm_object_id
                if oid is None and self.tapedb is not None:
                    # deleted-then-exported files: resolve via the index
                    loc = self.tapedb.object_for_path(
                        self.filespace, e.original_path
                    )
                    oid = loc.object_id if loc else None
                ops = []
                try:
                    ops.append(self.fs.unlink_op(e.trash_path))
                except PathError:
                    pass
                if oid is not None:
                    ops.append(self.tsm.delete_object(oid))
                if ops:
                    yield AllOf(self.env, ops)
                if oid is not None:
                    self.deleted_objects += 1
                    if self.tapedb is not None:
                        self.tapedb.remove(oid)
                self.deleted_files += 1
                count += 1
            done.succeed(count)

        self.env.process(_proc(), name="sync-delete")
        return done

    def delete_path(self, path: str) -> Event:
        """Directly sync-delete a live path (admin shortcut, used for the
        overwrite-orphan case the FUSE layer intercepts)."""
        done = self.env.event()

        def _proc():
            try:
                inode = self.fs.lookup(path)
            except PathError:
                done.succeed(0)
                return
            oid = inode.tsm_object_id
            ops = [self.fs.unlink_op(path)]
            if oid is not None:
                ops.append(self.tsm.delete_object(oid))
            yield AllOf(self.env, ops)
            if oid is not None:
                self.deleted_objects += 1
                if self.tapedb is not None:
                    self.tapedb.remove(oid)
            self.deleted_files += 1
            done.succeed(1)

        self.env.process(_proc(), name="sync-delete-path")
        return done
