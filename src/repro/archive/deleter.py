"""Trashcan + synchronous deleter (§4.2.6, §4.2.7).

Deleting a migrated file from GPFS alone orphans its tape object; the
classic fix (reconcile) walks everything and is unaffordable.  The
paper's design:

* users never unlink directly — the jail's ``rm`` **renames into a
  trashcan** (per-user, like the Windows Recycle Bin), from which
  ``undelete`` is possible;
* an administrative sweep lists trashcan entries by age/size via the
  GPFS policy engine and hands them to the **synchronous deleter**,
  which looks up the GPFS file id and the TSM object id (via the
  indexed tape DB) and deletes *both sides* — no orphans, no reconcile.

Crash safety: "both sides at the same time" is not atomic when the
deleter itself can die between the GPFS unlink and the TSM delete.  The
deleter therefore runs a **two-phase** protocol against a durable
:class:`~repro.recovery.journal.JobJournal`::

    delete_intent  ->  GPFS unlink  ->  delete_fs_done
                   ->  TSM delete + tapedb remove  ->  delete_done

and only *then* drops the trashcan entry.  A crash leaves a dangling
intent naming exactly the file to reconcile — the
:class:`~repro.recovery.agent.RecoveryAgent` replays it with a targeted
tapedb lookup instead of an O(all files) walk.  Until ``delete_done``
the trashcan entry stays visible (with its ``tsm_object_id``); it is
merely marked in-flight so the next sweep does not double-delete it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.faults import CrashFault
from repro.pfs import GpfsFileSystem, PathError
from repro.recovery.journal import JobJournal
from repro.sim import Environment, Event, Process, SimulationError
from repro.tapedb import ShardedTapeIndex, TapeIndexDB
from repro.tsm import TsmServer

__all__ = ["SynchronousDeleter", "Trashcan"]


@dataclass
class TrashEntry:
    """Bookkeeping for one trashed path."""

    trash_path: str
    original_path: str
    user: str
    trashed_at: float
    size: int
    tsm_object_id: Optional[int]
    #: a two-phase delete of this entry is in flight (or died mid-way);
    #: the entry stays *visible* so recovery can find it, but sweeps and
    #: undelete skip it
    deleting: bool = field(default=False, compare=False)


class Trashcan:
    """Per-user trash directories on the archive file system."""

    def __init__(self, fs: GpfsFileSystem, root: str = "/.trash") -> None:
        self.fs = fs
        self.root = root
        fs.mkdir(root, parents=True)
        self._seq = itertools.count(1)
        self.entries: dict[str, TrashEntry] = {}

    def trash(self, path: str, user: str = "root") -> TrashEntry:
        """Move *path* into the user's trashcan (the jail's ``rm``)."""
        inode = self.fs.lookup(path)
        if inode.is_dir:
            raise SimulationError("trash operates on files (rm -r expands first)")
        udir = f"{self.root}/{user}"
        if not self.fs.exists(udir):
            self.fs.mkdir(udir, parents=True)
        tpath = f"{udir}/t{next(self._seq):08d}"
        self.fs.rename(path, tpath)
        entry = TrashEntry(
            trash_path=tpath,
            original_path=path,
            user=user,
            trashed_at=self.fs.env.now,
            size=inode.size,
            tsm_object_id=inode.tsm_object_id,
        )
        self.entries[tpath] = entry
        return entry

    def undelete(self, original_path: str) -> bool:
        """Restore the most recently trashed instance of *original_path*."""
        candidates = [
            e for e in self.entries.values()
            if e.original_path == original_path and not e.deleting
            and self.fs.exists(e.trash_path)
        ]
        if not candidates:
            return False
        entry = max(candidates, key=lambda e: e.trashed_at)
        if self.fs.exists(original_path):
            raise SimulationError(f"cannot undelete over existing {original_path!r}")
        self.fs.rename(entry.trash_path, original_path)
        del self.entries[entry.trash_path]
        return True

    def list_older_than(self, age: float) -> list[TrashEntry]:
        """The policy-engine list feeding the sweep (age-based).

        Entries whose two-phase delete is already in flight are excluded
        — they belong to the deleter (or, after a crash, to recovery).
        """
        now = self.fs.env.now
        return sorted(
            (
                e for e in self.entries.values()
                if now - e.trashed_at >= age and not e.deleting
            ),
            key=lambda e: e.trashed_at,
        )

    def mark_deleting(self, trash_path: str) -> None:
        entry = self.entries.get(trash_path)
        if entry is not None:
            entry.deleting = True

    def pop(self, trash_path: str) -> Optional[TrashEntry]:
        return self.entries.pop(trash_path, None)

    def __len__(self) -> int:
        return len(self.entries)


class SynchronousDeleter:
    """Deletes file-system entry and tape object under a two-phase intent.

    Needs administrator powers: the GPFS file-id lookup and the TSM
    delete are privileged (§4.2.6), which is why user deletes go through
    the trashcan first.
    """

    def __init__(
        self,
        env: Environment,
        fs: GpfsFileSystem,
        tsm: TsmServer,
        tapedb: Optional[TapeIndexDB | ShardedTapeIndex] = None,
        filespace: str = "archive",
        journal: Optional[JobJournal] = None,
        trashcan: Optional[Trashcan] = None,
    ) -> None:
        self.env = env
        self.fs = fs
        self.tsm = tsm
        self.tapedb = tapedb
        self.filespace = filespace
        #: the durable intent log; every mutation is bracketed by it
        self.journal = journal if journal is not None else JobJournal(env)
        self.trashcan = trashcan
        self.deleted_files = 0
        self.deleted_objects = 0
        self._active: list[Process] = []

    # -- crash model ---------------------------------------------------
    def crash(self, cause=None) -> None:
        """Kill every in-flight delete batch (the deleter host dies).

        Whatever phase each intent reached stays exactly as the journal
        recorded it; :class:`~repro.recovery.agent.RecoveryAgent` replays
        the dangling intents on restart.
        """
        if not isinstance(cause, BaseException):
            cause = CrashFault(
                f"deleter crashed at t={self.env.now:.1f}"
            )
        for proc in self._active:
            proc.kill(cause)
        self._active = []

    def _track(self, proc: Process) -> None:
        self._active = [p for p in self._active if p.is_alive]
        self._active.append(proc)

    # -- delete paths --------------------------------------------------
    def _resolve_oid(self, e: TrashEntry) -> Optional[int]:
        oid = e.tsm_object_id
        if oid is None and self.tapedb is not None:
            # deleted-then-exported files: resolve via the index
            loc = self.tapedb.object_for_path(self.filespace, e.original_path)
            oid = loc.object_id if loc else None
        return oid

    def delete_entries(
        self,
        entries: Sequence[TrashEntry],
        trashcan: Optional[Trashcan] = None,
    ) -> Event:
        """Two-phase delete of trashcan entries; fires with the count."""
        done = self.env.event()
        entries = list(entries)
        tc = trashcan if trashcan is not None else self.trashcan

        def _proc():
            count = 0
            for e in entries:
                oid = self._resolve_oid(e)
                intent_id = self.journal.delete_intent(
                    e.trash_path, e.original_path, oid
                )
                if tc is not None:
                    tc.mark_deleting(e.trash_path)
                tr = self.env.trace
                span = tr.begin(
                    "delete:two_phase", tid="deleter", cat="archive",
                    args={"trash_path": e.trash_path, "oid": oid},
                ) if tr.enabled else None
                # phase 1: file-system side
                try:
                    yield self.fs.unlink_op(e.trash_path)
                except PathError:
                    pass
                self.journal.delete_fs_done(intent_id)
                # phase 2: tape side
                if oid is not None:
                    ok = yield self.tsm.delete_object(oid)
                    if ok:
                        self.deleted_objects += 1
                    if self.tapedb is not None:
                        self.tapedb.remove(oid)
                self.journal.delete_done(intent_id)
                if tc is not None:
                    tc.pop(e.trash_path)
                self.deleted_files += 1
                count += 1
                if span is not None:
                    span.end()
            done.succeed(count)

        self._track(self.env.process(_proc(), name="sync-delete"))
        return done

    def delete_path(self, path: str) -> Event:
        """Directly sync-delete a live path (admin shortcut, used for the
        overwrite-orphan case the FUSE layer intercepts)."""
        done = self.env.event()

        def _proc():
            try:
                inode = self.fs.lookup(path)
            except PathError:
                done.succeed(0)
                return
            oid = inode.tsm_object_id
            intent_id = self.journal.delete_intent(path, path, oid)
            yield self.fs.unlink_op(path)
            self.journal.delete_fs_done(intent_id)
            if oid is not None:
                ok = yield self.tsm.delete_object(oid)
                if ok:
                    self.deleted_objects += 1
                if self.tapedb is not None:
                    self.tapedb.remove(oid)
            self.journal.delete_done(intent_id)
            self.deleted_files += 1
            done.succeed(1)

        self._track(self.env.process(_proc(), name="sync-delete-path"))
        return done

    def delete_orphan_objects(self, object_ids: Sequence[int]) -> Event:
        """Delete tape objects with no file-system side (overwrite
        orphans); still intent-bracketed so a crash mid-batch is found."""
        done = self.env.event()
        oids = list(object_ids)

        def _proc():
            count = 0
            for oid in oids:
                intent_id = self.journal.delete_intent("", "", oid)
                self.journal.delete_fs_done(intent_id)  # no fs side
                ok = yield self.tsm.delete_object(oid)
                if ok:
                    self.deleted_objects += 1
                if self.tapedb is not None:
                    self.tapedb.remove(oid)
                self.journal.delete_done(intent_id)
                count += 1
            done.succeed(count)

        self._track(self.env.process(_proc(), name="sync-delete-orphans"))
        return done
