"""The chroot-jail command policy (§4.2.3).

The archive's login environment is a chroot with a curated command set:
tape-aware tools (pfls/pfcp/pfcm) are in; indiscriminate file scanners
("the grep from &*&(*&", §3.1 issue 1) are out, because they would
recall files from tape in arbitrary order and thrash the drives.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["CommandPolicy"]

#: commands the paper's jail exposes (file management is "all free")
DEFAULT_ALLOWED = frozenset(
    {
        "ls", "cp", "mv", "rm", "mkdir", "rmdir", "tar", "cat", "stat",
        "pfls", "pfcp", "pfcm", "pfdu", "undelete",
    }
)

#: commands that scan file *contents* indiscriminately — tape poison
DEFAULT_DENIED = frozenset({"grep", "egrep", "fgrep", "find -exec", "md5sum -r"})


class CommandPolicy:
    """Allow/deny decisions for user commands inside the jail."""

    def __init__(
        self,
        allowed: Iterable[str] = DEFAULT_ALLOWED,
        denied: Iterable[str] = DEFAULT_DENIED,
    ) -> None:
        self.allowed = frozenset(allowed)
        self.denied = frozenset(denied)

    def is_allowed(self, command: str) -> bool:
        name = command.strip().split()[0] if command.strip() else ""
        if command.strip() in self.denied or name in self.denied:
            return False
        return name in self.allowed

    def check(self, command: str) -> None:
        """Raise :class:`PermissionError` for a denied command."""
        if not self.is_allowed(command):
            raise PermissionError(
                f"command not available in the archive jail: {command!r} "
                "(use the tape-aware pfls/pfcp/pfcm tools)"
            )

    def __repr__(self) -> str:
        return f"<CommandPolicy {len(self.allowed)} allowed>"
