"""End-to-end construction of the COTS Parallel Archive System.

Matches the deployment in §4.3.1 / Figure 7:

* scratch parallel file system (Panasas-class) reached over a trunk of
  two 10GigE links;
* ten FTA nodes running PFTool (mount both file systems; FC4 HBAs);
* archive GPFS: 100 TB fast FC pool across five NSD servers + a slow
  pool for small files, ILM placement rules;
* 24 LTO-4 drives, LAN-free TSM, one TSM server;
* tape index DB (the MySQL export) + periodic exporter;
* ArchiveFUSE, trashcan, synchronous deleter, chroot jail, LoadManager.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.archive.chroot import CommandPolicy
from repro.archive.deleter import SynchronousDeleter, Trashcan
from repro.archive.migrator import BalancedMigrator
from repro.disksim import DiskArray
from repro.faults import FaultInjector, FaultPlan
from repro.fusefs import ArchiveFuseFS
from repro.hsm import HsmManager
from repro.netsim.topology import ArchiveSiteTopology, build_archive_site
from repro.pfs import (
    GpfsFileSystem,
    ListRule,
    PlacementRule,
    StoragePool,
)
from repro.pftool import (
    LoadManager,
    PftoolConfig,
    PftoolJob,
    RuntimeContext,
    pfcm,
    pfcp,
    pfdu,
    pfls,
)
from repro.recovery.journal import JobJournal
from repro.sim import Environment, Event
from repro.tapedb import ShardedTapeIndex, TapeIndexDB, TsmDbExporter
from repro.tapesim import TapeLibrary, TapeSpec
from repro.tsm import TsmServer

__all__ = ["ArchiveParams", "ParallelArchiveSystem"]

TB = 1_000_000_000_000
GB = 1_000_000_000
MB = 1_000_000


@dataclass
class ArchiveParams:
    """Sizing knobs; defaults reproduce the paper's site."""

    n_fta: int = 10
    n_disk_servers: int = 5
    n_tape_drives: int = 24
    trunk_links: int = 2
    fast_pool_tb: float = 100.0
    slow_pool_tb: float = 20.0
    scratch_pb: float = 2.0
    scratch_bw: float = 10_000 * MB
    fast_array_bw: float = 800 * MB
    slow_array_bw: float = 300 * MB
    tape_spec: TapeSpec = field(default_factory=TapeSpec)
    n_scratch_tapes: int = 500
    recall_routing: str = "naive"
    handoff_penalty: bool = True
    #: files below this placed on the slow pool (§4.2.1)
    small_file_cutoff: int = 1 * MB
    metadata_op_time: float = 0.0005
    tsm_txn_time: float = 0.005
    filespace: str = "archive"
    #: tape-index shards (>1 = ShardedTapeIndex behind a token-range
    #: router; 1 = the paper's monolithic export).  Sharding is
    #: result-transparent — recall order and lookup answers are
    #: byte-identical either way (proven by the shard property suite) —
    #: so the default exercises the scaled metadata plane everywhere.
    tapedb_shards: int = 4
    #: hot-entry LRU in front of the shards (0 disables)
    tapedb_cache_entries: int = 4096


class ParallelArchiveSystem:
    """Everything Figure 7 shows, wired and ready to run jobs.

    *monitor* is an optional
    :class:`repro.analysis.monitor.InvariantMonitor`; when given, every
    PFTool job launched through this site runs under message/work
    conservation and queue-ownership checking.
    """

    def __init__(
        self,
        env: Environment,
        params: Optional[ArchiveParams] = None,
        monitor=None,
        journal: Optional[JobJournal] = None,
    ):
        self.env = env
        self.params = p = params or ArchiveParams()
        self.monitor = monitor
        #: site-wide intent journal: two-phase delete intents and HSM
        #: migration leases land here; per-job copy journals are separate
        #: (pass ``journal=`` to :meth:`archive` / :meth:`retrieve`).
        self.journal = journal if journal is not None else JobJournal(env)

        # -- fabric --------------------------------------------------------
        self.topology: ArchiveSiteTopology = build_archive_site(
            env,
            n_fta=p.n_fta,
            n_disk_servers=p.n_disk_servers,
            n_tape_drives=p.n_tape_drives,
            trunk_links=p.trunk_links,
            scratch_bw=p.scratch_bw,
        )
        fabric = self.topology.fabric

        # -- scratch file system (Panasas-class, outside the archive) ------
        self.scratch_fs = GpfsFileSystem(
            env, "scratch-panfs", fabric=fabric,
            metadata_op_time=p.metadata_op_time,
        )
        scratch_arrays = [
            DiskArray(
                env, "scratch-shelf", capacity_bytes=p.scratch_pb * 1000 * TB,
                bandwidth=p.scratch_bw, seek_time=0.002,
            )
        ]
        self.scratch_fs.add_pool(
            StoragePool("scratch", scratch_arrays, server_nodes=["scratch"]),
            default=True,
        )

        # -- archive GPFS ----------------------------------------------------
        self.archive_fs = GpfsFileSystem(
            env, "archive-gpfs", fabric=fabric,
            metadata_op_time=p.metadata_op_time,
        )
        per_server = p.fast_pool_tb * TB / p.n_disk_servers
        fast_arrays = [
            DiskArray(
                env, f"fast-{i}", capacity_bytes=per_server,
                bandwidth=p.fast_array_bw, seek_time=0.004,
            )
            for i in range(p.n_disk_servers)
        ]
        self.archive_fs.add_pool(
            StoragePool("fast", fast_arrays,
                        server_nodes=list(self.topology.disk_servers)),
            default=True,
        )
        slow_arrays = [
            DiskArray(
                env, "slow-0", capacity_bytes=p.slow_pool_tb * TB,
                bandwidth=p.slow_array_bw, seek_time=0.008,
            )
        ]
        self.archive_fs.add_pool(
            StoragePool("slow", slow_arrays,
                        server_nodes=[self.topology.disk_servers[0]])
        )
        self.archive_fs.policy.add_placement(
            PlacementRule(
                "small-files-to-slow-pool",
                "slow",
                lambda path, inode, now: 0 < inode.size < p.small_file_cutoff,
            )
        )
        self.archive_fs.policy.default_pool = "fast"

        # -- tape back end -----------------------------------------------------
        self.library = TapeLibrary(
            env,
            n_drives=p.n_tape_drives,
            fabric=fabric,
            drive_ports=list(self.topology.tape_drive_ports),
            spec=p.tape_spec,
            n_scratch=p.n_scratch_tapes,
            handoff_penalty=p.handoff_penalty,
        )
        self.tsm = TsmServer(
            env, self.library, server_node=self.topology.tsm_server,
            txn_time=p.tsm_txn_time,
        )
        self.hsm = HsmManager(
            env, self.archive_fs, self.tsm,
            nodes=list(self.topology.fta_nodes),
            filespace=p.filespace,
            recall_routing=p.recall_routing,
            journal=self.journal,
        )
        if p.tapedb_shards > 1:
            self.tapedb = ShardedTapeIndex(
                env,
                n_shards=p.tapedb_shards,
                cache_entries=p.tapedb_cache_entries,
            )
        else:
            self.tapedb = TapeIndexDB(env)
        self.exporter = TsmDbExporter(env, self.tsm, self.tapedb)

        # -- glue -------------------------------------------------------------
        self.fuse = ArchiveFuseFS(self.archive_fs)
        self.trashcan = Trashcan(self.archive_fs)
        self.deleter = SynchronousDeleter(
            env, self.archive_fs, self.tsm, self.tapedb, p.filespace,
            journal=self.journal, trashcan=self.trashcan,
        )
        self.migrator = BalancedMigrator(env, self.hsm)
        self.loadmanager = LoadManager(env, list(self.topology.fta_nodes))
        self.jail = CommandPolicy()
        #: armed by :meth:`inject_faults`; jobs consult it for message
        #: delivery through node-outage windows
        self.fault_injector: Optional[FaultInjector] = None

        # overwrite of migrated data: FUSE-intercepted chunks are renamed
        # to the trashcan elsewhere; plain-file overwrites are recorded so
        # the sweep can sync-delete the stale object (no reconcile needed).
        self.overwrite_orphans: list[int] = []
        self.archive_fs.on_overwrite.append(
            lambda path, inode, stale: (
                self.overwrite_orphans.append(stale) if stale is not None else None
            )
        )

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def inject_faults(self, plan: FaultPlan, health=None) -> FaultInjector:
        """Arm *plan* against this site's library, TSM server, tape
        index and both file systems; returns the armed
        :class:`FaultInjector` (its ``injected`` dict reports what
        actually fired).  *health* is an optional
        :class:`~repro.health.HealthView` that gets every recorded fault
        as an ``on_fault`` observation.  The injector is remembered on
        the site so jobs launched afterwards route their rank messaging
        through its node-outage windows."""
        self.fault_injector = FaultInjector(
            self.env,
            plan,
            library=self.library,
            tsm=self.tsm,
            filesystems=(self.archive_fs, self.scratch_fs),
            tapedb=self.tapedb,
            health=health,
        ).arm()
        return self.fault_injector

    # ------------------------------------------------------------------
    # PFTool entry points (jail-approved commands)
    # ------------------------------------------------------------------
    def _ctx(self, direction: str) -> RuntimeContext:
        nodes = self.loadmanager.machine_list()
        if direction == "in":  # scratch -> archive
            return RuntimeContext(
                src_fs=self.scratch_fs,
                dst_fs=self.archive_fs,
                nodes=nodes,
                fuse=self.fuse,
                hsm=self.hsm,
                tsm=self.tsm,
                tapedb=self.tapedb,
                filespace=self.params.filespace,
                monitor=self.monitor,
                fault_injector=self.fault_injector,
            )
        return RuntimeContext(
            src_fs=self.archive_fs,
            dst_fs=self.scratch_fs,
            nodes=nodes,
            fuse=self.fuse,
            hsm=self.hsm,
            tsm=self.tsm,
            tapedb=self.tapedb,
            filespace=self.params.filespace,
            monitor=self.monitor,
            fault_injector=self.fault_injector,
        )

    def archive(
        self, src: str, dst: str, cfg: Optional[PftoolConfig] = None,
        journal: Optional[JobJournal] = None,
    ) -> PftoolJob:
        """``pfcp`` scratch -> archive."""
        return pfcp(self.env, self._ctx("in"), src, dst, cfg, journal=journal)

    def retrieve(
        self, src: str, dst: str, cfg: Optional[PftoolConfig] = None,
        journal: Optional[JobJournal] = None,
    ) -> PftoolJob:
        """``pfcp`` archive -> scratch (tape-aware ordered recall)."""
        return pfcp(self.env, self._ctx("out"), src, dst, cfg, journal=journal)

    def resume_job(
        self, journal: JobJournal, cfg: Optional[PftoolConfig] = None
    ) -> PftoolJob:
        """Restart a crashed ``pfcp`` from its journal.

        Direction is recovered from the journal's job-open record; the
        resumed job dedupes every chunk/file the journal already names.
        """
        meta = journal.job_meta
        if meta is None:
            raise ValueError("journal has no job-open record to resume from")
        direction = "in" if meta.get("src_fs") == self.scratch_fs.name else "out"
        return PftoolJob.resume(self.env, self._ctx(direction), journal, cfg)

    def recover(self) -> Event:
        """Post-crash recovery over the site journal: replay dangling
        two-phase delete intents and adopt orphaned migration leases.
        Fires with a :class:`~repro.recovery.agent.RecoveryReport`."""
        from repro.recovery.agent import RecoveryAgent

        return RecoveryAgent(
            self.env,
            self.journal,
            self.archive_fs,
            self.tsm,
            tapedb=self.tapedb,
            trashcan=self.trashcan,
            filespace=self.params.filespace,
        ).recover()

    def list_archive(self, path: str, cfg: Optional[PftoolConfig] = None) -> PftoolJob:
        """``pfls`` over the archive namespace."""
        return pfls(self.env, self._ctx("out"), path, cfg)

    def du(self, path: str, cfg: Optional[PftoolConfig] = None) -> PftoolJob:
        """``pfdu`` over the archive namespace (tape-safe parallel du)."""
        return pfdu(self.env, self._ctx("out"), path, cfg)

    def compare(
        self, src: str, dst: str, cfg: Optional[PftoolConfig] = None
    ) -> PftoolJob:
        """``pfcm`` scratch vs archive byte-content verification."""
        return pfcm(self.env, self._ctx("in"), src, dst, cfg)

    # ------------------------------------------------------------------
    # ILM-driven migration to tape
    # ------------------------------------------------------------------
    def migrate_to_tape(
        self,
        where=None,
        aggregate: bool = False,
        punch: bool = True,
    ) -> Event:
        """LIST-policy scan + size-balanced parallel migration (§4.2.4).

        Fires with a :class:`~repro.archive.migrator.MigrationReport`.
        *where* is an optional extra predicate over (path, inode, now).
        """
        done = self.env.event()

        def _cond(path, inode, now):
            if not inode.is_file or inode.tsm_object_id is not None:
                return False
            if path.startswith("/.trash"):
                return False  # doomed data migrates nowhere
            if "__fuse__" in inode.xattrs or inode.size == 0:
                return False  # fuse manifests / empty files carry no data
            if "__packed_in__" in inode.xattrs:
                return False  # packed members: the container carries the data
            return where is None or where(path, inode, now)

        def _proc():
            res = yield self.archive_fs.policy.apply(
                [ListRule("migration-candidates", "tape", _cond)]
            )
            hits = res.lists.get("tape", [])
            report = yield self.migrator.migrate(
                hits, aggregate=aggregate, punch=punch
            )
            yield self.exporter.run_once()  # refresh the tape index
            done.succeed(report)

        self.env.process(_proc(), name="migrate-to-tape")
        return done

    def apply_policy_text(self, text: str) -> Event:
        """Run a GPFS-style policy file against the archive (the
        ``mmapplypolicy`` workflow).

        Placement (SET POOL) rules are installed on the archive's policy
        engine; MIGRATE rules targeting the external ``'hsm'`` pool (or
        any unknown pool) have their candidates migrated to tape via the
        balanced migrator; LIST rules just return their lists.  Fires
        with ``(PolicyResult, list[MigrationReport])``.
        """
        from repro.pfs import MigrateRule, PlacementRule, parse_policy

        rules = parse_policy(text)
        done = self.env.event()
        scan_rules = []
        for rule in rules:
            if isinstance(rule, PlacementRule):
                self.archive_fs.policy.add_placement(rule)
            else:
                scan_rules.append(rule)

        def _proc():
            reports = []
            result = None
            if scan_rules:
                result = yield self.archive_fs.policy.apply(
                    scan_rules,
                    pool_occupancy=self.archive_fs.pool_occupancy,
                    pool_capacity=self.archive_fs.pool_capacity,
                )
                for rule in scan_rules:
                    if not isinstance(rule, MigrateRule):
                        continue
                    hits = result.migrations.get(rule.name, [])
                    if rule.to_pool in self.archive_fs.pools or not hits:
                        continue  # internal pool moves are out of scope
                    report = yield self.migrator.migrate(hits)
                    yield self.exporter.run_once()
                    reports.append(report)
            done.succeed((result, reports))

        self.env.process(_proc(), name="apply-policy-text")
        return done

    # ------------------------------------------------------------------
    # delete path (jail rm -> trashcan -> sweep)
    # ------------------------------------------------------------------
    def user_delete(self, path: str, user: str = "root"):
        """The jail's ``rm``: move to the trashcan (undelete-able)."""
        return self.trashcan.trash(path, user)

    def undelete(self, path: str) -> bool:
        return self.trashcan.undelete(path)

    def sweep_trash(self, min_age: float = 0.0) -> Event:
        """Sync-delete trashcan entries older than *min_age* plus any
        overwrite orphans; fires with the number of deletions."""
        done = self.env.event()

        def _proc():
            # Entries stay in the trashcan until the deleter's two-phase
            # protocol reaches DONE — popping them here would lose the
            # tsm_object_id if the deleter died between the GPFS unlink
            # and the TSM delete (the satellite-1 accounting bug).
            entries = self.trashcan.list_older_than(min_age)
            n = 0
            if entries:
                n = yield self.deleter.delete_entries(entries)
            # stale objects from plain-file overwrites — intent-bracketed
            # through the deleter so a crash mid-batch is recoverable
            orphans, self.overwrite_orphans = self.overwrite_orphans, []
            if orphans:
                n += yield self.deleter.delete_orphan_objects(orphans)
            done.succeed(n)

        self.env.process(_proc(), name="trash-sweep")
        return done

    def __repr__(self) -> str:
        return (
            f"<ParallelArchiveSystem fta={self.params.n_fta} "
            f"drives={self.params.n_tape_drives}>"
        )
