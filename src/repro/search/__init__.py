"""Multi-dimensional metadata search over the archive namespace.

The paper's stated future work (§7): "enhance the proposed COTS Parallel
Archive System with the multi-dimensional metadata searching
capabilities."  This package implements it: an indexed catalogue of the
archive namespace (size, owner, age, pool, HSM state, name patterns,
user tags) built from a GPFS fast metadata scan and queried along any
combination of dimensions — without recalling a single byte from tape.

That last property is the point: the jail bans ``grep`` because content
scans thrash tape (§4.2.3); metadata search answers the questions users
actually grep for ("where are alice's checkpoint files from March?")
from the catalogue alone.
"""

from repro.search.catalog import MetadataCatalog, Query, SearchHit

__all__ = ["MetadataCatalog", "Query", "SearchHit"]
