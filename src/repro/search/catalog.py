"""The metadata catalogue: build from a scan, query along any dimension.

Implementation: one row per file in an indexed :class:`~repro.tapedb.Table`
(hash indexes on owner/pool/state, sorted indexes on size and mtime), a
tiny planner that starts from the most selective indexed dimension, and
residual predicate filtering for the rest.  Build time is charged at the
GPFS inode-scan rate; queries charge a per-row retrieval cost so that
benchmarks see realistic catalogue behaviour.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Optional

from repro.pfs import GpfsFileSystem
from repro.pfs.policy import PAPER_SCAN_RATE
from repro.sim import Environment, Event
from repro.tapedb.engine import Table

__all__ = ["MetadataCatalog", "Query", "SearchHit"]


@dataclass(frozen=True)
class Query:
    """A multi-dimensional search.

    Unset dimensions are unconstrained.  ``name_glob`` uses shell
    wildcards; ``tag`` matches user tags attached via
    :meth:`MetadataCatalog.tag`.
    """

    owner: Optional[str] = None
    pool: Optional[str] = None
    hsm_state: Optional[str] = None
    size_min: Optional[int] = None
    size_max: Optional[int] = None
    modified_after: Optional[float] = None
    modified_before: Optional[float] = None
    name_glob: Optional[str] = None
    path_prefix: Optional[str] = None
    tag: Optional[str] = None


@dataclass(frozen=True)
class SearchHit:
    path: str
    ino: int
    size: int
    owner: str
    mtime: float
    pool: str
    hsm_state: str
    tags: tuple[str, ...] = ()


class MetadataCatalog:
    """Indexed search over one file system's namespace.

    Parameters
    ----------
    env, fs:
        Environment and the file system to catalogue.
    scan_rate:
        Inodes per second for (re)builds — defaults to the paper's
        measured GPFS scan speed (1M inodes / 10 min).
    row_cost:
        Simulated cost per candidate row examined at query time.
    """

    def __init__(
        self,
        env: Environment,
        fs: GpfsFileSystem,
        scan_rate: float = PAPER_SCAN_RATE,
        row_cost: float = 2e-6,
    ) -> None:
        self.env = env
        self.fs = fs
        self.scan_rate = scan_rate
        self.row_cost = row_cost
        self.table = Table(
            "catalog",
            columns=("ino", "path", "size", "owner", "mtime", "pool",
                     "state", "tags"),
            primary_key="ino",
        )
        self.table.create_index("by_owner", ("owner",))
        self.table.create_index("by_pool", ("pool",))
        self.table.create_index("by_state", ("state",))
        self.table.create_index("by_size", ("size",))
        self.table.create_index("by_mtime", ("mtime",))
        self.built_at: Optional[float] = None
        self.builds = 0
        self.queries = 0

    # ------------------------------------------------------------------
    # build / maintain
    # ------------------------------------------------------------------
    def build(self) -> Event:
        """(Re)build the catalogue from a fast metadata scan.

        Fires with the number of files catalogued.
        """
        done = self.env.event()

        def _proc():
            entries = [
                (p, n) for p, n in self.fs.namespace.iter_inodes() if n.is_file
            ]
            yield self.env.timeout(len(entries) / self.scan_rate)
            # full rebuild: replace rows (keep user tags across rebuilds)
            old_tags = {
                row["ino"]: row["tags"] for row in self.table.scan()
                if row["tags"]
            }
            for row in list(self.table.scan()):
                self.table.delete(row["ino"])
            for path, inode in entries:
                self.table.insert(
                    {
                        "ino": inode.ino,
                        "path": path,
                        "size": inode.size,
                        "owner": inode.uid,
                        "mtime": inode.mtime,
                        "pool": inode.pool or "",
                        "state": inode.hsm_state.value,
                        "tags": old_tags.get(inode.ino, ()),
                    }
                )
            self.built_at = self.env.now
            self.builds += 1
            done.succeed(len(entries))

        self.env.process(_proc(), name="catalog-build")
        return done

    def tag(self, path: str, *tags: str) -> None:
        """Attach user tags ("campaign:2009Q3", "published") to a file."""
        inode = self.fs.lookup(path)
        row = self.table.get(inode.ino)
        if row is None:
            raise KeyError(f"{path!r} is not in the catalogue (rebuild?)")
        merged = tuple(sorted(set(row["tags"]) | set(tags)))
        self.table.update(inode.ino, tags=merged)

    def __len__(self) -> int:
        return len(self.table)

    # ------------------------------------------------------------------
    # query
    # ------------------------------------------------------------------
    def search(self, query: Query) -> Event:
        """Run a search; fires with a list of :class:`SearchHit` (sorted
        by path) after charging planner + row-visit time."""
        done = self.env.event()

        def _proc():
            self.queries += 1
            rows = self._candidates(query)
            yield self.env.timeout(0.001 + self.row_cost * len(rows))
            hits = [
                SearchHit(
                    path=r["path"], ino=r["ino"], size=r["size"],
                    owner=r["owner"], mtime=r["mtime"], pool=r["pool"],
                    hsm_state=r["state"], tags=tuple(r["tags"]),
                )
                for r in rows
                if self._residual_ok(r, query)
            ]
            hits.sort(key=lambda h: h.path)
            done.succeed(hits)

        self.env.process(_proc(), name="catalog-search")
        return done

    # -- planner -----------------------------------------------------------
    def _candidates(self, q: Query) -> list[dict]:
        """Pick the most selective indexed dimension as the driver."""
        if q.owner is not None:
            return self.table.select_eq("by_owner", q.owner)
        if q.tag is not None:
            # tags are not indexed (low cardinality sets); full scan
            return list(self.table.scan())
        if q.hsm_state is not None:
            return self.table.select_eq("by_state", q.hsm_state)
        if q.size_min is not None or q.size_max is not None:
            lo = (q.size_min,) if q.size_min is not None else None
            hi = (q.size_max + 1,) if q.size_max is not None else None
            return self.table.select_range("by_size", lo, hi)
        if q.modified_after is not None or q.modified_before is not None:
            lo = (q.modified_after,) if q.modified_after is not None else None
            hi = (q.modified_before,) if q.modified_before is not None else None
            return self.table.select_range("by_mtime", lo, hi)
        if q.pool is not None:
            return self.table.select_eq("by_pool", q.pool)
        return list(self.table.scan())

    @staticmethod
    def _residual_ok(row: dict, q: Query) -> bool:
        if q.owner is not None and row["owner"] != q.owner:
            return False
        if q.pool is not None and row["pool"] != q.pool:
            return False
        if q.hsm_state is not None and row["state"] != q.hsm_state:
            return False
        if q.size_min is not None and row["size"] < q.size_min:
            return False
        if q.size_max is not None and row["size"] > q.size_max:
            return False
        if q.modified_after is not None and row["mtime"] < q.modified_after:
            return False
        if q.modified_before is not None and row["mtime"] > q.modified_before:
            return False
        if q.name_glob is not None:
            name = row["path"].rsplit("/", 1)[-1]
            if not fnmatch.fnmatch(name, q.name_glob):
                return False
        if q.path_prefix is not None and not row["path"].startswith(q.path_prefix):
            return False
        if q.tag is not None and q.tag not in row["tags"]:
            return False
        return True

    def __repr__(self) -> str:
        return f"<MetadataCatalog files={len(self)} builds={self.builds}>"
