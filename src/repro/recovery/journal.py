"""The durable job journal: write-ahead intents and completion records.

PFTool's chunked transfers are restartable *only* if something remembers
which chunks landed; the synchronous deleter is crash-safe *only* if the
GPFS unlink and the TSM delete are bracketed by a durable intent; an HSM
migration batch killed between the TSM store and the stub punch leaves
tape objects nothing points at.  :class:`JobJournal` is the single
append-only record all three write — the simulation analogue of the
journal file a production mover fsyncs next to its restart state.

Record taxonomy
---------------
==================  ==================================================
type                written
==================  ==================================================
``job_open``        once, when a PFTool job binds the journal
``chunk``           after a chunk range is applied to the destination
``file``            after a whole (unchunked) file is copied
``delete_intent``   **before** the deleter touches either side
``delete_fs_done``  after the GPFS-side unlink of that intent
``delete_done``     after the TSM-side delete of that intent
``lease``           **before** an HSM migration batch stores to tape
``lease_done``      after the batch's receipts (stub/premigrate) apply
==================  ==================================================

Copies are idempotent, so chunk/file records are completion records:
losing the tail of the journal only costs re-copied bytes.  Deletes and
migrations mutate durable archive state, so their records are true
write-ahead intents: a dangling ``delete_intent`` or ``lease`` names
exactly the files the :class:`~repro.recovery.agent.RecoveryAgent` must
reconcile — the *targeted* alternative to the O(all files) walk of
:class:`~repro.hsm.reconcile.ReconcileAgent`.

The journal is an in-memory store with a ``persistence.py``-style JSON
codec (:meth:`JobJournal.to_payload` /
:func:`repro.workloads.persistence.save_journal`); :meth:`truncate`
yields the journal as it would read after a crash that lost every record
past a prefix, which is what the hypothesis replay tests iterate over.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "DeleteIntent",
    "JobJournal",
    "JournalRecord",
    "MigrationLease",
]

JOURNAL_FORMAT = "repro-job-journal-v1"


@dataclass(frozen=True)
class JournalRecord:
    """One appended record: a sequence number, a type, and its payload."""

    seq: int
    type: str
    data: dict


@dataclass(frozen=True)
class DeleteIntent:
    """A two-phase delete's durable state (see §4.2.6 crash window)."""

    intent_id: int
    trash_path: str
    original_path: str
    tsm_object_id: Optional[int]
    #: 'intent' (nothing applied yet), 'fs_done' (GPFS side gone) or 'done'
    state: str


@dataclass(frozen=True)
class MigrationLease:
    """One HSM migration batch's durable lease."""

    lease_id: int
    node: str
    paths: tuple[str, ...]
    punch: bool
    state: str  # 'leased' | 'done'


class JobJournal:
    """Append-only journal with replay views.

    Parameters
    ----------
    env:
        Optional simulation environment; when provided and tracing is
        active, each append emits a ``journal:append`` instant.
    """

    def __init__(self, env=None) -> None:
        self.env = env
        self.records: list[JournalRecord] = []
        #: test hook invoked after each append (lets the chaos/property
        #: tests crash a run at an exact journal prefix)
        self.after_append: Optional[Callable[[JournalRecord], None]] = None
        self._seq = itertools.count(1)
        self._intent_ids = itertools.count(1)
        self._lease_ids = itertools.count(1)
        # replay views, kept incrementally by _apply()
        self._job_meta: Optional[dict] = None
        self._chunks: dict[str, set[tuple[int, int]]] = {}
        self._files: dict[str, int] = {}
        self._intents: dict[int, DeleteIntent] = {}
        self._leases: dict[int, MigrationLease] = {}

    # -- writer API ----------------------------------------------------
    def append(self, type: str, **data: Any) -> JournalRecord:
        rec = JournalRecord(next(self._seq), type, data)
        self.records.append(rec)
        self._apply(rec)
        if self.env is not None:
            tr = self.env.trace
            if tr.enabled:
                tr.instant("journal:append", tid="journal",
                           args={"type": type, "seq": rec.seq})
        if self.after_append is not None:
            self.after_append(rec)
        return rec

    def open_job(self, op: str, src: str, dst: str,
                 src_fs: str = "", dst_fs: str = "") -> JournalRecord:
        """Record the job identity a later :meth:`resume` needs."""
        return self.append("job_open", op=op, src=src, dst=dst,
                           src_fs=src_fs, dst_fs=dst_fs)

    def record_chunk(self, dst: str, offset: int, length: int,
                     total: int, src: str = "") -> JournalRecord:
        return self.append("chunk", dst=dst, offset=offset, length=length,
                           total=total, src=src)

    def record_file(self, src: str, dst: str, nbytes: int) -> JournalRecord:
        return self.append("file", src=src, dst=dst, nbytes=nbytes)

    def delete_intent(self, trash_path: str, original_path: str,
                      tsm_object_id: Optional[int]) -> int:
        intent_id = next(self._intent_ids)
        self.append("delete_intent", intent_id=intent_id,
                    trash_path=trash_path, original_path=original_path,
                    tsm_object_id=tsm_object_id)
        return intent_id

    def delete_fs_done(self, intent_id: int) -> None:
        self.append("delete_fs_done", intent_id=intent_id)

    def delete_done(self, intent_id: int) -> None:
        self.append("delete_done", intent_id=intent_id)

    def migration_lease(self, node: str, paths: list[str],
                        punch: bool) -> int:
        lease_id = next(self._lease_ids)
        self.append("lease", lease_id=lease_id, node=node,
                    paths=list(paths), punch=bool(punch))
        return lease_id

    def migration_done(self, lease_id: int) -> None:
        self.append("lease_done", lease_id=lease_id)

    # -- replay --------------------------------------------------------
    def _apply(self, rec: JournalRecord) -> None:
        d = rec.data
        if rec.type == "job_open":
            self._job_meta = dict(d)
        elif rec.type == "chunk":
            self._chunks.setdefault(d["dst"], set()).add(
                (d["offset"], d["length"])
            )
        elif rec.type == "file":
            self._files[d["dst"]] = d["nbytes"]
        elif rec.type == "delete_intent":
            self._intents[d["intent_id"]] = DeleteIntent(
                d["intent_id"], d["trash_path"], d["original_path"],
                d["tsm_object_id"], "intent",
            )
        elif rec.type == "delete_fs_done":
            cur = self._intents[d["intent_id"]]
            self._intents[d["intent_id"]] = DeleteIntent(
                cur.intent_id, cur.trash_path, cur.original_path,
                cur.tsm_object_id, "fs_done",
            )
        elif rec.type == "delete_done":
            cur = self._intents[d["intent_id"]]
            self._intents[d["intent_id"]] = DeleteIntent(
                cur.intent_id, cur.trash_path, cur.original_path,
                cur.tsm_object_id, "done",
            )
        elif rec.type == "lease":
            self._leases[d["lease_id"]] = MigrationLease(
                d["lease_id"], d["node"], tuple(d["paths"]),
                d["punch"], "leased",
            )
        elif rec.type == "lease_done":
            cur = self._leases[d["lease_id"]]
            self._leases[d["lease_id"]] = MigrationLease(
                cur.lease_id, cur.node, cur.paths, cur.punch, "done",
            )
        else:
            raise ValueError(f"unknown journal record type {rec.type!r}")

    # -- views ---------------------------------------------------------
    @property
    def job_meta(self) -> Optional[dict]:
        """The ``job_open`` payload, or None if no job bound this journal."""
        return self._job_meta

    def chunk_ranges(self, dst: str) -> set[tuple[int, int]]:
        """(offset, length) ranges journalled complete for *dst*."""
        return set(self._chunks.get(dst, ()))

    def file_done(self, dst: str, nbytes: int) -> bool:
        """True if a whole-file record for *dst* with this size exists."""
        return self._files.get(dst) == nbytes

    def completed_files(self) -> dict[str, int]:
        return dict(self._files)

    def bytes_recorded(self) -> int:
        """Total payload bytes covered by chunk + file records."""
        chunked = sum(
            length for ranges in self._chunks.values()
            for _off, length in ranges
        )
        return chunked + sum(self._files.values())

    def dangling_deletes(self) -> list[DeleteIntent]:
        """Delete intents with no ``delete_done``, in intent order."""
        return [
            i for _id, i in sorted(self._intents.items())
            if i.state != "done"
        ]

    def dangling_leases(self) -> list[MigrationLease]:
        """Migration leases with no ``lease_done``, in lease order."""
        return [
            l for _id, l in sorted(self._leases.items())
            if l.state != "done"
        ]

    def truncate(self, n: int) -> "JobJournal":
        """The journal as read back after a crash that kept only the
        first *n* records — a fresh instance; self is untouched."""
        out = JobJournal(env=self.env)
        for rec in self.records[:n]:
            out.records.append(rec)
            out._apply(rec)
        out._reset_counters()
        return out

    def _reset_counters(self) -> None:
        """Re-seed id counters past everything replayed into the views."""
        last_seq = self.records[-1].seq if self.records else 0
        self._seq = itertools.count(last_seq + 1)
        self._intent_ids = itertools.count(
            max(self._intents, default=0) + 1
        )
        self._lease_ids = itertools.count(max(self._leases, default=0) + 1)

    # -- codec ---------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "format": JOURNAL_FORMAT,
            "records": [
                {"seq": r.seq, "type": r.type, "data": r.data}
                for r in self.records
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict, env=None) -> "JobJournal":
        if payload.get("format") != JOURNAL_FORMAT:
            raise ValueError(
                f"not a job journal (format={payload.get('format')!r})"
            )
        out = cls(env=env)
        for raw in payload["records"]:
            rec = JournalRecord(raw["seq"], raw["type"], dict(raw["data"]))
            out.records.append(rec)
            out._apply(rec)
        out._reset_counters()
        return out

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<JobJournal records={len(self.records)} "
            f"chunks={sum(len(v) for v in self._chunks.values())} "
            f"files={len(self._files)} intents={len(self._intents)} "
            f"leases={len(self._leases)}>"
        )
