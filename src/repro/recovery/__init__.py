"""Crash consistency: the durable job journal, recovery, chaos testing.

The paper's archive is built around restartability (chunked transfers,
§4.1.1) and delete atomicity across GPFS and TSM (the synchronous
deleter, §4.2.6).  This package supplies the machinery that makes those
properties survive an actual *crash* rather than a polite error:

:class:`~repro.recovery.journal.JobJournal`
    Append-only journal of chunk/file completion records, two-phase
    delete intents and HSM migration leases, with a JSON codec
    (see :func:`repro.workloads.persistence.save_journal`).
:class:`~repro.recovery.agent.RecoveryAgent`
    Replays dangling delete intents and adopts orphaned migration
    batches after a crash, using *targeted* per-file lookups instead of
    the O(all files) reconcile walk.
:mod:`repro.recovery.chaos`
    ``python -m repro.recovery.chaos`` — the chaos-restart harness: run
    a seeded workload, kill components at trace-derived instants,
    recover, and assert end-state invariants.
"""

from repro.recovery.agent import RecoveryAgent, RecoveryReport
from repro.recovery.journal import (
    DeleteIntent,
    JobJournal,
    JournalRecord,
    MigrationLease,
)

__all__ = [
    "DeleteIntent",
    "JobJournal",
    "JournalRecord",
    "MigrationLease",
    "RecoveryAgent",
    "RecoveryReport",
]
