"""Post-crash recovery: replay the journal, repair both halves.

A crash can strand two kinds of in-flight work in the site journal:

* **dangling delete intents** — the two-phase deleter died somewhere in
  ``intent -> fs_done -> done``.  Recovery finishes the protocol: if the
  file-system side is still present the unlink is replayed, then the
  tape side is reconciled with a *targeted* lookup
  (:meth:`repro.hsm.reconcile.ReconcileAgent.targeted`) — one indexed
  tape-DB query per dangling intent, never the O(all files) walk the
  paper calls unacceptable (§4.2.6).
* **dangling migration leases** — the migrator host died after
  submitting TSM stores but before applying receipts.  The stores
  completed *server-side*, so the tape objects exist but no inode knows
  about them.  Recovery adopts them: for each leased path still lacking
  a ``tsm_object_id``, a per-path TSM query finds the orphaned object
  and re-applies the receipt (premigrate + optional stub punch).  Paths
  with no object simply remigrate on the next policy run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hsm.reconcile import ReconcileAgent
from repro.pfs import GpfsFileSystem, PathError
from repro.recovery.journal import JobJournal
from repro.sim import Environment, Event
from repro.tsm import TsmServer

__all__ = ["RecoveryAgent", "RecoveryReport"]


@dataclass
class RecoveryReport:
    """Outcome of one recovery pass."""

    delete_intents_found: int = 0
    fs_unlinks_replayed: int = 0
    tsm_deletes_replayed: int = 0
    migration_leases_found: int = 0
    objects_adopted: int = 0
    #: leased paths with no tape object — they need remigration
    files_unmigrated: list = field(default_factory=list)
    targeted_lookups: int = 0
    duration: float = 0.0


class RecoveryAgent:
    """Replays dangling journal intents after a crash-restart."""

    def __init__(
        self,
        env: Environment,
        journal: JobJournal,
        fs: GpfsFileSystem,
        tsm: TsmServer,
        tapedb=None,
        trashcan=None,
        filespace: str = "archive",
    ) -> None:
        self.env = env
        self.journal = journal
        self.fs = fs
        self.tsm = tsm
        self.tapedb = tapedb
        self.trashcan = trashcan
        self.filespace = filespace
        self.reconciler = ReconcileAgent(env, fs, tsm, filespace=filespace)

    def recover(self) -> Event:
        """One recovery pass; fires with a :class:`RecoveryReport`."""
        done = self.env.event()

        def _proc():
            t0 = self.env.now
            report = RecoveryReport()
            tr = self.env.trace
            span = tr.begin(
                "recovery:replay", tid="recovery", cat="recovery",
            ) if tr.enabled else None

            # -- finish half-applied two-phase deletes -----------------
            for intent in self.journal.dangling_deletes():
                report.delete_intents_found += 1
                if intent.state == "intent" and intent.trash_path:
                    # phase 1 may or may not have landed; replay is safe
                    # because unlink of a missing path is a no-op here
                    if self.fs.exists(intent.trash_path):
                        try:
                            yield self.fs.unlink_op(intent.trash_path)
                            report.fs_unlinks_replayed += 1
                        except PathError:
                            pass
                self.journal.delete_fs_done(intent.intent_id)
                # phase 2: targeted tape-side reconcile for this file only
                rep = yield self.reconciler.targeted(
                    [(intent.original_path, intent.tsm_object_id)],
                    tapedb=self.tapedb,
                )
                report.targeted_lookups += rep.tsm_objects_checked
                report.tsm_deletes_replayed += rep.orphans_deleted
                self.journal.delete_done(intent.intent_id)
                if self.trashcan is not None and intent.trash_path:
                    self.trashcan.pop(intent.trash_path)

            # -- adopt orphaned migration batches ----------------------
            for lease in self.journal.dangling_leases():
                report.migration_leases_found += 1
                for path in lease.paths:
                    try:
                        inode = self.fs.lookup(path)
                    except PathError:
                        continue  # deleted since the lease; nothing owed
                    if inode.tsm_object_id is not None:
                        continue  # receipt was applied before the crash
                    yield self.env.timeout(self.reconciler.per_query_cost)
                    report.targeted_lookups += 1
                    objs = self.tsm.objects_for_path(self.filespace, path)
                    if objs:
                        # store completed server-side: adopt the object
                        obj = objs[-1]
                        self.fs.mark_premigrated(path, obj.object_id)
                        if lease.punch:
                            self.fs.punch_stub(path)
                        report.objects_adopted += 1
                    else:
                        report.files_unmigrated.append(path)
                self.journal.migration_done(lease.lease_id)

            report.duration = self.env.now - t0
            if span is not None:
                span.end()
                tr.metrics.counter("recovery.intents_replayed").inc(
                    report.delete_intents_found
                )
                tr.metrics.counter("recovery.objects_adopted").inc(
                    report.objects_adopted
                )
            done.succeed(report)

        self.env.process(_proc(), name="recovery-agent")
        return done
