"""Chaos-restart harness: crash components mid-workload, recover, verify.

``python -m repro.recovery.chaos`` runs a seeded four-phase workload
(archive -> migrate -> delete -> retrieve) against a small site twice:

1. an uncrashed **baseline**, traced, which yields the oracle end state
   (file sets, sizes) and the per-phase time windows from which crash
   instants are derived;
2. one **crashed run per crash point**: the same workload with a
   :class:`~repro.faults.FaultPlan` crash armed at a seeded instant
   inside the target phase's baseline window, killing the PFTool
   Manager, one Worker rank, the synchronous deleter mid-two-phase, or
   the migrator mid-batch — followed by
   :meth:`~repro.archive.system.ParallelArchiveSystem.recover` and a
   journal resume/retry of the interrupted phase.

Every crashed run must then satisfy the end-state invariants:

* the live file sets under ``/arch`` and ``/back`` match the baseline
  (no lost files), with matching sizes and source content tokens;
* deleted files are gone, the trashcan is empty, and no delete intent
  or migration lease dangles in the site journal;
* **zero orphaned TSM objects** (every active tape object is referenced
  by a live inode);
* trace causality holds: ``copy:chunk`` spans union-cover every chunked
  destination (duplicated bytes bounded by one in-flight chunk per
  killed worker), and stores precede recalls per volume.

Exit status 1 if any crash point fails (or its crash never fired).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from typing import Optional

from repro.archive import ArchiveParams, ParallelArchiveSystem
from repro.faults import CrashFault, FaultPlan, classify_failure
from repro.pftool import PftoolConfig
from repro.recovery.journal import JobJournal
from repro.sim import Environment, RandomStreams
from repro.tapesim import TapeSpec
from repro.trace import tracing
from repro.trace.assertions import TraceAssertions

__all__ = ["ChaosResult", "DEFAULT_POINTS", "end_state", "main", "run_chaos"]

MB = 1_000_000

FAST_SPEC = TapeSpec(
    native_rate=120e6, load_time=5.0, unload_time=5.0, rewind_full=20.0,
    seek_base=0.5, locate_rate=10e9, label_verify=2.0, backhitch=1.0,
    capacity=800 * 1000 * MB,
)

#: chunked-copy geometry: each large file is LARGE_CHUNKS chunks
CHUNK = 4 * MB
LARGE_CHUNKS = 20
LARGE = LARGE_CHUNKS * CHUNK

#: (phase, target) rotation; ``--crashes N`` takes a prefix
DEFAULT_POINTS = [
    ("archive", "manager"),
    ("archive", "worker"),
    ("delete", "deleter"),
    ("migrate", "migrator"),
    ("retrieve", "manager"),
    ("retrieve", "worker"),
]

PHASES = ("archive", "migrate", "delete", "retrieve")


def _layout(seed: int) -> dict[str, int]:
    rng = RandomStreams(seed).stream("chaos.layout")
    files = {
        f"/data/small/f{i:02d}": int(rng.integers(2 * MB, 8 * MB))
        for i in range(12)
    }
    for i in range(2):
        files[f"/data/large/g{i}"] = LARGE
    return files


#: archived files the delete phase trashes (relative to the roots)
DELETED_RELS = [f"small/f{i:02d}" for i in range(4)]


def _site(env: Environment) -> ParallelArchiveSystem:
    return ParallelArchiveSystem(env, ArchiveParams(
        n_fta=4, n_disk_servers=2, n_tape_drives=4, n_scratch_tapes=16,
        tape_spec=FAST_SPEC, metadata_op_time=0.0002,
    ))


def _cfg() -> PftoolConfig:
    return PftoolConfig(
        num_workers=4, num_readdir=1, num_tapeprocs=2,
        stat_batch=8, copy_batch=4,
        chunk_threshold=4 * CHUNK, copy_chunk_size=CHUNK,
        watchdog_interval=30.0, stall_timeout=240.0,
    )


def _seed_scratch(env: Environment, system: ParallelArchiveSystem,
                  layout: dict[str, int]) -> None:
    def go():
        for path, size in sorted(layout.items()):
            parent = path.rsplit("/", 1)[0] or "/"
            system.scratch_fs.mkdir(parent, parents=True)
            yield system.scratch_fs.write_file("scratch", path, size)

    env.run(env.process(go()))


def _files_under(fs, root: str) -> dict[str, object]:
    """rel path -> inode for live files under *root* (trash excluded)."""
    prefix = root.rstrip("/") + "/"
    return {
        path[len(prefix):]: inode
        for path, inode in fs.walk("/")
        if inode.is_file and path.startswith(prefix)
    }


def end_state(fs, root: str) -> dict[str, tuple[int, object]]:
    """rel path -> (size, content token) under *root* — the comparable
    end-state digest the chaos and disaster-drill oracles share."""
    return {
        rel: (inode.size, inode.content_token)
        for rel, inode in _files_under(fs, root).items()
    }


@dataclass
class ScenarioOutcome:
    """Everything one workload run leaves behind."""

    system: ParallelArchiveSystem
    tracer: object
    #: phase -> (t_start, t_end) wall-clock window
    windows: dict[str, tuple[float, float]] = field(default_factory=dict)
    #: stats of the phase that was crashed + resumed (copy phases only)
    resumed_stats: object = None
    injector: object = None
    #: fault classes the harness observed (and acted on) first-hand
    fault_classes: list = field(default_factory=list)


def _run_scenario(
    seed: int,
    crash_phase: Optional[str] = None,
    crash_target: Optional[str] = None,
    crash_at: Optional[float] = None,
) -> ScenarioOutcome:
    """Run the four-phase workload, optionally crashing one phase."""
    with tracing() as tracer:
        env = Environment()
        system = _site(env)
        _seed_scratch(env, system, _layout(seed))
        cfg = _cfg()
        out = ScenarioOutcome(system=system, tracer=tracer)

        injector = None
        current_job: dict = {"job": None}
        if crash_phase is not None:
            plan = FaultPlan(seed).crash(crash_at, crash_target)
            injector = system.inject_faults(plan)
            injector.register_crash_target(
                "manager", lambda c: current_job["job"].crash(c)
            )
            injector.register_crash_target(
                "worker",
                lambda c: current_job["job"].crash_rank(
                    current_job["job"].worker_ranks[0], c
                ),
            )
            injector.register_crash_target("deleter", system.deleter.crash)
            injector.register_crash_target("migrator", system.migrator.crash)
            out.injector = injector

        def copy_phase(phase: str, launch) -> None:
            t0 = env.now
            journal = JobJournal(env)
            job = launch(journal)
            current_job["job"] = job
            crashed = False
            try:
                stats = env.run(job.done)
                crashed = stats.aborted
            except CrashFault as exc:
                # record before recovering — swallowing an injected fault
                # without a trace is exactly what RA012 forbids
                out.fault_classes.append(classify_failure(exc))
                crashed = True
            if crashed:
                env.run()  # drain torn I/O
                env.run(system.recover())
                rjob = system.resume_job(journal, cfg)
                current_job["job"] = rjob
                out.resumed_stats = env.run(rjob.done)
            current_job["job"] = None
            out.windows[phase] = (t0, env.now)

        # -- phase 1: archive scratch -> archive GPFS ------------------
        copy_phase("archive", lambda j: system.archive(
            "/data", "/arch", cfg, journal=j))

        # -- phase 2: migrate the archive to tape ----------------------
        t0 = env.now
        ev = system.migrate_to_tape()
        if crash_phase == "migrate":
            env.run()  # quiesce: the round may have been killed mid-batch
            env.run(system.recover())  # adopt server-side-completed stores
            env.run(system.migrate_to_tape())  # remigrate what recovery left
        else:
            env.run(ev)
        out.windows["migrate"] = (t0, env.now)

        # -- phase 3: user deletes + two-phase sweep -------------------
        t0 = env.now
        for rel in DELETED_RELS:
            system.user_delete(f"/arch/{rel}")
        ev = system.sweep_trash()
        if crash_phase == "delete":
            env.run()  # the sweep batch may have been killed mid-intent
            env.run(system.recover())  # replay dangling intents
            env.run(system.sweep_trash())  # entries the batch never reached
        else:
            env.run(ev)
        out.windows["delete"] = (t0, env.now)

        # -- phase 4: retrieve the survivors back to scratch -----------
        copy_phase("retrieve", lambda j: system.retrieve(
            "/arch", "/back", cfg, journal=j))

        env.run()  # let exporters / recall daemons go idle
    return out


def _oracle(baseline: ScenarioOutcome) -> dict:
    system = baseline.system
    return {
        "arch": {
            rel: inode.size
            for rel, inode in _files_under(system.archive_fs, "/arch").items()
        },
        "back": {
            rel: inode.size
            for rel, inode in _files_under(system.scratch_fs, "/back").items()
        },
    }


def _verify(out: ScenarioOutcome, oracle: dict, crash_phase: str,
            crash_target: str) -> list[str]:
    """End-state invariants for one crashed run; returns failure strings."""
    failures: list[str] = []
    system = out.system

    if out.injector is not None:
        if out.injector.injected.get("crash", 0) != 1:
            failures.append(
                f"crash never fired (misses={out.injector.crash_misses})"
            )

    # -- no lost files, sizes + content intact -------------------------
    src = _files_under(system.scratch_fs, "/data")
    for root, fs in (("arch", system.archive_fs),
                     ("back", system.scratch_fs)):
        live = _files_under(fs, f"/{root}")
        want = oracle[root]
        if set(live) != set(want):
            lost = sorted(set(want) - set(live))
            extra = sorted(set(live) - set(want))
            failures.append(f"/{root} file set: lost={lost} extra={extra}")
            continue
        for rel, inode in live.items():
            if inode.size != want[rel]:
                failures.append(
                    f"/{root}/{rel}: size {inode.size} != {want[rel]}"
                )
            if rel in src and inode.content_token != src[rel].content_token:
                failures.append(f"/{root}/{rel}: content differs from source")

    # -- deletes finished: nothing dangling, trashcan drained ----------
    for rel in DELETED_RELS:
        if rel in _files_under(system.archive_fs, "/arch"):
            failures.append(f"deleted file /arch/{rel} still present")
    if len(system.trashcan):
        failures.append(f"trashcan not empty: {len(system.trashcan)} entries")
    dangling = system.journal.dangling_deletes()
    if dangling:
        failures.append(f"{len(dangling)} delete intents left dangling")
    leases = system.journal.dangling_leases()
    if leases:
        failures.append(f"{len(leases)} migration leases left dangling")

    # -- zero orphaned TSM objects -------------------------------------
    live_oids = {
        inode.tsm_object_id
        for _path, inode in system.archive_fs.walk("/")
        if inode.is_file and inode.tsm_object_id is not None
    }
    orphans = [
        row["object_id"] for row in system.tsm.export_rows()
        if row["filespace"] == system.params.filespace
        and row["object_id"] not in live_oids
    ]
    if orphans:
        failures.append(f"orphaned TSM objects: {sorted(orphans)}")

    # -- trace causality -----------------------------------------------
    ta = TraceAssertions(out.tracer)
    try:
        dup = ta.covers_union("copy:chunk", LARGE, per="args:dst")
    except AssertionError as exc:
        failures.append(f"chunk coverage: {exc}")
    else:
        expected = {f"/arch/large/g{i}" for i in range(2)}
        expected |= {f"/back/large/g{i}" for i in range(2)}
        if set(dup) != expected:
            failures.append(
                f"chunked dsts {sorted(dup)} != expected {sorted(expected)}"
            )
        # Re-copy bound: only in-flight chunks at the kill are copied
        # twice — one per killed worker (all workers for a manager crash).
        killed = {"manager": _cfg().num_workers, "worker": 1}.get(
            crash_target, 0
        ) if crash_phase in ("archive", "retrieve") else 0
        bound = killed * CHUNK
        if sum(dup.values()) > bound:
            failures.append(
                f"re-copied {sum(dup.values())} chunk bytes, bound {bound}"
            )
    try:
        if ta.spans("tsm:recall"):
            ta.happens_before("tsm:store", "tsm:recall", per="args:volume")
    except AssertionError as exc:
        failures.append(f"store-before-recall: {exc}")
    return failures


@dataclass
class ChaosResult:
    """One crash point's outcome."""

    phase: str
    target: str
    at: float
    failures: list[str]

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "target": self.target,
            "at": round(self.at, 3), "ok": self.ok,
            "failures": self.failures,
        }


def run_chaos(seed: int = 0, crashes: Optional[int] = None,
              quiet: bool = False) -> list[ChaosResult]:
    """Baseline + one crashed run per crash point; returns the results."""
    points = DEFAULT_POINTS[:crashes] if crashes else DEFAULT_POINTS
    baseline = _run_scenario(seed)
    oracle = _oracle(baseline)
    frac_rng = RandomStreams(seed).stream("chaos.instants")
    results = []
    for i, (phase, target) in enumerate(points):
        t0, t1 = baseline.windows[phase]
        # seeded instant inside the phase's baseline window, away from
        # the edges so small cross-run timing drift cannot miss the phase
        at = t0 + (0.2 + 0.5 * frac_rng.random()) * (t1 - t0)
        out = _run_scenario(seed, phase, target, at)
        failures = _verify(out, oracle, phase, target)
        results.append(ChaosResult(phase, target, at, failures))
        if not quiet:
            mark = "ok" if not failures else "FAIL"
            print(f"[{i + 1}/{len(points)}] crash {target} during {phase} "
                  f"at t={at:.1f}: {mark}")
            for f in failures:
                print(f"    - {f}")
    return results


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.recovery.chaos",
        description="crash-restart chaos harness for the archive system",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="workload + crash-instant seed (default 0)")
    parser.add_argument("--crashes", type=int, default=None,
                        help="run only the first N crash points "
                             f"(default: all {len(DEFAULT_POINTS)})")
    parser.add_argument("--json", action="store_true",
                        help="emit a JSON report on stdout")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-point progress lines")
    args = parser.parse_args(argv)
    results = run_chaos(args.seed, args.crashes,
                        quiet=args.quiet or args.json)
    ok = all(r.ok for r in results)
    if args.json:
        print(json.dumps({
            "seed": args.seed,
            "points": [r.to_dict() for r in results],
            "ok": ok,
        }, indent=1))
    elif not args.quiet:
        n_bad = sum(not r.ok for r in results)
        print(f"{len(results)} crash points, {n_bad} failing")
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    sys.exit(main())
