"""``python -m repro.recovery`` — alias for the chaos harness CLI."""

import sys

from repro.recovery.chaos import main

if __name__ == "__main__":
    sys.exit(main())
