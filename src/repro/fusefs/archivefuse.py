"""The ArchiveFUSE file system view over a GPFS instance.

A *logical* large file ``/proj/huge.dat`` is stored as::

    /proj/huge.dat              <- manifest (zero-byte marker inode)
    /.fuse/proj/huge.dat/c0000  <- chunk files, fuse_chunk_size each
    /.fuse/proj/huge.dat/c0001
    ...

The manifest inode's xattrs record the logical size, chunk size, and a
per-chunk completion bitmap (the §4.5 "mark chunks good or bad" restart
feature).  Unlink/overwrite of a logical file *renames* its chunks into
the trashcan directory instead of deleting, so the synchronous deleter
can reap them with their tape copies.
"""

from __future__ import annotations

from typing import Optional

from repro.pfs import GpfsFileSystem, PathError
from repro.sim import Environment, Event, SimulationError

__all__ = ["ArchiveFuseFS", "ChunkRef"]


class ChunkRef:
    """One chunk of a logical file."""

    __slots__ = ("index", "path", "offset", "length")

    def __init__(self, index: int, path: str, offset: int, length: int) -> None:
        self.index = index
        self.path = path
        self.offset = offset
        self.length = length

    def __repr__(self) -> str:
        return f"<ChunkRef {self.index} {self.path} [{self.offset}+{self.length}]>"


_XATTR = "__fuse__"


class ArchiveFuseFS:
    """Chunked view over *fs*.

    Parameters
    ----------
    fs:
        The backing GPFS instance (the archive file system).
    chunk_size:
        Physical chunk size (the paper's runtime-tunable "Fuse
        ChunkSize"; tens of GB in production).
    chunk_root, trash_root:
        Directories for chunk files and the trashcan.
    """

    def __init__(
        self,
        fs: GpfsFileSystem,
        chunk_size: int = 32 * 1024**3,
        chunk_root: str = "/.fuse",
        trash_root: str = "/.trashcan",
    ) -> None:
        if chunk_size <= 0:
            raise SimulationError("chunk_size must be positive")
        self.fs = fs
        self.env: Environment = fs.env
        self.chunk_size = int(chunk_size)
        self.chunk_root = chunk_root
        self.trash_root = trash_root
        fs.mkdir(chunk_root, parents=True)
        fs.mkdir(trash_root, parents=True)
        self._trash_seq = 0

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def chunk_dir(self, path: str) -> str:
        return f"{self.chunk_root}{path}"

    def plan_chunks(self, path: str, size: int) -> list[ChunkRef]:
        """Chunk layout for a logical file of *size* bytes."""
        if size < 0:
            raise SimulationError("size must be non-negative")
        refs = []
        off = 0
        i = 0
        cdir = self.chunk_dir(path)
        while off < size:
            length = min(self.chunk_size, size - off)
            refs.append(ChunkRef(i, f"{cdir}/c{i:04d}", off, length))
            off += length
            i += 1
        if not refs:  # zero-byte logical file still gets a manifest
            return []
        return refs

    def is_fuse_file(self, path: str) -> bool:
        try:
            return _XATTR in self.fs.lookup(path).xattrs
        except PathError:
            return False

    def manifest(self, path: str) -> dict:
        inode = self.fs.lookup(path)
        try:
            return inode.xattrs[_XATTR]
        except KeyError:
            raise SimulationError(f"{path!r} is not an ArchiveFUSE file") from None

    def chunks(self, path: str) -> list[ChunkRef]:
        man = self.manifest(path)
        return self.plan_chunks(path, man["size"])

    def logical_size(self, path: str) -> int:
        return self.manifest(path)["size"]

    # ------------------------------------------------------------------
    # create / write / read
    # ------------------------------------------------------------------
    def create_large(
        self, path: str, size: int, pool: Optional[str] = None
    ) -> Event:
        """Provision a logical file: manifest + sized chunk files.

        Overwriting an existing logical file first moves its chunks to
        the trashcan (the interception that fixes §6.3).  Fires with the
        list of :class:`ChunkRef`.
        """
        done = self.env.event()

        def _proc():
            if self.is_fuse_file(path):
                yield self._trash_chunks(path)
            refs = self.plan_chunks(path, size)
            # manifest
            try:
                manifest = self.fs.lookup(path)
            except PathError:
                parent = path.rsplit("/", 1)[0] or "/"
                self.fs.mkdir(parent, parents=True)
                manifest = self.fs.namespace.create(path, self.env.now)
            manifest.xattrs[_XATTR] = {
                "size": int(size),
                "chunk_size": self.chunk_size,
                "good": [False] * len(refs),
            }
            if refs:
                self.fs.mkdir(self.chunk_dir(path), parents=True)
            for ref in refs:
                yield self.fs.create_sized(ref.path, ref.length, pool=pool)
            done.succeed(refs)

        self.env.process(_proc(), name=f"fuse-create {path}")
        return done

    def write_chunk(self, client: str, path: str, index: int) -> Event:
        """One worker filling one chunk (the N-to-N write). Fires with
        the ChunkRef and marks it good in the manifest."""
        done = self.env.event()

        def _proc():
            refs = self.chunks(path)
            if not (0 <= index < len(refs)):
                done.fail(SimulationError(f"{path!r}: no chunk {index}"))
                return
            ref = refs[index]
            yield self.fs.write_range(client, ref.path, 0, ref.length)
            self.manifest(path)["good"][index] = True
            done.succeed(ref)

        self.env.process(_proc(), name=f"fuse-write {path}#{index}")
        return done

    def read_chunk(self, client: str, path: str, index: int) -> Event:
        done = self.env.event()

        def _proc():
            refs = self.chunks(path)
            if not (0 <= index < len(refs)):
                done.fail(SimulationError(f"{path!r}: no chunk {index}"))
                return
            ref = refs[index]
            _, token = yield self.fs.read_file(client, ref.path)
            done.succeed(ref)

        self.env.process(_proc(), name=f"fuse-read {path}#{index}")
        return done

    # -- restart support (§4.5) -----------------------------------------
    def good_chunks(self, path: str) -> list[int]:
        return [i for i, g in enumerate(self.manifest(path)["good"]) if g]

    def pending_chunks(self, path: str) -> list[int]:
        return [i for i, g in enumerate(self.manifest(path)["good"]) if not g]

    def mark_bad(self, path: str, index: int) -> None:
        """Invalidate a chunk (e.g. detected corruption mid-transfer)."""
        good = self.manifest(path)["good"]
        if not (0 <= index < len(good)):
            raise SimulationError(f"{path!r}: no chunk {index}")
        good[index] = False

    def is_complete(self, path: str) -> bool:
        return all(self.manifest(path)["good"])

    # ------------------------------------------------------------------
    # unlink / truncate interception
    # ------------------------------------------------------------------
    def unlink(self, path: str) -> Event:
        """Remove a logical file: chunks go to the trashcan, manifest
        disappears.  Fires with the list of trashed chunk paths."""
        done = self.env.event()

        def _proc():
            trashed = yield self._trash_chunks(path)
            self.fs.namespace.unlink(path)
            done.succeed(trashed)

        self.env.process(_proc(), name=f"fuse-unlink {path}")
        return done

    def _trash_chunks(self, path: str) -> Event:
        """Rename every chunk of *path* into the trashcan."""
        done = self.env.event()

        def _proc():
            refs = self.chunks(path)
            trashed = []
            for ref in refs:
                if not self.fs.exists(ref.path):
                    continue
                self._trash_seq += 1
                dst = f"{self.trash_root}/fusechunk.{self._trash_seq}"
                if self.fs.metadata_op_time:
                    yield self.env.timeout(self.fs.metadata_op_time)
                self.fs.rename(ref.path, dst)
                trashed.append(dst)
            cdir = self.chunk_dir(path)
            if self.fs.exists(cdir):
                self.fs.namespace.unlink(cdir)
            man = self.manifest(path)
            man["good"] = [False] * len(man["good"])
            done.succeed(trashed)

        self.env.process(_proc(), name=f"fuse-trash {path}")
        return done

    def __repr__(self) -> str:
        return f"<ArchiveFuseFS chunk={self.chunk_size/1e9:.0f}GB on {self.fs.name}>"
