"""ArchiveFUSE: the chunking interposition layer (§4.1.2, §4.2.7).

Very large files (paper: >100 GB) cannot be archived efficiently as one
object: an N-to-1 parallel write suffers shared-file overheads and the
single tape object serialises on one drive.  ArchiveFUSE presents one
logical file backed by N physical chunk files, so

* PFTool's N workers each write their own chunk (N-to-N),
* HSM migrates/recalls chunks to/from *different tapes in parallel*,
* overwrite/truncate can be intercepted: old chunks move to a trashcan
  for synchronous deletion instead of becoming tape orphans (§6.3), and
* per-chunk good/bad markers give restartable transfers (§4.5).
"""

from repro.fusefs.archivefuse import ArchiveFuseFS, ChunkRef

__all__ = ["ArchiveFuseFS", "ChunkRef"]
