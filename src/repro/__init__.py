"""repro — the LANL COTS Parallel Archive System (CLUSTER 2010), rebuilt.

Reproduction of "Integration Experiences and Performance Studies of A
COTS Parallel Archive System" (Chen et al., LANL / IEEE CLUSTER 2010):
the GPFS + TSM + PFTool parallel tape archive deployed for Roadrunner's
Open Science runs, implemented end to end on a deterministic
discrete-event simulator.

Start with :class:`repro.archive.ParallelArchiveSystem` (the whole
Figure-7 site) and :mod:`repro.pftool` (the pfls/pfcp/pfcm commands);
see README.md for the tour and DESIGN.md for the substitution map.
"""

__version__ = "1.0.0"

__all__ = [
    "archive",
    "baselines",
    "cli",
    "disksim",
    "fusefs",
    "hsm",
    "metrics",
    "mpisim",
    "netsim",
    "pfs",
    "pftool",
    "search",
    "sim",
    "tapedb",
    "tapesim",
    "tsm",
    "workloads",
]
