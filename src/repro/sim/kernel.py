"""Core event loop, events and processes for the DES kernel.

Design notes
------------
* Time is a ``float`` in **seconds** everywhere in :mod:`repro`.
* The event queue is a binary heap keyed on ``(time, priority, tiebreak)``.
* Processes are plain Python generators.  A process yields an :class:`Event`
  to suspend until the event fires; the event's value is sent back into the
  generator (or its exception thrown in).
* Interrupts follow SimPy semantics: :meth:`Process.interrupt` throws
  :class:`Interrupt` into the process at its current yield point.

Ordering contract
-----------------
Execution order is fully deterministic for a given program and a given
:class:`SchedulePolicy` — a requirement for reproducible benchmarks.
The guarantees, from strongest to weakest:

1. **Time** always wins: an event at an earlier simulated time runs
   before any event at a later time.
2. **Priority** breaks time ties: at equal times, ``URGENT`` events
   (process starts, interrupt delivery) run before ``NORMAL`` ones.
3. **Tie-break** breaks ``(time, priority)`` ties and is the *only*
   layer a program may not rely on.  The default policy is FIFO (the
   monotonically increasing schedule sequence number ``seq``), which
   pins a single canonical order.  A seeded
   :class:`RandomTiebreakPolicy` instead permutes same-``(time,
   priority)`` events deterministically per seed; the schedule
   sanitizer (:mod:`repro.analysis.races`) re-runs scenarios under
   many such permutations to prove simulation outcomes do not depend
   on layer 3.  Anything that must stay ordered at equal instants has
   to encode it in layers 1-2 or in its own data structure — e.g.
   :class:`repro.mpisim.SimComm` preserves per-``(src, dst)`` message
   order (the MPI non-overtaking guarantee) by batching same-instant
   deliveries, and :class:`repro.sim.resources` wait queues are FIFO
   in arrival order regardless of how the grants interleave.

The policy is fixed for the life of an :class:`Environment` (pass it
to the constructor, or install a process-wide default with
:func:`set_default_schedule_policy` for code that builds its own
environments); swapping policies mid-run would interleave incomparable
heap keys.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.trace import channel_for as _trace_channel_for

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RandomTiebreakPolicy",
    "SchedulePolicy",
    "SimulationError",
    "Timeout",
    "set_default_hb_recorder",
    "set_default_schedule_policy",
]

#: Event scheduling priorities (lower runs first at equal times).
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double-trigger, negative delay...)."""


class SchedulePolicy:
    """Tie-break policy for events at equal ``(time, priority)``.

    The base class is FIFO: events run in scheduling order (``seq``).
    Subclasses override :meth:`key` to return any totally ordered,
    *unique* key per ``seq`` — uniqueness matters because heap entries
    fall through to comparing :class:`Event` objects otherwise.
    """

    name = "fifo"

    def key(self, seq: int) -> Any:
        """Heap tie-break key for the event with schedule number *seq*."""
        return seq


#: shared instance returned by Environment.schedule_policy for the fast path
_FIFO_POLICY = SchedulePolicy()

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, seq: int) -> int:
    """splitmix64 of (seed, seq): a deterministic, well-mixed 64-bit hash."""
    z = (seq + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class RandomTiebreakPolicy(SchedulePolicy):
    """Seeded permutation of same-``(time, priority)`` events.

    Each scheduled event gets the tie-break key ``(mix64(seed, seq),
    seq)``: events at equal instants run in hash order — a different
    deterministic permutation per *seed* — while the trailing ``seq``
    keeps keys unique.  Used by the schedule sanitizer to explore the
    legal reorderings the FIFO default happens to pin down.
    """

    name = "random"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def key(self, seq: int) -> Any:
        return (_mix64(self.seed, seq), seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomTiebreakPolicy seed={self.seed}>"


#: process-wide default policy factory consulted by Environment.__init__
#: when no explicit policy is passed (None means FIFO)
_default_policy_factory: Optional[Callable[[], SchedulePolicy]] = None


def set_default_schedule_policy(
    factory: Optional[Callable[[], SchedulePolicy]],
) -> None:
    """Install (or clear, with ``None``) the default schedule policy.

    Environments constructed while a factory is installed ask it for
    their tie-break policy — the hook the schedule permuter uses to
    reach environments built deep inside scenario functions.
    """
    global _default_policy_factory
    _default_policy_factory = factory


#: process-wide default happens-before recorder factory; receives the new
#: Environment, returns a recorder (installed as ``env.hb``) or None
_default_hb_factory: Optional[Callable[["Environment"], Any]] = None


def set_default_hb_recorder(
    factory: Optional[Callable[["Environment"], Any]],
) -> None:
    """Install (or clear, with ``None``) the default hb-recorder factory.

    Environments constructed while a factory is installed get
    ``env.hb = factory(env)`` — how the schedule sanitizer attaches its
    race detector / schedule recorder to environments built deep inside
    scenario functions.  The factory may return None to skip an env.
    """
    global _default_hb_factory
    _default_hb_factory = factory


class ProcessKilled(SimulationError):
    """Raised in waiters of a process torn down by :meth:`Process.kill`."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The optional *cause* is available as :attr:`cause` and carries whatever
    context the interrupter supplied (e.g. a preemption record).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence processes can wait on.

    Lifecycle: *pending* -> *triggered* (scheduled on the queue with a value
    or an exception) -> *processed* (callbacks ran, waiters resumed).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("value of event is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get *exception* thrown at their yield point.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


#: upper bound on recycled :class:`_ScheduledCall` instances per environment
_CALL_POOL_MAX = 1024


class _ScheduledCall(Event):
    """Kernel-owned one-shot timer that invokes a function when popped.

    Created only by :meth:`Environment.call_later`; user code never holds a
    reference, so :meth:`Environment.step` can recycle instances through
    ``Environment._call_pool`` instead of allocating a Timeout + Process +
    init-Event triple for every fire-and-forget delay.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self._fn: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_ScheduledCall fn={self._fn!r} at {id(self):#x}>"


class _ConditionValue(dict):
    """Ordered mapping of event -> value for AllOf/AnyOf results."""


class Condition(Event):
    """Waits for a boolean combination of events (base of AllOf/AnyOf)."""

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect_values(self) -> _ConditionValue:
        vals = _ConditionValue()
        for ev in self._events:
            if ev._processed and ev._ok:
                vals[ev] = ev._value
        return vals

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when all sub-events have fired; value maps event -> value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done == total, events)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done >= 1, events)


class Process(Event):
    """A running generator, itself waitable as an event.

    The process event triggers when the generator returns (value = return
    value) or raises (the exception propagates to waiters, or out of
    :meth:`Environment.run` if nobody waits).
    """

    __slots__ = ("_generator", "_target", "name", "daemon")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: daemon processes (perpetual service loops parked on a work
        #: queue) are expected to outlive the simulation; the schedule
        #: sanitizer's stall check skips them, like daemon threads
        self.daemon = daemon
        #: event this process is currently waiting on (None when runnable)
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, URGENT)
        if env.hb is not None:
            env.hb.on_process(self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._value is not PENDING:
            raise SimulationError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        # Deliver via an urgent event so interrupt ordering is deterministic.
        ev = Event(self.env)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev.callbacks.append(self._resume)
        self.env._schedule(ev, URGENT)

    def kill(self, cause: Any = None) -> None:
        """Tear the process down *without* running its handlers (crash model).

        Unlike :meth:`interrupt`, which throws at the yield point so the
        process can recover, ``kill`` models a component dying mid-flight:
        the generator is closed (only ``finally`` blocks run), the event it
        was waiting on is abandoned — cancellable targets such as a pending
        mailbox receive are withdrawn so they cannot swallow a message nobody
        will read — and any child :class:`Process` it was waiting on is killed
        in cascade.  Waiters of a killed process see it *fail* with *cause*
        (wrapped in :class:`ProcessKilled` when it is not an exception).

        Killing an already-terminated process is a no-op, so crash plans may
        fire after the component finished on its own.
        """
        if self._value is not PENDING:
            return
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to kill itself")
        target = self._target
        self._target = None
        if isinstance(cause, BaseException):
            exc: BaseException = cause
        else:
            exc = ProcessKilled(f"process {self.name!r} killed")
        self._ok = False
        self._value = exc
        self._generator.close()
        self.env._schedule(self, NORMAL)
        if target is not None:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            cancel = getattr(target, "cancel", None)
            if cancel is not None and not target.triggered:
                cancel()
            if isinstance(target, Process) and target.is_alive:
                target.kill(exc)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already terminated (e.g. interrupt raced completion)
        # Detach from the event we were waiting on (for interrupts).
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.env._active = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                    self.env._schedule(self, NORMAL)
                    return
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    # If nothing waits on this process the exception must not
                    # vanish: surface it from Environment.run().
                    if not self.callbacks:
                        self.env._crash(exc)
                    self.env._schedule(self, NORMAL)
                    return
                if not isinstance(target, Event):
                    exc2 = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc2
                    continue
                if target._processed:
                    # Already done: loop immediately with its value.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        finally:
            self.env._active = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"


class Environment:
    """The simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active",
        "_crashed",
        "_call_pool",
        "_policy",
        "events_processed",
        "peak_queue_len",
        "trace",
        "hb",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        schedule_policy: Optional[SchedulePolicy] = None,
    ) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Any, Event]] = []
        self._seq = 0
        self._active: Optional[Process] = None
        self._crashed: Optional[BaseException] = None
        #: free-list of recycled :class:`_ScheduledCall` events
        self._call_pool: list[_ScheduledCall] = []
        #: tie-break policy (None = FIFO fast path; see module docstring)
        if schedule_policy is None and _default_policy_factory is not None:
            schedule_policy = _default_policy_factory()
        self._policy = schedule_policy
        #: total events popped by :meth:`step` (perf accounting)
        self.events_processed = 0
        #: high-water mark of the event heap (perf accounting)
        self.peak_queue_len = 0
        #: trace channel — NULL_CHANNEL (enabled=False) unless a
        #: :class:`repro.trace.Tracer` is installed when this env is built
        self.trace = _trace_channel_for(self)
        #: happens-before recorder hook — None unless a
        #: :class:`repro.analysis.races` recorder is installed on this env;
        #: when set, its ``on_pop``/``on_process``/store/resource hooks see
        #: every kernel event (the schedule sanitizer's vantage point)
        self.hb = None
        if _default_hb_factory is not None:
            self.hb = _default_hb_factory(self)

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    @property
    def schedule_policy(self) -> SchedulePolicy:
        """The tie-break policy in force (FIFO unless overridden)."""
        return self._policy if self._policy is not None else _FIFO_POLICY

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        """Start *generator* as a new process."""
        return Process(self, generator, name, daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_later(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Schedule plain *fn* to run after *delay* simulated seconds.

        Fire-and-forget fast path for kernel-internal timers (e.g. message
        delivery): no :class:`Process` is spawned and the backing
        :class:`_ScheduledCall` event is recycled through a free-list, so a
        polling/delivery loop costs one heap push instead of three event
        allocations.  The event is kernel-owned and never exposed, which is
        what makes recycling safe.
        """
        if delay < 0:
            raise SimulationError(f"negative call_later delay {delay!r}")
        pool = self._call_pool
        ev = pool.pop() if pool else _ScheduledCall(self)
        ev._fn = fn
        self._schedule(ev, priority, delay)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        key = self._seq if self._policy is None else self._policy.key(self._seq)
        q = self._queue
        heapq.heappush(q, (self._now + delay, priority, key, event))
        if len(q) > self.peak_queue_len:
            self.peak_queue_len = len(q)

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        t, _prio, _key, event = heapq.heappop(self._queue)
        self._now = t
        self.events_processed += 1
        if self.hb is not None:
            self.hb.on_pop(t, _prio, event)
        if type(event) is _ScheduledCall:
            # Kernel-owned timer: invoke and recycle, no callback machinery.
            fn = event._fn
            event._fn = None
            if len(self._call_pool) < _CALL_POOL_MAX:
                self._call_pool.append(event)
            fn()
        else:
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for cb in callbacks:
                    cb(event)
        if self._crashed is not None:
            exc = self._crashed
            self._crashed = None
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        *until* may be ``None`` (run until no events remain), a number (run
        until that simulated time) or an :class:`Event` (run until it fires,
        returning its value / raising its exception).
        """
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_ev = until
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )
        while self._queue:
            if stop_ev is not None and stop_ev._processed:
                break
            nxt = self._queue[0][0]
            if stop_at is not None and nxt > stop_at:
                self._now = stop_at
                return None
            self.step()
        if stop_ev is not None:
            if not stop_ev._processed:
                raise SimulationError("run() finished but the awaited event never fired")
            if stop_ev._ok:
                return stop_ev._value
            raise stop_ev._value
        if stop_at is not None:
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self._now:.6f} queued={len(self._queue)}>"
