"""Core event loop, events and processes for the DES kernel.

Design notes
------------
* Time is a ``float`` in **seconds** everywhere in :mod:`repro`.
* The event queue is a :class:`_CalendarQueue` — a calendar-queue/heap
  hybrid keyed on ``(time, priority, tiebreak)``.  It boots as a flat
  binary heap and converts to a timer wheel (day-buckets sized from the
  observed inter-pop gap, plus a far-future overflow heap) once the
  queue is large enough for the wheel to pay off.  Pop order is provably
  identical to the flat heap's (see the class docstring); a hypothesis
  property test pins the equivalence.
* :meth:`Environment.run` drains same-instant cohorts in one pass:
  per-event semantics (HB ``on_pop`` hooks, ``events_processed``, crash
  propagation, stop-event checks) are unchanged, but loop bookkeeping is
  paid once per distinct timestamp.  ``Environment.instants`` and
  ``Environment.max_instant_batch`` expose the cohort structure.
* Processes are plain Python generators.  A process yields an :class:`Event`
  to suspend until the event fires; the event's value is sent back into the
  generator (or its exception thrown in).
* Interrupts follow SimPy semantics: :meth:`Process.interrupt` throws
  :class:`Interrupt` into the process at its current yield point.

Ordering contract
-----------------
Execution order is fully deterministic for a given program and a given
:class:`SchedulePolicy` — a requirement for reproducible benchmarks.
The guarantees, from strongest to weakest:

1. **Time** always wins: an event at an earlier simulated time runs
   before any event at a later time.
2. **Priority** breaks time ties: at equal times, ``URGENT`` events
   (process starts, interrupt delivery) run before ``NORMAL`` ones.
3. **Tie-break** breaks ``(time, priority)`` ties and is the *only*
   layer a program may not rely on.  The default policy is FIFO (the
   monotonically increasing schedule sequence number ``seq``), which
   pins a single canonical order.  A seeded
   :class:`RandomTiebreakPolicy` instead permutes same-``(time,
   priority)`` events deterministically per seed; the schedule
   sanitizer (:mod:`repro.analysis.races`) re-runs scenarios under
   many such permutations to prove simulation outcomes do not depend
   on layer 3.  Anything that must stay ordered at equal instants has
   to encode it in layers 1-2 or in its own data structure — e.g.
   :class:`repro.mpisim.SimComm` preserves per-``(src, dst)`` message
   order (the MPI non-overtaking guarantee) by batching same-instant
   deliveries, and :class:`repro.sim.resources` wait queues are FIFO
   in arrival order regardless of how the grants interleave.

The policy is fixed for the life of an :class:`Environment` (pass it
to the constructor, or install a process-wide default with
:func:`set_default_schedule_policy` for code that builds its own
environments); swapping policies mid-run would interleave incomparable
heap keys.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.trace import channel_for as _trace_channel_for

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "ProcessKilled",
    "RandomTiebreakPolicy",
    "SchedulePolicy",
    "SimulationError",
    "Timeout",
    "set_default_hb_recorder",
    "set_default_schedule_policy",
]

#: Event scheduling priorities (lower runs first at equal times).
URGENT = 0
NORMAL = 1


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (double-trigger, negative delay...)."""


class SchedulePolicy:
    """Tie-break policy for events at equal ``(time, priority)``.

    The base class is FIFO: events run in scheduling order (``seq``).
    Subclasses override :meth:`key` to return any totally ordered,
    *unique* key per ``seq`` — uniqueness matters because heap entries
    fall through to comparing :class:`Event` objects otherwise.
    """

    name = "fifo"

    def key(self, seq: int) -> Any:
        """Heap tie-break key for the event with schedule number *seq*."""
        return seq


#: shared instance returned by Environment.schedule_policy for the fast path
_FIFO_POLICY = SchedulePolicy()

_MASK64 = (1 << 64) - 1


def _mix64(seed: int, seq: int) -> int:
    """splitmix64 of (seed, seq): a deterministic, well-mixed 64-bit hash."""
    z = (seq + 0x9E3779B97F4A7C15 * (seed + 1)) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


class RandomTiebreakPolicy(SchedulePolicy):
    """Seeded permutation of same-``(time, priority)`` events.

    Each scheduled event gets the tie-break key ``(mix64(seed, seq),
    seq)``: events at equal instants run in hash order — a different
    deterministic permutation per *seed* — while the trailing ``seq``
    keeps keys unique.  Used by the schedule sanitizer to explore the
    legal reorderings the FIFO default happens to pin down.
    """

    name = "random"

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)

    def key(self, seq: int) -> Any:
        return (_mix64(self.seed, seq), seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RandomTiebreakPolicy seed={self.seed}>"


#: process-wide default policy factory consulted by Environment.__init__
#: when no explicit policy is passed (None means FIFO)
_default_policy_factory: Optional[Callable[[], SchedulePolicy]] = None


def set_default_schedule_policy(
    factory: Optional[Callable[[], SchedulePolicy]],
) -> None:
    """Install (or clear, with ``None``) the default schedule policy.

    Environments constructed while a factory is installed ask it for
    their tie-break policy — the hook the schedule permuter uses to
    reach environments built deep inside scenario functions.
    """
    global _default_policy_factory
    _default_policy_factory = factory


#: process-wide default happens-before recorder factory; receives the new
#: Environment, returns a recorder (installed as ``env.hb``) or None
_default_hb_factory: Optional[Callable[["Environment"], Any]] = None


def set_default_hb_recorder(
    factory: Optional[Callable[["Environment"], Any]],
) -> None:
    """Install (or clear, with ``None``) the default hb-recorder factory.

    Environments constructed while a factory is installed get
    ``env.hb = factory(env)`` — how the schedule sanitizer attaches its
    race detector / schedule recorder to environments built deep inside
    scenario functions.  The factory may return None to skip an env.
    """
    global _default_hb_factory
    _default_hb_factory = factory


class ProcessKilled(SimulationError):
    """Raised in waiters of a process torn down by :meth:`Process.kill`."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The optional *cause* is available as :attr:`cause` and carries whatever
    context the interrupter supplied (e.g. a preemption record).
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class _Pending:
    """Sentinel for an event value that has not been set yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<pending>"


PENDING = _Pending()


class Event:
    """A one-shot occurrence processes can wait on.

    Lifecycle: *pending* -> *triggered* (scheduled on the queue with a value
    or an exception) -> *processed* (callbacks ran, waiters resumed).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: callables invoked with this event when it is processed
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._processed = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is PENDING:
            raise SimulationError("value of event is not yet available")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with *value*."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes get *exception* thrown at their yield point.
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def __repr__(self) -> str:
        state = (
            "processed"
            if self._processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"

    # -- composition ---------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.env, [self, other])


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, NORMAL, delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


#: upper bound on recycled :class:`_ScheduledCall` instances per environment
_CALL_POOL_MAX = 1024


class _ScheduledCall(Event):
    """Kernel-owned one-shot timer that invokes a function when popped.

    Created only by :meth:`Environment.call_later`; user code never holds a
    reference, so :meth:`Environment.step` can recycle instances through
    ``Environment._call_pool`` instead of allocating a Timeout + Process +
    init-Event triple for every fire-and-forget delay.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: "Environment") -> None:
        super().__init__(env)
        self._fn: Optional[Callable[[], None]] = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<_ScheduledCall fn={self._fn!r} at {id(self):#x}>"


#: number of day-buckets on the timer wheel
_WHEEL_BUCKETS = 256
#: queue length at which the flat heap converts to the wheel
_WHEEL_ENTER = 4096
#: wheel collapses back to the flat heap below this size
_WHEEL_EXIT = _WHEEL_ENTER // 4
#: bucket width as a multiple of the observed mean inter-event gap
_WHEEL_GAP_MULT = 4.0


class _CalendarQueue:
    """Calendar-queue / heap hybrid preserving the exact heap total order.

    Entries are full ``(time, priority, key, event)`` tuples.  The queue
    starts as a flat binary heap — and in that mode the kernel hot paths
    (:meth:`Environment._schedule`, :meth:`Environment.run`) operate on
    ``_ov`` with inline C ``heapq`` calls, so small simulations pay zero
    overhead versus a bare heap.  Once a push grows the queue past
    ``_WHEEL_ENTER`` entries (heap ops now cost log2(n) > 12 tuple
    comparisons each) it converts to a timer wheel of
    ``_WHEEL_BUCKETS`` day-buckets, each a small heap, sized from the
    queue's observed time span.  Far-future entries (beyond the wheel
    horizon) overflow into a sorted heap and migrate onto the wheel
    when the cursor wraps and the wheel re-bases onto their era; when
    the queue drains below ``_WHEEL_EXIT`` it collapses back to the
    flat heap and the inline fast path.

    Ordering proof sketch: bucket classification uses the monotone map
    ``f(t) = int((t - base) * inv_width)`` at *both* push and migration
    time, so ``f(a) < f(b)`` implies ``a < b`` — every entry in an
    earlier bucket (and every wheel entry vs. every overflow entry) is
    strictly earlier in time, while entries at equal times always land
    in the same bucket, whose heap orders them by the full
    ``(time, priority, key)`` tuple.  Pushes below the cursor's bucket
    (possible only for times at or before the bucket's range, e.g.
    zero-delay events right after a re-base) clamp onto the cursor
    bucket, which is always the next one scanned, where the in-bucket
    heap restores their place.  Pop order is therefore exactly the flat
    heap's total order; the property test in
    ``tests/test_sim_calendar_queue.py`` pins this against a reference
    heap including ties, far-future overflow and wheel wraps.
    """

    __slots__ = (
        "_ov",
        "_buckets",
        "_cur",
        "_base",
        "_width",
        "_inv_width",
        "_size",
        "_wheel",
        "_pops",
        "_last_rebase_t",
        "_convert_min_size",
        "wheel_pushes",
        "overflow_pushes",
        "rebases",
        "migrations",
    )

    def __init__(self) -> None:
        #: overflow heap; in heap mode it holds the whole queue
        self._ov: list[tuple] = []
        self._buckets: list[list[tuple]] = [[] for _ in range(_WHEEL_BUCKETS)]
        self._cur = 0
        self._base = 0.0
        self._width = 0.0
        self._inv_width = 0.0
        self._size = 0
        self._wheel = False
        #: pops since the last re-base (width estimator for the next one)
        self._pops = 0
        self._last_rebase_t = 0.0
        #: size at which the next wheel-conversion attempt triggers;
        #: doubled after a failed attempt (zero-span queue) so a huge
        #: same-instant spike cannot re-scan the heap on every push
        self._convert_min_size = _WHEEL_ENTER
        self.wheel_pushes = 0
        self.overflow_pushes = 0
        self.rebases = 0
        self.migrations = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, item: tuple) -> None:
        self._size += 1
        if self._wheel:
            i = int((item[0] - self._base) * self._inv_width)
            if i < _WHEEL_BUCKETS:
                cur = self._cur
                if i < cur:
                    i = cur
                heapq.heappush(self._buckets[i], item)
                self.wheel_pushes += 1
                return
            self.overflow_pushes += 1
            heapq.heappush(self._ov, item)
            return
        heapq.heappush(self._ov, item)
        if self._size >= self._convert_min_size:
            self._try_convert()

    def _try_convert(self) -> None:
        """Convert heap -> wheel, sizing buckets from the queue's span."""
        ov = self._ov
        t0 = ov[0][0]
        span = max(item[0] for item in ov) - t0
        if span <= 0.0:
            # Degenerate same-instant queue: a wheel cannot help; retry
            # only after the queue doubles again.
            self._convert_min_size = self._size * 2
            return
        self._enter_wheel(t0, span / self._size * _WHEEL_GAP_MULT)

    def _rebase(self, base: float) -> None:
        """Re-base the wheel onto the era starting at *base* (wheel wrap).

        Width comes from the mean inter-pop gap since the last re-base;
        with no gap data (a sparse era: the wheel wrapped without pops at
        distinct times) the previous width is grown 8x instead.
        """
        pops = self._pops
        span = base - self._last_rebase_t
        if pops > 0 and span > 0.0:
            width = (span / pops) * _WHEEL_GAP_MULT
        else:
            width = self._width * 8.0
        self._enter_wheel(base, width)

    def _enter_wheel(self, base: float, width: float) -> None:
        """Lay the wheel over [base, base + buckets*width) and migrate
        every overflow entry inside that horizon onto it.

        When called from :meth:`_advance` on a wheel wrap, base is the
        overflow head's time, so ``f(head) == 0`` and at least one entry
        always migrates — the wrap loop cannot livelock.
        """
        self._wheel = True
        self._base = base
        self._width = width
        self._inv_width = inv = 1.0 / width
        self._cur = 0
        self._pops = 0
        self._last_rebase_t = base
        self.rebases += 1
        ov = self._ov
        buckets = self._buckets
        migrated = 0
        while ov:
            i = int((ov[0][0] - base) * inv)
            if i >= _WHEEL_BUCKETS:
                break
            heapq.heappush(buckets[i], heapq.heappop(ov))
            migrated += 1
        self.migrations += migrated

    def _collapse(self) -> None:
        """Collapse wheel -> flat heap (queue drained below the wheel's
        useful size); restores the kernel's inline heap fast path."""
        ov = self._ov
        for b in self._buckets:
            if b:
                ov.extend(b)
                del b[:]
        heapq.heapify(ov)
        self._wheel = False
        self._cur = 0
        self._convert_min_size = _WHEEL_ENTER

    def _advance(self) -> Optional[list[tuple]]:
        """Move the cursor to the next non-empty bucket, re-basing on
        wrap; returns the bucket, or None when the overflow heap is next."""
        buckets = self._buckets
        cur = self._cur
        while True:
            while cur < _WHEEL_BUCKETS:
                b = buckets[cur]
                if b:
                    self._cur = cur
                    return b
                cur += 1
            if not self._ov:
                self._cur = cur
                return None
            # Wheel exhausted with future entries pending: re-base onto
            # the overflow's era.  base == head time, so f(head) == 0 and
            # at least one entry always migrates — no livelock.
            self._rebase(self._ov[0][0])
            cur = self._cur

    def pop(self) -> tuple:
        """Pop the globally smallest ``(time, priority, key, event)``."""
        self._size -= 1
        if self._wheel:
            b = self._advance()
            item = heapq.heappop(b if b is not None else self._ov)
            self._pops += 1
            if self._size < _WHEEL_EXIT:
                self._collapse()
            return item
        return heapq.heappop(self._ov)

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty.

        May advance the cursor / re-base (order is unaffected)."""
        if self._size == 0:
            return float("inf")
        if self._wheel:
            b = self._advance()
            if b is not None:
                return b[0][0]
        return self._ov[0][0]


class _ConditionValue(dict):
    """Ordered mapping of event -> value for AllOf/AnyOf results."""


class Condition(Event):
    """Waits for a boolean combination of events (base of AllOf/AnyOf)."""

    __slots__ = ("_events", "_count", "_evaluate")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[int, int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._count = 0
        self._evaluate = evaluate
        for ev in self._events:
            if ev.env is not env:
                raise SimulationError("cannot mix events from different environments")
        if not self._events:
            self.succeed(_ConditionValue())
            return
        for ev in self._events:
            if ev._processed:
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _collect_values(self) -> _ConditionValue:
        vals = _ConditionValue()
        for ev in self._events:
            if ev._processed and ev._ok:
                vals[ev] = ev._value
        return vals

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(len(self._events), self._count):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Fires when all sub-events have fired; value maps event -> value."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done == total, events)


class AnyOf(Condition):
    """Fires when at least one sub-event has fired."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, lambda total, done: done >= 1, events)


class Process(Event):
    """A running generator, itself waitable as an event.

    The process event triggers when the generator returns (value = return
    value) or raises (the exception propagates to waiters, or out of
    :meth:`Environment.run` if nobody waits).
    """

    __slots__ = ("_generator", "_target", "name", "daemon")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: daemon processes (perpetual service loops parked on a work
        #: queue) are expected to outlive the simulation; the schedule
        #: sanitizer's stall check skips them, like daemon threads
        self.daemon = daemon
        #: event this process is currently waiting on (None when runnable)
        self._target: Optional[Event] = None
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init, URGENT)
        if env.hb is not None:
            env.hb.on_process(self)

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._value is not PENDING:
            raise SimulationError(f"{self} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to interrupt itself")
        # Deliver via an urgent event so interrupt ordering is deterministic.
        ev = Event(self.env)
        ev._ok = False
        ev._value = Interrupt(cause)
        ev.callbacks.append(self._resume)
        self.env._schedule(ev, URGENT)

    def kill(self, cause: Any = None) -> None:
        """Tear the process down *without* running its handlers (crash model).

        Unlike :meth:`interrupt`, which throws at the yield point so the
        process can recover, ``kill`` models a component dying mid-flight:
        the generator is closed (only ``finally`` blocks run), the event it
        was waiting on is abandoned — cancellable targets such as a pending
        mailbox receive are withdrawn so they cannot swallow a message nobody
        will read — and any child :class:`Process` it was waiting on is killed
        in cascade.  Waiters of a killed process see it *fail* with *cause*
        (wrapped in :class:`ProcessKilled` when it is not an exception).

        Killing an already-terminated process is a no-op, so crash plans may
        fire after the component finished on its own.
        """
        if self._value is not PENDING:
            return
        if self is self.env.active_process:
            raise SimulationError("a process is not allowed to kill itself")
        target = self._target
        self._target = None
        if isinstance(cause, BaseException):
            exc: BaseException = cause
        else:
            exc = ProcessKilled(f"process {self.name!r} killed")
        self._ok = False
        self._value = exc
        self._generator.close()
        self.env._schedule(self, NORMAL)
        if target is not None:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
            cancel = getattr(target, "cancel", None)
            if cancel is not None and not target.triggered:
                cancel()
            if isinstance(target, Process) and target.is_alive:
                target.kill(exc)

    def _resume(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already terminated (e.g. interrupt raced completion)
        # Detach from the event we were waiting on (for interrupts).
        if (
            self._target is not None
            and self._target is not event
            and self._target.callbacks is not None
        ):
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self.env._active = self
        try:
            while True:
                try:
                    if event._ok:
                        target = self._generator.send(event._value)
                    else:
                        target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                    self.env._schedule(self, NORMAL)
                    return
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                    # If nothing waits on this process the exception must not
                    # vanish: surface it from Environment.run().
                    if not self.callbacks:
                        self.env._crash(exc)
                    self.env._schedule(self, NORMAL)
                    return
                if not isinstance(target, Event):
                    exc2 = SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                    event = Event(self.env)
                    event._ok = False
                    event._value = exc2
                    continue
                if target._processed:
                    # Already done: loop immediately with its value.
                    event = target
                    continue
                self._target = target
                target.callbacks.append(self._resume)
                return
        finally:
            self.env._active = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'dead'}>"


class Environment:
    """The simulation environment: clock plus event queue.

    Parameters
    ----------
    initial_time:
        Starting value of :attr:`now` (seconds).
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_active",
        "_crashed",
        "_call_pool",
        "_policy",
        "events_processed",
        "peak_queue_len",
        "instants",
        "max_instant_batch",
        "tombstone_compact_min",
        "tombstone_compact_ratio",
        "trace",
        "hb",
    )

    def __init__(
        self,
        initial_time: float = 0.0,
        schedule_policy: Optional[SchedulePolicy] = None,
    ) -> None:
        self._now = float(initial_time)
        self._queue: _CalendarQueue = _CalendarQueue()
        self._seq = 0
        self._active: Optional[Process] = None
        self._crashed: Optional[BaseException] = None
        #: free-list of recycled :class:`_ScheduledCall` events
        self._call_pool: list[_ScheduledCall] = []
        #: tie-break policy (None = FIFO fast path; see module docstring)
        if schedule_policy is None and _default_policy_factory is not None:
            schedule_policy = _default_policy_factory()
        self._policy = schedule_policy
        #: total events popped by :meth:`step` (perf accounting)
        self.events_processed = 0
        #: high-water mark of the event heap (perf accounting)
        self.peak_queue_len = 0
        #: distinct timestamps drained by :meth:`run` (perf accounting)
        self.instants = 0
        #: largest same-instant cohort drained in one pass by :meth:`run`
        self.max_instant_batch = 0
        #: store/resource tombstone compaction tunables: compact a wait
        #: queue once it holds more than *min* tombstones AND tombstones
        #: exceed *ratio* of the queue (see :mod:`repro.sim.resources`)
        self.tombstone_compact_min = 16
        self.tombstone_compact_ratio = 0.5
        #: trace channel — NULL_CHANNEL (enabled=False) unless a
        #: :class:`repro.trace.Tracer` is installed when this env is built
        self.trace = _trace_channel_for(self)
        #: happens-before recorder hook — None unless a
        #: :class:`repro.analysis.races` recorder is installed on this env;
        #: when set, its ``on_pop``/``on_process``/store/resource hooks see
        #: every kernel event (the schedule sanitizer's vantage point)
        self.hb = None
        if _default_hb_factory is not None:
            self.hb = _default_hb_factory(self)

    # -- clock ---------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active

    @property
    def schedule_policy(self) -> SchedulePolicy:
        """The tie-break policy in force (FIFO unless overridden)."""
        return self._policy if self._policy is not None else _FIFO_POLICY

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> Process:
        """Start *generator* as a new process."""
        return Process(self, generator, name, daemon)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_later(
        self, delay: float, fn: Callable[[], None], priority: int = NORMAL
    ) -> None:
        """Schedule plain *fn* to run after *delay* simulated seconds.

        Fire-and-forget fast path for kernel-internal timers (e.g. message
        delivery): no :class:`Process` is spawned and the backing
        :class:`_ScheduledCall` event is recycled through a free-list, so a
        polling/delivery loop costs one heap push instead of three event
        allocations.  The event is kernel-owned and never exposed, which is
        what makes recycling safe.
        """
        if delay < 0:
            raise SimulationError(f"negative call_later delay {delay!r}")
        pool = self._call_pool
        ev = pool.pop() if pool else _ScheduledCall(self)
        ev._fn = fn
        self._schedule(ev, priority, delay)

    def call_later_batch(
        self,
        delay: float,
        fns: Iterable[Callable[[], None]],
        priority: int = NORMAL,
    ) -> None:
        """Schedule every function in *fns* to run after *delay*, as one event.

        Batched same-instant variant of :meth:`call_later`: the whole cohort
        rides a single pooled :class:`_ScheduledCall` (one queue push, one
        pop, one generator-resume boundary) instead of one event per
        function.  The functions run back-to-back in iteration order — the
        same order ``call_later`` would have delivered them under FIFO
        tie-breaking, since consecutive pushes at equal ``(time, priority)``
        pop in sequence order.  Use this when a loop would otherwise issue
        per-item ``call_later`` calls with identical delay and priority
        (lint rule RA011 flags that shape).
        """
        fns = fns if isinstance(fns, list) else list(fns)
        if not fns:
            return
        if len(fns) == 1:
            self.call_later(delay, fns[0], priority)
            return

        def _run_batch(fns: list = fns) -> None:
            for fn in fns:
                fn()

        self.call_later(delay, _run_batch, priority)

    # -- scheduling ------------------------------------------------------
    def _schedule(self, event: Event, priority: int, delay: float = 0.0) -> None:
        self._seq += 1
        key = self._seq if self._policy is None else self._policy.key(self._seq)
        q = self._queue
        if q._wheel:
            q.push((self._now + delay, priority, key, event))
        else:
            # Heap mode: inline the push (C heapq on the flat list) so
            # small simulations pay nothing for the wheel machinery.
            heapq.heappush(q._ov, (self._now + delay, priority, key, event))
            q._size += 1
            if q._size >= q._convert_min_size:
                q._try_convert()
        n = q._size
        if n > self.peak_queue_len:
            self.peak_queue_len = n

    def _crash(self, exc: BaseException) -> None:
        if self._crashed is None:
            self._crashed = exc

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process exactly one event."""
        if not self._queue:
            raise SimulationError("no scheduled events")
        t, _prio, _key, event = self._queue.pop()
        self._now = t
        self.events_processed += 1
        if self.hb is not None:
            self.hb.on_pop(t, _prio, event)
        if type(event) is _ScheduledCall:
            # Kernel-owned timer: invoke and recycle, no callback machinery.
            fn = event._fn
            event._fn = None
            if len(self._call_pool) < _CALL_POOL_MAX:
                self._call_pool.append(event)
            fn()
        else:
            callbacks = event.callbacks
            event.callbacks = None
            event._processed = True
            if callbacks:
                for cb in callbacks:
                    cb(event)
        if self._crashed is not None:
            exc = self._crashed
            self._crashed = None
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        *until* may be ``None`` (run until no events remain), a number (run
        until that simulated time) or an :class:`Event` (run until it fires,
        returning its value / raising its exception).
        """
        stop_at: Optional[float] = None
        stop_ev: Optional[Event] = None
        if until is None:
            pass
        elif isinstance(until, Event):
            stop_ev = until
        else:
            stop_at = float(until)
            if stop_at < self._now:
                raise SimulationError(
                    f"until={stop_at} lies in the past (now={self._now})"
                )
        # Main loop: drain same-instant cohorts in one pass.  Each event is
        # still popped, HB-recorded and crash-checked individually (same
        # per-event semantics as step()); only the loop bookkeeping — the
        # clock write, the stop_at comparison, the instant accounting — is
        # hoisted to once per distinct timestamp.
        q = self._queue
        pool = self._call_pool
        # prev_t/batch persist across drain passes so a mid-cohort
        # heap->wheel conversion (which re-enters the outer loop at the
        # same instant) neither double-counts the instant nor splits its
        # batch size.
        prev_t: Optional[float] = None
        batch = 0
        while q._size:
            if stop_ev is not None and stop_ev._processed:
                break
            t = q.peek_time() if q._wheel else q._ov[0][0]
            if stop_at is not None and t > stop_at:
                self._now = stop_at
                if batch > self.max_instant_batch:
                    self.max_instant_batch = batch
                return None
            self._now = t
            if t != prev_t:
                if batch > self.max_instant_batch:
                    self.max_instant_batch = batch
                batch = 0
                self.instants += 1
                prev_t = t
            if not q._wheel:
                # Heap-mode cohort: inline C heapq pops on the flat list.
                ov = q._ov
                while True:
                    _t, _prio, _key, event = heapq.heappop(ov)
                    q._size -= 1
                    self.events_processed += 1
                    batch += 1
                    if self.hb is not None:
                        self.hb.on_pop(_t, _prio, event)
                    if type(event) is _ScheduledCall:
                        fn = event._fn
                        event._fn = None
                        if len(pool) < _CALL_POOL_MAX:
                            pool.append(event)
                        fn()
                    else:
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                    if self._crashed is not None:
                        exc = self._crashed
                        self._crashed = None
                        raise exc
                    if stop_ev is not None and stop_ev._processed:
                        break
                    if q._wheel:
                        # A push mid-cohort converted the queue to wheel
                        # mode; re-enter through the generic path (same
                        # instant continues there).
                        break
                    if not ov or ov[0][0] != t:
                        break
            else:
                # Wheel-mode cohort: generic pops (bucket scan inside).
                while True:
                    _t, _prio, _key, event = q.pop()
                    self.events_processed += 1
                    batch += 1
                    if self.hb is not None:
                        self.hb.on_pop(_t, _prio, event)
                    if type(event) is _ScheduledCall:
                        fn = event._fn
                        event._fn = None
                        if len(pool) < _CALL_POOL_MAX:
                            pool.append(event)
                        fn()
                    else:
                        callbacks = event.callbacks
                        event.callbacks = None
                        event._processed = True
                        if callbacks:
                            for cb in callbacks:
                                cb(event)
                    if self._crashed is not None:
                        exc = self._crashed
                        self._crashed = None
                        raise exc
                    if stop_ev is not None and stop_ev._processed:
                        break
                    if not q._size or q.peek_time() != t:
                        break
        if batch > self.max_instant_batch:
            self.max_instant_batch = batch
        if stop_ev is not None:
            if not stop_ev._processed:
                raise SimulationError("run() finished but the awaited event never fired")
            if stop_ev._ok:
                return stop_ev._value
            raise stop_ev._value
        if stop_at is not None:
            self._now = stop_at
        return None

    def __repr__(self) -> str:
        return f"<Environment t={self._now:.6f} queued={len(self._queue)}>"
