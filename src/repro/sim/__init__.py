"""Discrete-event simulation kernel.

A compact, deterministic, generator-based DES engine in the style of SimPy.
Every other substrate in :mod:`repro` (network fabric, disks, tape library,
file systems, the PFTool MPI ranks) is expressed as processes scheduled by
this kernel, which makes the whole archive system reproducible from a single
seed and independent of wall-clock time.

Public surface
--------------
:class:`Environment`
    The event loop: schedules events, advances simulated time.
:class:`Process`
    A running generator; yields events to wait on, supports interrupts.
:class:`Event`, :class:`Timeout`, :class:`AllOf`, :class:`AnyOf`
    Waitable primitives.
:class:`Interrupt`
    Exception thrown into a process by :meth:`Process.interrupt`.
:class:`Resource`, :class:`PriorityResource`
    Semaphore-style resources with FIFO / priority queues.
:class:`Container`
    Continuous quantity (bytes, slots) with put/get.
:class:`Store`, :class:`FilterStore`, :class:`PriorityStore`
    Object queues used for message passing.
:class:`StoreGet`
    Pending store retrieval; supports eager ``cancel()`` for receives
    that race a timer and lose.
"""

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    ProcessKilled,
    RandomTiebreakPolicy,
    SchedulePolicy,
    SimulationError,
    Timeout,
    set_default_hb_recorder,
    set_default_schedule_policy,
)
from repro.sim.resources import (
    Container,
    FilterStore,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
    StoreGet,
)
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "ProcessKilled",
    "RandomStreams",
    "RandomTiebreakPolicy",
    "Resource",
    "SchedulePolicy",
    "SimulationError",
    "Store",
    "StoreGet",
    "Timeout",
    "set_default_hb_recorder",
    "set_default_schedule_policy",
]
