"""Shared resources for the DES kernel: semaphores, containers and stores.

These follow SimPy's request/release and put/get protocols:

* ``with resource.request() as req: yield req`` acquires a slot.
* ``yield store.put(item)`` / ``item = yield store.get()`` pass objects.

All wait queues are strict FIFO (or priority-then-FIFO) so that simulations
are deterministic.

Performance contract (the engine fast path relies on it):

* every put/get/request/release/cancel is amortised O(1) — FIFO queues are
  deques consumed with ``popleft``, never ``list.pop(0)``/``list.remove``;
* cancellation is *lazy*: a withdrawn waiter becomes a tombstone
  (``callbacks = None``) that the owning queue sweeps when it surfaces, and
  queues compact themselves when tombstones outnumber live waiters, so mass
  cancellation (10k parked receives) costs O(n), not O(n^2);
* waiter counts are cached (:attr:`Resource.queue_len` is O(1)).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Optional

from repro.sim.kernel import Environment, Event, SimulationError

__all__ = [
    "Container",
    "FilterStore",
    "PriorityResource",
    "PriorityStore",
    "Request",
    "Resource",
    "Store",
    "StoreGet",
]


class Request(Event):
    """Pending acquisition of a :class:`Resource` slot.

    Usable as a context manager: releases on exit (including when the
    requesting process is interrupted before acquisition).
    """

    __slots__ = ("resource", "priority", "key")

    def __init__(self, resource: "Resource", priority: int = 0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        hb = self.env.hb
        if hb is not None:
            hb.on_request(resource, self)
        resource._enqueue(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw an unacquired request (no-op if already acquired)."""
        self.resource.release(self)


class Resource:
    """A counted resource (semaphore) with a FIFO wait queue.

    Parameters
    ----------
    env:
        Simulation environment.
    capacity:
        Number of concurrent holders allowed.
    """

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self._seq = 0
        #: requests currently holding a slot
        self.users: list[Request] = []
        #: waiting requests as a heap of (priority, seq, request)
        self._waiters: list[tuple[int, int, Request]] = []
        #: live (untriggered, uncancelled) entries in the waiter heap
        self._nwaiting = 0

    # -- public --------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self.users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot (O(1): cached count)."""
        return self._nwaiting

    def request(self, priority: int = 0) -> Request:
        return Request(self, priority)

    def release(self, request: Request) -> None:
        """Release a held slot or withdraw a pending request.

        A pending (never-granted) request is cancelled lazily: its callback
        list is cleared and :meth:`_grant` skips it when it surfaces.
        """
        hb = self.env.hb
        if hb is not None:
            hb.on_release(self, request)
        try:
            self.users.remove(request)
        except ValueError:
            if not request.triggered and request.callbacks is not None:
                request.callbacks = None
                self._nwaiting -= 1
                env = self.env
                dead = len(self._waiters) - self._nwaiting
                if dead > env.tombstone_compact_min and dead > (
                    env.tombstone_compact_ratio * len(self._waiters)
                ):
                    self._compact_waiters()
            return
        self._grant()

    # -- internals -----------------------------------------------------
    def _enqueue(self, request: Request) -> None:
        self._seq += 1
        heapq.heappush(self._waiters, (request.priority, self._seq, request))
        self._nwaiting += 1
        self._grant()

    def _grant(self) -> None:
        while self._waiters and len(self.users) < self.capacity:
            _, _, req = heapq.heappop(self._waiters)
            if req.callbacks is None:  # cancelled tombstone
                continue
            self.users.append(req)
            self._nwaiting -= 1
            req.succeed(self)

    def _compact_waiters(self) -> None:
        """Rebuild the waiter heap without cancelled tombstones.

        Filtering preserves each survivor's ``(priority, seq)`` key, so a
        heapify restores the exact grant order; only dead entries (which
        :meth:`_grant` would have skipped anyway) disappear.  Without this,
        a long scheduler soak that cancels priority requests en masse keeps
        dead entries pinned for hours of simulated time.
        """
        self._waiters = [w for w in self._waiters if w[2].callbacks is not None]
        heapq.heapify(self._waiters)

    def __repr__(self) -> str:
        return (
            f"<{type(self).__name__} {len(self.users)}/{self.capacity} held,"
            f" {self.queue_len} waiting>"
        )


class PriorityResource(Resource):
    """Resource whose waiters are served lowest-priority-value first."""

    def request(self, priority: int = 0) -> Request:  # noqa: D102 - inherited
        return Request(self, priority)


class Container:
    """A continuous quantity (e.g. bytes of buffer space).

    ``put`` adds, ``get`` removes; both block until satisfiable.  Gets are
    served FIFO; a large blocked get blocks later smaller gets (no overtaking)
    which models byte-credit queues faithfully.
    """

    def __init__(
        self, env: Environment, capacity: float = float("inf"), init: float = 0.0
    ) -> None:
        if init < 0 or init > capacity:
            raise SimulationError("init must lie in [0, capacity]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._puts: deque[tuple[Event, float]] = deque()
        self._gets: deque[tuple[Event, float]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        ev = Event(self.env)
        self._puts.append((ev, amount))
        self._settle()
        return ev

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise SimulationError("amount must be non-negative")
        if amount > self.capacity:
            raise SimulationError("get amount exceeds container capacity")
        ev = Event(self.env)
        self._gets.append((ev, amount))
        self._settle()
        return ev

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._puts:
                ev, amt = self._puts[0]
                if self._level + amt <= self.capacity:
                    self._puts.popleft()
                    self._level += amt
                    ev.succeed(amt)
                    progress = True
            if self._gets:
                ev, amt = self._gets[0]
                if amt <= self._level:
                    self._gets.popleft()
                    self._level -= amt
                    ev.succeed(amt)
                    progress = True

    def __repr__(self) -> str:
        return f"<Container level={self._level}/{self.capacity}>"


class StoreGet(Event):
    """Pending retrieval from a :class:`Store`.

    Supports :meth:`cancel` to withdraw an unused get in O(1): the getter
    becomes a *tombstone* (``callbacks = None``) that stays queued until a
    settle pass surfaces it.  Correctness hinges on the sweep happening
    **before** :meth:`Store._do_get` is consulted — a cancelled getter
    must never be handed an item nobody will ever read (a receive that
    swallows a message is exactly how PFTool's WatchDog used to lose its
    ``Exit``).  :meth:`Store._settle` checks for tombstones first, and the
    store compacts its get-queue when tombstones outnumber live waiters,
    so mass cancellation is amortised O(1) per cancel instead of the old
    O(n) ``list.remove``.
    """

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        self.store = store

    def cancel(self) -> None:
        """Withdraw this get (no-op once an item has been delivered)."""
        if self.triggered or self.callbacks is None:
            return
        self.callbacks = None
        store = self.store
        store._cancelled += 1
        env = store.env
        if store._cancelled > env.tombstone_compact_min and store._cancelled > (
            env.tombstone_compact_ratio * len(store._getq)
        ):
            store._compact_getq()


class Store:
    """FIFO object queue with optional capacity."""

    def __init__(self, env: Environment, capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        self.items: list[Any] = []
        self._putq: deque[tuple[Event, Any]] = deque()
        self._getq: deque[StoreGet] = deque()
        #: cancelled-but-unswept getters still sitting in ``_getq``
        self._cancelled = 0

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        hb = self.env.hb
        if hb is not None:
            hb.on_store_put(self, item)
        ev = Event(self.env)
        self._putq.append((ev, item))
        self._settle()
        return ev

    def put_nowait(self, item: Any) -> bool:
        """Deposit *item* if capacity allows, without allocating a put event.

        Fast path for fire-and-forget producers (e.g. message delivery
        timers) that never wait on the put.  Returns False when the store
        is full — the caller must then fall back to :meth:`put`.
        """
        if len(self.items) >= self.capacity:
            return False
        hb = self.env.hb
        if hb is not None:
            hb.on_store_put(self, item)
        self._do_put(item)
        self._settle()
        return True

    def put_batch(self, items: list) -> bool:
        """Deposit every item in *items* if capacity allows, in one pass.

        Batched :meth:`put_nowait`: per-item HB edges are still recorded
        (the sanitizer sees each deposit), but the settle sweep — the
        expensive part when getters are queued — runs once for the whole
        batch.  Returns False (depositing nothing) when the batch would
        overflow; the caller must then fall back to per-item :meth:`put`.
        """
        if len(self.items) + len(items) > self.capacity:
            return False
        hb = self.env.hb
        for item in items:
            if hb is not None:
                hb.on_store_put(self, item)
            self._do_put(item)
        self._settle()
        return True

    def get(self) -> StoreGet:
        ev = StoreGet(self)
        hb = self.env.hb
        if hb is not None:
            hb.on_store_get(self, ev)
        self._getq.append(ev)
        self._settle()
        return ev

    # -- hooks for subclasses -------------------------------------------
    def _do_put(self, item: Any) -> None:
        self.items.append(item)

    def _do_get(self, getter: Event) -> bool:
        """Try to satisfy *getter*; return True on success."""
        if self.items:
            getter.succeed(self.items.pop(0))
            return True
        return False

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putq and len(self.items) < self.capacity:
                ev, item = self._putq.popleft()
                self._do_put(item)
                ev.succeed(None)
                progress = True
            getq = self._getq
            if type(self) is Store:
                # Plain FIFO store: only the head getter may be served, so
                # sweep tombstones off the head until a live one blocks.
                while getq:
                    getter = getq[0]
                    if getter.callbacks is None or getter.triggered:
                        getq.popleft()
                        if not getter.triggered:
                            self._cancelled -= 1
                        progress = True
                        continue
                    if self._do_get(getter):
                        getq.popleft()
                        progress = True
                    else:
                        break
            else:
                # Predicate/priority stores: every live getter gets a look.
                # One full rotation preserves FIFO order of the survivors;
                # tombstones (cancel happened before this sweep) are dropped
                # *before* _do_get so no item is routed to a dead receiver.
                for _ in range(len(getq)):
                    getter = getq.popleft()
                    if getter.callbacks is None or getter.triggered:
                        if not getter.triggered:
                            self._cancelled -= 1
                        progress = True
                        continue
                    if self._do_get(getter):
                        progress = True
                    else:
                        getq.append(getter)

    def _compact_getq(self) -> None:
        """Rebuild ``_getq`` without tombstones (triggered entries too)."""
        self._getq = deque(
            g for g in self._getq if g.callbacks is not None and not g.triggered
        )
        self._cancelled = 0

    def __repr__(self) -> str:
        waiters = len(self._getq) - self._cancelled
        return f"<{type(self).__name__} items={len(self.items)} waiters={waiters}>"


class _FilterGet(StoreGet):
    """A get-event carrying the caller's item predicate."""

    __slots__ = ("_filter",)

    def __init__(
        self, store: "FilterStore", filter: Optional[Callable[[Any], bool]]  # noqa: A002
    ) -> None:
        super().__init__(store)
        self._filter = filter


class FilterStore(Store):
    """Store whose getters can select items with a predicate.

    The returned :class:`StoreGet` supports ``cancel()`` for callers
    that race a receive against a timer and lose interest.
    """

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> StoreGet:  # noqa: A002
        ev = _FilterGet(self, filter)
        hb = self.env.hb
        if hb is not None:
            hb.on_store_get(self, ev)
        self._getq.append(ev)
        self._settle()
        return ev

    def _do_get(self, getter: Event) -> bool:
        flt = getattr(getter, "_filter", None)
        for idx, item in enumerate(self.items):
            if flt is None or flt(item):
                self.items.pop(idx)
                getter.succeed(item)
                return True
        return False


class PriorityStore(Store):
    """Store that always yields the smallest item (heap ordering).

    Items must be comparable; use ``(priority, seq, payload)`` tuples.
    """

    def _do_put(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _do_get(self, getter: Event) -> bool:
        if self.items:
            getter.succeed(heapq.heappop(self.items))
            return True
        return False
