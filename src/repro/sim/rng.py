"""Deterministic, named random streams.

Every stochastic component of the simulation (workload generator, disk seek
jitter, network jitter, failure injection...) draws from its own named
stream so that adding randomness to one subsystem never perturbs another —
the classic common-random-numbers discipline for comparable experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent :class:`numpy.random.Generator` streams.

    Each stream is derived from ``(master_seed, name)`` via SHA-256 so that
    streams are stable across runs and across unrelated code changes.

    Example
    -------
    >>> rs = RandomStreams(2009)
    >>> rs.stream("workload").integers(0, 10)  # doctest: +SKIP
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for *name*."""
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode("utf-8")
            ).digest()
            seed = int.from_bytes(digest[:8], "little")
            gen = np.random.default_rng(seed)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Derive a child stream-set (e.g. one per simulated node).

        The child's master seed depends only on ``(master_seed, name)``,
        so spawning is reproducible and order-independent: spawning
        ``"nodeA"`` before or after ``"nodeB"`` yields the same child,
        and a child's streams never collide with the parent's.

        >>> parent = RandomStreams(2009)
        >>> a = parent.spawn("nodeA")
        >>> b = parent.spawn("nodeB")
        >>> a.master_seed == parent.spawn("nodeA").master_seed
        True
        >>> a.master_seed != b.master_seed
        True
        >>> a.master_seed != parent.master_seed
        True
        >>> int(a.stream("seek").integers(0, 100)) == (
        ...     int(parent.spawn("nodeA").stream("seek").integers(0, 100)))
        True
        """
        digest = hashlib.sha256(f"{self.master_seed}:{name}".encode("utf-8")).digest()
        return RandomStreams(int.from_bytes(digest[8:16], "little"))

    def __repr__(self) -> str:
        return f"<RandomStreams seed={self.master_seed} streams={sorted(self._streams)}>"
