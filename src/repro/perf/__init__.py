"""Engine microbenchmark harness (``python -m repro.perf``).

Tracks the simulator's performance trajectory from PR to PR.  Each
*scenario* is a deterministic, seeded simulation slice that stresses one
engine hot path (fabric fair-share reallocation, store/queue churn,
mpisim message delivery, or a reduced paper-figure workload).  The
runner measures, per scenario:

* ``wall_s`` — wall-clock seconds for one run,
* ``events`` / ``events_per_s`` — kernel events popped and throughput,
* ``peak_queue_len`` — event-queue high-water mark,
* ``instants`` / ``max_instant_batch`` — same-instant dispatch cohorts
  and the largest one (``events / instants`` is the mean batch size the
  cohort drain amortises generator-resume overhead over),
* ``queue`` — calendar-queue occupancy counters (``wheel_pushes``,
  ``overflow_pushes``, ``rebases``, ``migrations``; all zero while the
  queue stays in flat-heap mode, which every current scenario does —
  they characterise the wheel once traces grow past ``_WHEEL_ENTER``),
* ``rate_recomputes`` — fair-share solver invocations on all fabrics,
* ``headline`` — *simulated* outputs (bytes moved, job durations, end
  times).  These are machine-independent and guarded by
  :func:`compare_headlines`: any optimisation must leave them unchanged,
  which is how the determinism guarantee turns perf work into a
  mechanically checkable refactor.

``BENCH_kernel.json`` (written by ``--out``, committed under
``benchmarks/results/``) is both the perf trajectory record and the
golden file CI's perf-smoke job checks drift against.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional

from repro.sim import Environment

__all__ = [
    "SCENARIOS",
    "ScenarioOutcome",
    "compare_headlines",
    "run_scenario",
    "run_suite",
    "scenario",
]

#: JSON schema version of the emitted report
SCHEMA = 1

#: relative tolerance for headline comparisons — simulated quantities are
#: deterministic, but summation order may legally shift by float ulps when
#: the engine's internal event sequencing changes
HEADLINE_RTOL = 1e-9


@dataclass
class ScenarioOutcome:
    """What a scenario function returns to the runner."""

    env: Environment
    #: simulated, machine-independent result numbers (the golden values)
    headline: dict[str, float]
    #: fabrics whose ``rate_recomputes`` counters to aggregate
    fabrics: tuple = ()
    notes: str = ""
    #: machine-dependent trajectory numbers (files/sec and friends) —
    #: reported alongside wall_s/events_per_s, never compared as goldens
    extras: Optional[dict] = None


#: name -> scenario callable, in registration (report) order
SCENARIOS: dict[str, Callable[[], ScenarioOutcome]] = {}


def scenario(name: str) -> Callable:
    """Register a scenario function under *name*."""

    def _register(fn: Callable[[], ScenarioOutcome]) -> Callable:
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario {name!r}")
        SCENARIOS[name] = fn
        return fn

    return _register


def run_scenario(name: str) -> dict:
    """Run one scenario and return its metrics dict."""
    fn = SCENARIOS[name]
    t0 = time.perf_counter()  # noqa: RA001 - benchmark harness measures wall clock
    out = fn()
    wall = time.perf_counter() - t0  # noqa: RA001 - benchmark harness measures wall clock
    env = out.env
    events = env.events_processed
    q = env._queue
    return {
        "wall_s": round(wall, 4),
        "events": events,
        "events_per_s": int(events / wall) if wall > 0 else 0,
        "peak_queue_len": env.peak_queue_len,
        "instants": env.instants,
        "max_instant_batch": env.max_instant_batch,
        "queue": {
            "wheel_pushes": q.wheel_pushes,
            "overflow_pushes": q.overflow_pushes,
            "rebases": q.rebases,
            "migrations": q.migrations,
        },
        "rate_recomputes": int(sum(f.rate_recomputes for f in out.fabrics)),
        "headline": out.headline,
        **({"extra": out.extras} if out.extras else {}),
    }


def run_suite(names: Optional[Iterable[str]] = None) -> dict:
    """Run scenarios (all by default) and return the full report dict."""
    _ensure_scenarios_loaded()
    selected = list(names) if names is not None else list(SCENARIOS)
    unknown = [n for n in selected if n not in SCENARIOS]
    if unknown:
        raise KeyError(f"unknown scenario(s): {', '.join(unknown)}")
    return {
        "schema": SCHEMA,
        "scenarios": {name: run_scenario(name) for name in selected},
    }


_SCENARIO_MODULES_LOADED = False


def _ensure_scenarios_loaded() -> None:
    # a flag, not ``if not SCENARIOS`` — importing one scenario module
    # directly (e.g. ``repro.perf.metadata`` from a test) pre-populates
    # the registry and must not stop the others from loading
    global _SCENARIO_MODULES_LOADED
    if not _SCENARIO_MODULES_LOADED:
        from repro.perf import drills, metadata, scenarios  # noqa: F401 - registers on import

        _SCENARIO_MODULES_LOADED = True


def compare_headlines(
    report: Mapping, golden: Mapping, rtol: float = HEADLINE_RTOL
) -> list[str]:
    """Differences between a report's and a golden file's headline numbers.

    Only ``headline`` values are compared — wall-clock and events/sec are
    machine-dependent trajectory data, not correctness.  Returns a list of
    human-readable drift descriptions (empty = no drift).  Scenarios present
    in the golden file but missing from the report are drift (a bench was
    silently dropped); extra scenarios in the report are not (new benches
    may land before their goldens).
    """
    drift: list[str] = []
    gold_scenarios = golden.get("scenarios", {})
    new_scenarios = report.get("scenarios", {})
    for name, gold in gold_scenarios.items():
        mine = new_scenarios.get(name)
        if mine is None:
            drift.append(f"{name}: scenario missing from report")
            continue
        gold_head = gold.get("headline", {})
        mine_head = mine.get("headline", {})
        for key, want in gold_head.items():
            if key not in mine_head:
                drift.append(f"{name}.{key}: missing (golden {want!r})")
                continue
            got = mine_head[key]
            if not _close(got, want, rtol):
                drift.append(f"{name}.{key}: {got!r} != golden {want!r}")
    return drift


def _close(a, b, rtol: float) -> bool:
    if isinstance(a, str) or isinstance(b, str):
        return a == b
    try:
        fa, fb = float(a), float(b)
    except (TypeError, ValueError):
        return a == b
    if fa == fb:
        return True
    return abs(fa - fb) <= rtol * max(abs(fa), abs(fb))


def format_report(report: Mapping) -> str:
    """Human-readable table of a suite report."""
    lines = [
        f"{'scenario':<16} {'wall s':>8} {'events':>10} {'events/s':>10} "
        f"{'peak q':>7} {'instants':>9} {'max batch':>9} {'recomputes':>10}",
    ]
    for name, m in report.get("scenarios", {}).items():
        lines.append(
            f"{name:<16} {m['wall_s']:>8.3f} {m['events']:>10} "
            f"{m['events_per_s']:>10} {m['peak_queue_len']:>7} "
            f"{m.get('instants', 0):>9} {m.get('max_instant_batch', 0):>9} "
            f"{m['rate_recomputes']:>10}"
        )
    return "\n".join(lines)


def load_report(path) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def dump_report(report: Mapping, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
